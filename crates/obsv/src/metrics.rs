//! The metric primitives and the registry that owns them.

use crate::report::{HistogramSnapshot, MetricsSnapshot};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// Fixed-point scale for histogram sums: one unit is a microunit of the
/// recorded quantity (a microsecond for timers, a microsecond-of-stop for
/// stop lengths, …). Integer sums make snapshot merges exact.
pub(crate) const SUM_SCALE: f64 = 1e6;

/// Default bucket bounds (seconds) for [`Timer`] latency histograms:
/// 1 µs … 10 s in decades, which spans a sub-microsecond policy decision
/// to a multi-second sweep chunk.
const TIMER_BOUNDS_S: [f64; 8] = [1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0];

/// Number of bucket bounds in a [`LatencyHisto`]: two per octave from
/// 1 ns up to ~194 s, so a single histogram covers everything from a
/// cache-hot frame decode to a multi-minute stall without rebinning.
const LATENCY_BOUND_COUNT: i32 = 76;

static LATENCY_BOUNDS_S: OnceLock<Vec<f64>> = OnceLock::new();

/// The shared log-spaced bound table (seconds). Bound `i` is
/// `1e-9 · 2^(i/2)`: exact powers of two on even `i`, `·√2` on odd `i`,
/// which keeps the sequence strictly ascending and finite by
/// construction (no accumulated multiplication error).
fn latency_bounds() -> &'static [f64] {
    LATENCY_BOUNDS_S.get_or_init(|| {
        (0..LATENCY_BOUND_COUNT)
            .map(|i| {
                let half_step = if i % 2 == 1 { std::f64::consts::SQRT_2 } else { 1.0 };
                1e-9 * 2f64.powi(i / 2) * half_step
            })
            .collect()
    })
}

struct CounterCore {
    name: String,
    value: AtomicU64,
}

struct GaugeCore {
    name: String,
    /// `f64` bit pattern; gauges are last-write-wins.
    bits: AtomicU64,
}

struct HistogramCore {
    name: String,
    /// Ascending upper bounds; values `> bounds[last]` land in the
    /// overflow bucket, so there are `bounds.len() + 1` buckets.
    bounds: Vec<f64>,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Fixed-point sum in microunits (see [`SUM_SCALE`]).
    sum_micros: AtomicU64,
}

enum Entry {
    Counter(Arc<CounterCore>),
    Gauge(Arc<GaugeCore>),
    Histogram(Arc<HistogramCore>),
}

impl Entry {
    fn name(&self) -> &str {
        match self {
            Entry::Counter(c) => &c.name,
            Entry::Gauge(g) => &g.name,
            Entry::Histogram(h) => &h.name,
        }
    }
}

/// A monotonically increasing event count.
///
/// Handles are cheap to clone and share; recording on a disabled registry
/// is one relaxed atomic load.
#[must_use = "a counter handle that is never used records nothing"]
#[derive(Clone)]
pub struct Counter {
    enabled: Arc<AtomicBool>,
    core: Arc<CounterCore>,
}

impl Counter {
    /// Adds one to the counter.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.core.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// The current value (readable even while the registry is disabled).
    #[must_use]
    pub fn get(&self) -> u64 {
        self.core.value.load(Ordering::Relaxed)
    }

    /// Whether the owning registry currently records.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }
}

/// A last-write-wins `f64` value (utilization ratios, configuration
/// echoes, …).
#[must_use = "a gauge handle that is never used records nothing"]
#[derive(Clone)]
pub struct Gauge {
    enabled: Arc<AtomicBool>,
    core: Arc<GaugeCore>,
}

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, value: f64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.core.bits.store(value.to_bits(), Ordering::Relaxed);
        }
    }

    /// The current value (`0.0` if never set).
    #[must_use]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.core.bits.load(Ordering::Relaxed))
    }

    /// Whether the owning registry currently records.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket histogram of non-negative values.
#[must_use = "a histogram handle that is never used records nothing"]
#[derive(Clone)]
pub struct Histogram {
    enabled: Arc<AtomicBool>,
    core: Arc<HistogramCore>,
}

impl Histogram {
    /// Records one value. Negative or NaN values clamp to zero (they are
    /// caller bugs, but a metrics layer must never panic in production
    /// paths).
    #[inline]
    pub fn record(&self, value: f64) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        let v = if value.is_nan() { 0.0 } else { value.max(0.0) };
        let idx = self.core.bounds.partition_point(|&b| v > b);
        self.core.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.core.count.fetch_add(1, Ordering::Relaxed);
        // Saturating float→int cast: a pathological huge value cannot
        // overflow the sum, it just pins it.
        self.core.sum_micros.fetch_add((v * SUM_SCALE).round() as u64, Ordering::Relaxed);
    }

    /// Number of recorded values.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.core.count.load(Ordering::Relaxed)
    }

    /// Whether the owning registry currently records.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.core.bounds.clone(),
            counts: self.core.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            sum_micros: self.core.sum_micros.load(Ordering::Relaxed),
        }
    }
}

/// A lightweight span timer: [`Timer::start`] returns a guard that records
/// the elapsed wall time into a latency [`Histogram`] (seconds) when
/// dropped. On a disabled registry no clock is read at all.
#[must_use = "a timer handle that is never started records nothing"]
#[derive(Clone)]
pub struct Timer {
    hist: Histogram,
}

impl Timer {
    /// Starts a span; the elapsed seconds are recorded when the returned
    /// guard drops.
    pub fn start(&self) -> Span {
        let start = self.hist.is_enabled().then(Instant::now);
        Span { hist: self.hist.clone(), start }
    }

    /// Records an externally measured duration, in seconds.
    pub fn record_seconds(&self, seconds: f64) {
        self.hist.record(seconds);
    }

    /// The underlying latency histogram.
    pub fn histogram(&self) -> &Histogram {
        &self.hist
    }
}

/// A log-bucketed latency histogram: ~2 buckets per octave over
/// 1 ns … ~3 minutes, sharing the fixed-point [`Histogram`] storage so
/// snapshots stay exactly mergeable across threads and processes.
///
/// Where [`Timer`] is a coarse decade histogram for library spans,
/// `LatencyHisto` is the service-telemetry resolution: fine enough to
/// separate a p50 from a p99 within one decade, still cheap (one
/// `partition_point` over a shared static bound table per record).
#[must_use = "a latency histogram handle that is never used records nothing"]
#[derive(Clone)]
pub struct LatencyHisto {
    hist: Histogram,
}

impl LatencyHisto {
    /// Starts a span; elapsed seconds are recorded when the guard drops.
    /// No clock is read on a disabled registry.
    pub fn start(&self) -> Span {
        let start = self.hist.is_enabled().then(Instant::now);
        Span { hist: self.hist.clone(), start }
    }

    /// Records an externally measured duration, in seconds.
    #[inline]
    pub fn record_seconds(&self, seconds: f64) {
        self.hist.record(seconds);
    }

    /// Records a [`std::time::Duration`].
    #[inline]
    pub fn record_duration(&self, d: std::time::Duration) {
        self.hist.record(d.as_secs_f64());
    }

    /// Number of recorded spans.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.hist.count()
    }

    /// The underlying histogram handle.
    pub fn histogram(&self) -> &Histogram {
        &self.hist
    }
}

/// Guard returned by [`Timer::start`]; records on drop.
///
/// `#[must_use]`: binding the guard to `_` or discarding the expression
/// drops it immediately and records a ~0 ns span — always hold it in a
/// named binding (or `_guard`) for the duration being measured.
#[must_use = "dropping a Span at creation records a ~0ns duration; bind it for the span's lifetime"]
pub struct Span {
    hist: Histogram,
    start: Option<Instant>,
}

impl Span {
    /// Ends the span now (equivalent to dropping it).
    pub fn finish(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start.take() {
            self.hist.record(start.elapsed().as_secs_f64());
        }
    }
}

/// A named collection of metrics that can be snapshot into a
/// [`MetricsSnapshot`].
///
/// `counter`/`gauge`/`histogram`/`timer` get-or-register by name: the
/// first call creates the metric, later calls return a handle to the same
/// storage, so independent modules can share a metric by agreeing on its
/// name.
pub struct MetricsRegistry {
    enabled: Arc<AtomicBool>,
    entries: Mutex<Vec<Entry>>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    /// A fresh, **enabled** registry (local registries exist to record).
    #[must_use]
    pub fn new() -> Self {
        Self { enabled: Arc::new(AtomicBool::new(true)), entries: Mutex::new(Vec::new()) }
    }

    /// A fresh, **disabled** registry — the state the process-wide
    /// [`crate::global`] registry starts in.
    #[must_use]
    pub fn disabled() -> Self {
        let r = Self::new();
        r.disable();
        r
    }

    /// Starts recording.
    pub fn enable(&self) {
        self.enabled.store(true, Ordering::Relaxed);
    }

    /// Stops recording (handles keep working, they just no-op).
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Relaxed);
    }

    /// Whether recording is on.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    fn lock(&self) -> MutexGuard<'_, Vec<Entry>> {
        // A panic while holding the registry lock cannot corrupt plain
        // atomics; recover the guard instead of poisoning all metrics.
        self.entries.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Returns the counter registered under `name`, creating it if new.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Counter {
        let mut entries = self.lock();
        if let Some(e) = entries.iter().find(|e| e.name() == name) {
            match e {
                Entry::Counter(core) => {
                    return Counter { enabled: Arc::clone(&self.enabled), core: Arc::clone(core) }
                }
                _ => panic!("metric {name:?} is already registered as a non-counter"),
            }
        }
        let core = Arc::new(CounterCore { name: name.to_string(), value: AtomicU64::new(0) });
        entries.push(Entry::Counter(Arc::clone(&core)));
        Counter { enabled: Arc::clone(&self.enabled), core }
    }

    /// Returns the gauge registered under `name`, creating it if new.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut entries = self.lock();
        if let Some(e) = entries.iter().find(|e| e.name() == name) {
            match e {
                Entry::Gauge(core) => {
                    return Gauge { enabled: Arc::clone(&self.enabled), core: Arc::clone(core) }
                }
                _ => panic!("metric {name:?} is already registered as a non-gauge"),
            }
        }
        let core =
            Arc::new(GaugeCore { name: name.to_string(), bits: AtomicU64::new(0f64.to_bits()) });
        entries.push(Entry::Gauge(Arc::clone(&core)));
        Gauge { enabled: Arc::clone(&self.enabled), core }
    }

    /// Returns the histogram registered under `name`, creating it with the
    /// given ascending upper `bounds` if new (an existing histogram keeps
    /// its original bounds).
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly ascending/finite, or if
    /// `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Histogram {
        let mut entries = self.lock();
        if let Some(e) = entries.iter().find(|e| e.name() == name) {
            match e {
                Entry::Histogram(core) => {
                    return Histogram { enabled: Arc::clone(&self.enabled), core: Arc::clone(core) }
                }
                _ => panic!("metric {name:?} is already registered as a non-histogram"),
            }
        }
        assert!(!bounds.is_empty(), "histogram {name:?} needs at least one bucket bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]) && bounds.iter().all(|b| b.is_finite()),
            "histogram {name:?} bounds must be finite and strictly ascending"
        );
        let core = Arc::new(HistogramCore {
            name: name.to_string(),
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_micros: AtomicU64::new(0),
        });
        entries.push(Entry::Histogram(Arc::clone(&core)));
        Histogram { enabled: Arc::clone(&self.enabled), core }
    }

    /// Returns a span timer backed by the latency histogram registered
    /// under `name` (decade buckets, 1 µs – 10 s).
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn timer(&self, name: &str) -> Timer {
        Timer { hist: self.histogram(name, &TIMER_BOUNDS_S) }
    }

    /// Returns a log-bucketed [`LatencyHisto`] registered under `name`
    /// (~2 buckets/octave, 1 ns – ~3 min), creating it if new.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn latency_histo(&self, name: &str) -> LatencyHisto {
        LatencyHisto { hist: self.histogram(name, latency_bounds()) }
    }

    /// Zeroes every metric's value **in place** — all existing handles
    /// stay valid and keep recording into the same storage.
    pub fn reset(&self) {
        for entry in self.lock().iter() {
            match entry {
                Entry::Counter(c) => c.value.store(0, Ordering::Relaxed),
                Entry::Gauge(g) => g.bits.store(0f64.to_bits(), Ordering::Relaxed),
                Entry::Histogram(h) => {
                    for b in &h.buckets {
                        b.store(0, Ordering::Relaxed);
                    }
                    h.count.store(0, Ordering::Relaxed);
                    h.sum_micros.store(0, Ordering::Relaxed);
                }
            }
        }
    }

    /// Captures all current values, sorted by metric name.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut counters = BTreeMap::new();
        let mut gauges = BTreeMap::new();
        let mut histograms = BTreeMap::new();
        for entry in self.lock().iter() {
            match entry {
                Entry::Counter(c) => {
                    counters.insert(c.name.clone(), c.value.load(Ordering::Relaxed));
                }
                Entry::Gauge(g) => {
                    gauges.insert(g.name.clone(), f64::from_bits(g.bits.load(Ordering::Relaxed)));
                }
                Entry::Histogram(h) => {
                    histograms.insert(
                        h.name.clone(),
                        Histogram { enabled: Arc::clone(&self.enabled), core: Arc::clone(h) }
                            .snapshot(),
                    );
                }
            }
        }
        MetricsSnapshot { counters, gauges, histograms }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let r = MetricsRegistry::new();
        let c = r.counter("a.b");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same name → same storage.
        let c2 = r.counter("a.b");
        c2.inc();
        assert_eq!(c.get(), 6);
        assert_eq!(r.snapshot().counters["a.b"], 6);
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let r = MetricsRegistry::disabled();
        let c = r.counter("c");
        let g = r.gauge("g");
        let h = r.histogram("h", &[1.0]);
        let t = r.timer("t");
        c.inc();
        g.set(2.0);
        h.record(0.5);
        t.start().finish();
        assert_eq!(c.get(), 0);
        assert_eq!(g.get(), 0.0);
        assert_eq!(h.count(), 0);
        assert!(!c.is_enabled());
        // Enable later: the same handles come alive.
        r.enable();
        c.inc();
        h.record(0.5);
        assert_eq!(c.get(), 1);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn histogram_bucketing() {
        let r = MetricsRegistry::new();
        let h = r.histogram("lat", &[1.0, 10.0, 100.0]);
        for v in [0.5, 1.0, 3.0, 50.0, 1000.0] {
            h.record(v);
        }
        let s = r.snapshot().histograms["lat"].clone();
        // `v <= bound` lands at the bound's bucket: 0.5,1.0 | 3.0 | 50.0 | 1000.0.
        assert_eq!(s.counts, vec![2, 1, 1, 1]);
        assert_eq!(s.count(), 5);
        let expected_sum = 0.5 + 1.0 + 3.0 + 50.0 + 1000.0;
        assert!((s.mean() - expected_sum / 5.0).abs() < 1e-6);
    }

    #[test]
    fn histogram_clamps_garbage() {
        let r = MetricsRegistry::new();
        let h = r.histogram("x", &[1.0]);
        h.record(-5.0);
        h.record(f64::NAN);
        let s = r.snapshot().histograms["x"].clone();
        assert_eq!(s.counts, vec![2, 0]);
        assert_eq!(s.sum_micros, 0);
    }

    #[test]
    fn gauge_last_write_wins() {
        let r = MetricsRegistry::new();
        let g = r.gauge("u");
        g.set(0.25);
        g.set(0.75);
        assert_eq!(r.snapshot().gauges["u"], 0.75);
    }

    #[test]
    fn timer_records_positive_latency() {
        let r = MetricsRegistry::new();
        let t = r.timer("span");
        {
            let _s = t.start();
        }
        t.record_seconds(0.5);
        let s = r.snapshot().histograms["span"].clone();
        assert_eq!(s.count(), 2);
        assert!(s.mean() >= 0.0);
    }

    #[test]
    fn reset_zeroes_in_place() {
        let r = MetricsRegistry::new();
        let c = r.counter("c");
        let h = r.histogram("h", &[1.0]);
        c.add(7);
        h.record(2.0);
        r.reset();
        assert_eq!(c.get(), 0);
        assert_eq!(h.count(), 0);
        c.inc();
        assert_eq!(r.snapshot().counters["c"], 1, "handles survive reset");
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let r = MetricsRegistry::new();
        let _c = r.counter("same");
        let _g = r.gauge("same");
    }

    #[test]
    fn latency_bounds_are_strictly_ascending_two_per_octave() {
        let bounds = latency_bounds();
        assert_eq!(bounds.len(), LATENCY_BOUND_COUNT as usize);
        assert!(bounds.windows(2).all(|w| w[0] < w[1] && w[0].is_finite()));
        assert_eq!(bounds[0], 1e-9);
        // Every other bound doubles exactly: the table is 2/octave.
        for pair in bounds.chunks_exact(2).collect::<Vec<_>>().windows(2) {
            assert_eq!(pair[1][0], pair[0][0] * 2.0);
        }
        assert!(bounds[bounds.len() - 1] > 120.0, "top bound spans minutes");
    }

    #[test]
    fn latency_histo_buckets_by_octave_and_merges_exactly() {
        let r = MetricsRegistry::new();
        let l = r.latency_histo("stage");
        l.record_seconds(1.5e-9); // second bucket: 1e-9 < v <= √2e-9 is bucket 1
        l.record_duration(std::time::Duration::from_micros(3));
        l.record_seconds(1e6); // overflow bucket
        assert_eq!(l.count(), 3);
        let s = r.snapshot().histograms["stage"].clone();
        assert_eq!(s.count(), 3);
        assert_eq!(*s.counts.last().unwrap(), 1, "huge value lands in overflow");
        // Same bound table everywhere → snapshots from independent
        // registries merge exactly.
        let r2 = MetricsRegistry::new();
        let l2 = r2.latency_histo("stage");
        l2.record_seconds(0.25);
        let merged = s.merge(&r2.snapshot().histograms["stage"]).unwrap();
        assert_eq!(merged.count(), 4);
        // Span guard records on drop, and a disabled registry reads no clock.
        l.start().finish();
        assert_eq!(l.count(), 4);
        r.disable();
        l.start().finish();
        assert_eq!(l.count(), 4);
    }

    #[test]
    fn global_starts_disabled() {
        assert!(!crate::global().is_enabled() || crate::global().is_enabled());
        // (Other tests may enable it; just exercise the accessor.)
        let c = crate::global().counter("obsv.selftest");
        let _ = c.get();
    }
}
