//! Snapshot types and the machine-readable [`RunReport`].

use crate::json::{ParseError, Value};
use crate::metrics::SUM_SCALE;
use crate::monitor::{AlarmRecord, MonitorReport, StreamSummary};
use crate::risk::RiskReport;
use std::collections::BTreeMap;
use std::fmt;

/// Schema version stamped into every report; bump on breaking layout
/// changes so the perf gate can reject stale baselines with a clear
/// message instead of a key-mismatch puzzle.
pub const REPORT_VERSION: u64 = 1;

/// An immutable capture of one histogram's state.
///
/// `counts[i]` is the number of recorded values `v` with
/// `bounds[i-1] < v <= bounds[i]` (first bucket: `v <= bounds[0]`; last
/// bucket: `v > bounds[last]`), so `counts.len() == bounds.len() + 1`.
/// The sum is kept in fixed-point microunits, which makes [`merge`]
/// exactly associative and commutative — integer addition, no
/// floating-point reassociation error.
///
/// [`merge`]: HistogramSnapshot::merge
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Ascending bucket upper bounds.
    pub bounds: Vec<f64>,
    /// Per-bucket counts (one more than `bounds`).
    pub counts: Vec<u64>,
    /// Sum of recorded values, in microunits.
    pub sum_micros: u64,
}

impl HistogramSnapshot {
    /// Total number of recorded values.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Mean recorded value (`0.0` when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum_micros as f64 / SUM_SCALE / n as f64
        }
    }

    /// Combines two snapshots of histograms with identical bounds, or
    /// `None` on a bounds mismatch. Exactly associative and commutative.
    #[must_use]
    pub fn merge(&self, other: &Self) -> Option<Self> {
        if self.bounds != other.bounds || self.counts.len() != other.counts.len() {
            return None;
        }
        Some(Self {
            bounds: self.bounds.clone(),
            counts: self
                .counts
                .iter()
                .zip(&other.counts)
                .map(|(a, b)| a.saturating_add(*b))
                .collect(),
            sum_micros: self.sum_micros.saturating_add(other.sum_micros),
        })
    }

    fn to_value(&self) -> Value {
        let mut obj = BTreeMap::new();
        obj.insert(
            "bounds".to_string(),
            Value::Arr(self.bounds.iter().map(|&b| Value::float(b)).collect()),
        );
        obj.insert(
            "counts".to_string(),
            Value::Arr(self.counts.iter().map(|&c| Value::UInt(c)).collect()),
        );
        obj.insert("sum_micros".to_string(), Value::UInt(self.sum_micros));
        Value::Obj(obj)
    }

    fn from_value(name: &str, v: &Value) -> Result<Self, ReportError> {
        let obj = v.as_obj().ok_or_else(|| ReportError::shape(name, "histogram object"))?;
        let bounds = obj
            .get("bounds")
            .and_then(Value::as_arr)
            .ok_or_else(|| ReportError::shape(name, "bounds array"))?
            .iter()
            .map(|b| b.as_f64().ok_or_else(|| ReportError::shape(name, "numeric bound")))
            .collect::<Result<Vec<f64>, _>>()?;
        let counts = obj
            .get("counts")
            .and_then(Value::as_arr)
            .ok_or_else(|| ReportError::shape(name, "counts array"))?
            .iter()
            .map(|c| c.as_u64().ok_or_else(|| ReportError::shape(name, "integer count")))
            .collect::<Result<Vec<u64>, _>>()?;
        if counts.len() != bounds.len() + 1 {
            return Err(ReportError::shape(name, "counts.len() == bounds.len() + 1"));
        }
        let sum_micros = obj
            .get("sum_micros")
            .and_then(Value::as_u64)
            .ok_or_else(|| ReportError::shape(name, "integer sum_micros"))?;
        Ok(Self { bounds, counts, sum_micros })
    }
}

/// All metric values of a registry at one instant, sorted by name.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// Counter values.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram snapshots.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Counter value by name (`0` when absent — an unexercised code path
    /// never registers its metrics).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }
}

/// A machine-readable record of one harness run: metadata, wall-clock
/// time, and a full [`MetricsSnapshot`]. Serializes to deterministic,
/// diff-stable JSON (sorted keys, shortest-round-trip floats).
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Schema version ([`REPORT_VERSION`]).
    pub version: u64,
    /// The binary (or workload) that produced the report.
    pub bin: String,
    /// Free-form metadata: seed, thread count, git describe, …
    pub meta: BTreeMap<String, String>,
    /// Wall-clock duration of the measured section, seconds.
    pub wall_s: f64,
    /// The metric values.
    pub metrics: MetricsSnapshot,
    /// Streaming-monitor aggregates, present only when the run had the
    /// monitor enabled (`--monitor`). Absent ≠ empty: `None` omits the
    /// key entirely, so pre-monitor reports re-emit byte-identically.
    pub monitor: Option<MonitorReport>,
    /// Realized-CR risk digests, present only when the run had the risk
    /// plane enabled (`--risk`). Same absent ≠ empty contract as the
    /// monitor section.
    pub risk: Option<RiskReport>,
}

impl RunReport {
    /// Builds a report around a snapshot.
    #[must_use]
    pub fn new(bin: &str, wall_s: f64, metrics: MetricsSnapshot) -> Self {
        Self {
            version: REPORT_VERSION,
            bin: bin.to_string(),
            meta: BTreeMap::new(),
            wall_s,
            metrics,
            monitor: None,
            risk: None,
        }
    }

    /// Adds one metadata entry; returns `self` for chaining.
    #[must_use]
    pub fn with_meta(mut self, key: &str, value: impl fmt::Display) -> Self {
        self.meta.insert(key.to_string(), value.to_string());
        self
    }

    /// Attaches a streaming-monitor report; returns `self` for chaining.
    #[must_use]
    pub fn with_monitor(mut self, monitor: MonitorReport) -> Self {
        self.monitor = Some(monitor);
        self
    }

    /// Attaches a risk report; returns `self` for chaining.
    #[must_use]
    pub fn with_risk(mut self, risk: RiskReport) -> Self {
        self.risk = Some(risk);
        self
    }

    /// A 64-bit FNV-1a fingerprint (16 hex digits) over the report's
    /// identity: `bin` plus every sorted meta pair except a previously
    /// stamped `config_fingerprint` itself. Two runs of the same binary
    /// with the same configuration metadata (seed, threads, tolerance, …)
    /// fingerprint identically regardless of their measured values, so
    /// the fingerprint answers "are these two reports comparable?"
    /// without the comparison logic having to enumerate meta keys.
    #[must_use]
    pub fn config_fingerprint(&self) -> String {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(FNV_PRIME);
            }
            // NUL-separate fields so ("ab","c") ≠ ("a","bc").
            h ^= 0;
            h = h.wrapping_mul(FNV_PRIME);
        };
        eat(self.bin.as_bytes());
        for (k, v) in &self.meta {
            if k == "config_fingerprint" {
                continue;
            }
            eat(k.as_bytes());
            eat(v.as_bytes());
        }
        format!("{h:016x}")
    }

    /// Serializes to a single-line JSON document.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut obj = BTreeMap::new();
        obj.insert("version".to_string(), Value::UInt(self.version));
        obj.insert("bin".to_string(), Value::Str(self.bin.clone()));
        obj.insert(
            "meta".to_string(),
            Value::Obj(self.meta.iter().map(|(k, v)| (k.clone(), Value::Str(v.clone()))).collect()),
        );
        obj.insert("wall_s".to_string(), Value::float(self.wall_s));
        obj.insert(
            "counters".to_string(),
            Value::Obj(
                self.metrics.counters.iter().map(|(k, &v)| (k.clone(), Value::UInt(v))).collect(),
            ),
        );
        obj.insert(
            "gauges".to_string(),
            Value::Obj(
                self.metrics.gauges.iter().map(|(k, &v)| (k.clone(), Value::float(v))).collect(),
            ),
        );
        obj.insert(
            "histograms".to_string(),
            Value::Obj(
                self.metrics.histograms.iter().map(|(k, h)| (k.clone(), h.to_value())).collect(),
            ),
        );
        if let Some(monitor) = &self.monitor {
            obj.insert("monitor".to_string(), monitor_to_value(monitor));
        }
        if let Some(risk) = &self.risk {
            obj.insert("risk".to_string(), risk.to_value());
        }
        Value::Obj(obj).to_string()
    }

    /// Parses a report previously emitted by [`RunReport::to_json`].
    ///
    /// # Errors
    ///
    /// Returns [`ReportError`] on malformed JSON, a missing or mistyped
    /// field, or a schema version newer than this library understands.
    pub fn from_json(input: &str) -> Result<Self, ReportError> {
        let root = Value::parse(input)?;
        let obj = root.as_obj().ok_or_else(|| ReportError::shape("<root>", "object"))?;
        let version = obj
            .get("version")
            .and_then(Value::as_u64)
            .ok_or_else(|| ReportError::shape("version", "integer"))?;
        if version > REPORT_VERSION {
            return Err(ReportError::Version { found: version, supported: REPORT_VERSION });
        }
        let bin = obj
            .get("bin")
            .and_then(Value::as_str)
            .ok_or_else(|| ReportError::shape("bin", "string"))?
            .to_string();
        let mut meta = BTreeMap::new();
        if let Some(m) = obj.get("meta").and_then(Value::as_obj) {
            for (k, v) in m {
                meta.insert(
                    k.clone(),
                    v.as_str()
                        .ok_or_else(|| ReportError::shape(k, "string meta value"))?
                        .to_string(),
                );
            }
        }
        let wall_s = obj
            .get("wall_s")
            .and_then(Value::as_f64)
            .ok_or_else(|| ReportError::shape("wall_s", "number"))?;
        let mut metrics = MetricsSnapshot::default();
        if let Some(c) = obj.get("counters").and_then(Value::as_obj) {
            for (k, v) in c {
                metrics.counters.insert(
                    k.clone(),
                    v.as_u64().ok_or_else(|| ReportError::shape(k, "integer counter"))?,
                );
            }
        }
        if let Some(g) = obj.get("gauges").and_then(Value::as_obj) {
            for (k, v) in g {
                metrics.gauges.insert(
                    k.clone(),
                    v.as_f64().ok_or_else(|| ReportError::shape(k, "numeric gauge"))?,
                );
            }
        }
        if let Some(h) = obj.get("histograms").and_then(Value::as_obj) {
            for (k, v) in h {
                metrics.histograms.insert(k.clone(), HistogramSnapshot::from_value(k, v)?);
            }
        }
        let monitor = match obj.get("monitor") {
            Some(v) => Some(monitor_from_value(v)?),
            None => None,
        };
        let risk = match obj.get("risk") {
            Some(v) => Some(
                RiskReport::from_value(v)
                    .ok_or_else(|| ReportError::shape("risk", "risk report object"))?,
            ),
            None => None,
        };
        Ok(Self { version, bin, meta, wall_s, metrics, monitor, risk })
    }
}

fn monitor_to_value(monitor: &MonitorReport) -> Value {
    let mut streams = BTreeMap::new();
    for (stream, s) in &monitor.streams {
        streams.insert(stream.to_string(), summary_to_value(s));
    }
    let mut obj = BTreeMap::new();
    obj.insert("streams".to_string(), Value::Obj(streams));
    Value::Obj(obj)
}

fn summary_to_value(s: &StreamSummary) -> Value {
    let mut obj = BTreeMap::new();
    obj.insert("stops".to_string(), Value::UInt(s.stops));
    obj.insert("online_s".to_string(), Value::float(s.online_s));
    obj.insert("offline_s".to_string(), Value::float(s.offline_s));
    obj.insert("windowed_online_s".to_string(), Value::float(s.windowed_online_s));
    obj.insert("windowed_offline_s".to_string(), Value::float(s.windowed_offline_s));
    obj.insert(
        "last_vertex".to_string(),
        s.last_vertex.as_ref().map_or(Value::Null, |v| Value::Str(v.clone())),
    );
    obj.insert("bound_cr".to_string(), s.bound_cr.map_or(Value::Null, Value::float));
    obj.insert("mu_stat".to_string(), Value::float(s.mu_stat));
    obj.insert("q_stat".to_string(), Value::float(s.q_stat));
    obj.insert("trust".to_string(), Value::Str(s.trust.clone()));
    obj.insert("transitions".to_string(), Value::UInt(s.transitions));
    obj.insert(
        "alarms".to_string(),
        Value::Arr(
            s.alarms
                .iter()
                .map(|a| {
                    let mut alarm = BTreeMap::new();
                    alarm.insert("stop".to_string(), Value::UInt(a.stop));
                    alarm.insert("alarm".to_string(), Value::Str(a.alarm.clone()));
                    alarm.insert("detail".to_string(), Value::Str(a.detail.clone()));
                    alarm.insert("observed".to_string(), Value::float(a.observed));
                    alarm.insert("limit".to_string(), Value::float(a.limit));
                    Value::Obj(alarm)
                })
                .collect(),
        ),
    );
    Value::Obj(obj)
}

fn monitor_from_value(v: &Value) -> Result<MonitorReport, ReportError> {
    let obj = v.as_obj().ok_or_else(|| ReportError::shape("monitor", "object"))?;
    let mut streams = BTreeMap::new();
    if let Some(m) = obj.get("streams").and_then(Value::as_obj) {
        for (k, sv) in m {
            let stream = k
                .parse::<u64>()
                .map_err(|_| ReportError::shape("monitor.streams", "integer stream key"))?;
            streams.insert(stream, summary_from_value(k, sv)?);
        }
    }
    Ok(MonitorReport { streams })
}

fn summary_from_value(name: &str, v: &Value) -> Result<StreamSummary, ReportError> {
    let obj = v.as_obj().ok_or_else(|| ReportError::shape(name, "stream summary object"))?;
    let num = |key: &str| {
        obj.get(key).and_then(Value::as_f64).ok_or_else(|| ReportError::shape(key, "number"))
    };
    let int = |key: &str| {
        obj.get(key).and_then(Value::as_u64).ok_or_else(|| ReportError::shape(key, "integer"))
    };
    let mut alarms = Vec::new();
    if let Some(arr) = obj.get("alarms").and_then(Value::as_arr) {
        for av in arr {
            let a = av.as_obj().ok_or_else(|| ReportError::shape("alarms", "alarm object"))?;
            let field_f64 = |key: &str| {
                a.get(key).and_then(Value::as_f64).ok_or_else(|| ReportError::shape(key, "number"))
            };
            alarms.push(AlarmRecord {
                stop: a
                    .get("stop")
                    .and_then(Value::as_u64)
                    .ok_or_else(|| ReportError::shape("stop", "integer"))?,
                alarm: a
                    .get("alarm")
                    .and_then(Value::as_str)
                    .ok_or_else(|| ReportError::shape("alarm", "string"))?
                    .to_string(),
                detail: a
                    .get("detail")
                    .and_then(Value::as_str)
                    .ok_or_else(|| ReportError::shape("detail", "string"))?
                    .to_string(),
                observed: field_f64("observed")?,
                limit: field_f64("limit")?,
            });
        }
    }
    Ok(StreamSummary {
        stops: int("stops")?,
        online_s: num("online_s")?,
        offline_s: num("offline_s")?,
        windowed_online_s: num("windowed_online_s")?,
        windowed_offline_s: num("windowed_offline_s")?,
        last_vertex: match obj.get("last_vertex") {
            None | Some(Value::Null) => None,
            Some(v) => Some(
                v.as_str().ok_or_else(|| ReportError::shape("last_vertex", "string"))?.to_string(),
            ),
        },
        bound_cr: match obj.get("bound_cr") {
            None | Some(Value::Null) => None,
            Some(v) => v.as_f64(),
        },
        mu_stat: num("mu_stat")?,
        q_stat: num("q_stat")?,
        trust: obj
            .get("trust")
            .and_then(Value::as_str)
            .ok_or_else(|| ReportError::shape("trust", "string"))?
            .to_string(),
        transitions: int("transitions")?,
        alarms,
    })
}

/// Errors from parsing a [`RunReport`].
#[derive(Debug, Clone, PartialEq)]
pub enum ReportError {
    /// The document is not valid JSON.
    Json(ParseError),
    /// A field is missing or has the wrong type.
    Shape {
        /// The offending field.
        field: String,
        /// What was expected there.
        expected: String,
    },
    /// The report was produced by a newer schema.
    Version {
        /// Version found in the document.
        found: u64,
        /// Highest version this library reads.
        supported: u64,
    },
}

impl ReportError {
    fn shape(field: &str, expected: &str) -> Self {
        Self::Shape { field: field.to_string(), expected: expected.to_string() }
    }
}

impl From<ParseError> for ReportError {
    fn from(e: ParseError) -> Self {
        Self::Json(e)
    }
}

impl fmt::Display for ReportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Json(e) => write!(f, "run report: {e}"),
            Self::Shape { field, expected } => {
                write!(f, "run report field {field:?}: expected {expected}")
            }
            Self::Version { found, supported } => {
                write!(f, "run report version {found} is newer than supported {supported}")
            }
        }
    }
}

impl std::error::Error for ReportError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MetricsRegistry;

    fn sample_report() -> RunReport {
        let r = MetricsRegistry::new();
        r.counter("a.count").add(42);
        r.gauge("a.util").set(0.375);
        let h = r.histogram("a.lat", &[1.0, 10.0]);
        h.record(0.5);
        h.record(100.0);
        RunReport::new("selftest", 1.25, r.snapshot())
            .with_meta("seed", 2014)
            .with_meta("threads", 4)
    }

    #[test]
    fn json_roundtrip_is_identity() {
        let report = sample_report();
        let json = report.to_json();
        let back = RunReport::from_json(&json).unwrap();
        assert_eq!(back, report);
        // Deterministic: re-emission is byte-identical.
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn snapshot_counter_defaults_to_zero() {
        let s = MetricsSnapshot::default();
        assert_eq!(s.counter("never.registered"), 0);
    }

    #[test]
    fn merge_requires_matching_bounds() {
        let a = HistogramSnapshot { bounds: vec![1.0], counts: vec![1, 2], sum_micros: 10 };
        let b = HistogramSnapshot { bounds: vec![2.0], counts: vec![3, 4], sum_micros: 20 };
        assert!(a.merge(&b).is_none());
        let c = a.merge(&a).unwrap();
        assert_eq!(c.counts, vec![2, 4]);
        assert_eq!(c.sum_micros, 20);
        assert_eq!(c.count(), 6);
    }

    #[test]
    fn mean_of_empty_is_zero() {
        let h = HistogramSnapshot { bounds: vec![1.0], counts: vec![0, 0], sum_micros: 0 };
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn rejects_future_versions_and_garbage() {
        let mut report = sample_report();
        report.version = REPORT_VERSION + 1;
        let err = RunReport::from_json(&report.to_json()).unwrap_err();
        assert!(matches!(err, ReportError::Version { .. }));
        assert!(RunReport::from_json("not json").is_err());
        assert!(RunReport::from_json("{}").is_err());
        let e = RunReport::from_json(r#"{"version":1,"bin":3}"#).unwrap_err();
        assert!(e.to_string().contains("bin"));
    }

    #[test]
    fn config_fingerprint_ignores_measurements_and_itself() {
        let a = sample_report();
        let mut b = sample_report();
        b.wall_s = 99.0;
        b.metrics.counters.insert("a.count".to_string(), 7);
        assert_eq!(a.config_fingerprint(), b.config_fingerprint());
        assert_eq!(a.config_fingerprint().len(), 16);

        // Stamping the fingerprint into meta does not change it.
        let fp = a.config_fingerprint();
        let stamped = a.clone().with_meta("config_fingerprint", &fp);
        assert_eq!(stamped.config_fingerprint(), fp);

        // But real configuration differences do change it, and field
        // boundaries matter: ("ab","c") ≠ ("a","bc").
        let c = sample_report().with_meta("seed", 2015);
        assert_ne!(a.config_fingerprint(), c.config_fingerprint());
        let d1 = RunReport::new("x", 0.0, MetricsSnapshot::default()).with_meta("ab", "c");
        let d2 = RunReport::new("x", 0.0, MetricsSnapshot::default()).with_meta("a", "bc");
        assert_ne!(d1.config_fingerprint(), d2.config_fingerprint());
    }

    #[test]
    fn monitor_section_roundtrips_and_is_optional() {
        // Without a monitor section the key is absent entirely.
        let plain = sample_report();
        assert!(!plain.to_json().contains("\"monitor\""));

        let mut monitor = MonitorReport::default();
        monitor.streams.insert(
            7,
            StreamSummary {
                stops: 120,
                online_s: 840.5,
                offline_s: 512.25,
                windowed_online_s: 61.0,
                windowed_offline_s: 40.0,
                last_vertex: Some("TOI".to_string()),
                bound_cr: Some(1.582),
                mu_stat: 0.25,
                q_stat: 1.75,
                trust: "Degraded".to_string(),
                transitions: 3,
                alarms: vec![AlarmRecord {
                    stop: 77,
                    alarm: "drift".to_string(),
                    detail: "q_b_plus".to_string(),
                    observed: 2.5,
                    limit: 2.0,
                }],
            },
        );
        monitor.streams.insert(9, StreamSummary::default());
        let report = sample_report().with_monitor(monitor.clone());
        let json = report.to_json();
        let back = RunReport::from_json(&json).unwrap();
        assert_eq!(back, report);
        assert_eq!(back.to_json(), json, "re-emission must be byte-identical");
        let back_monitor = back.monitor.unwrap();
        assert_eq!(back_monitor.total_alarms(), 1);
        assert_eq!(back_monitor.alarms_of("drift"), 1);
        assert_eq!(back_monitor.streams[&9].last_vertex, None);
        assert_eq!(back_monitor.streams[&9].bound_cr, None);

        // The monitor section is configuration-independent measurement
        // data: it must not perturb the config fingerprint.
        assert_eq!(report.config_fingerprint(), sample_report().config_fingerprint());
    }

    #[test]
    fn risk_section_roundtrips_and_is_optional() {
        use crate::risk::RiskHub;

        // Without a risk section the key is absent entirely.
        let plain = sample_report();
        assert!(!plain.to_json().contains("\"risk\""));

        let hub = RiskHub::new();
        hub.record(11, 30.0, 28.0);
        hub.record(11, 56.0, 28.0);
        hub.record(42, 5.0, 0.0); // ∞ → overflow bucket, still pure-integer JSON
        let report = sample_report().with_risk(hub.report());
        let json = report.to_json();
        let back = RunReport::from_json(&json).unwrap();
        assert_eq!(back, report);
        assert_eq!(back.to_json(), json, "re-emission must be byte-identical");
        let back_risk = back.risk.unwrap();
        assert_eq!(back_risk.fleet.count, 3);
        assert_eq!(back_risk.vehicles.len(), 2);
        // The serialized digests re-derive the fleet gauges bit-exactly.
        let remerged = back_risk
            .vehicles
            .values()
            .fold(crate::risk::SketchDigest::default(), |acc, d| acc.merge(d));
        assert_eq!(remerged, back_risk.fleet);
        assert_eq!(back_risk.fleet.cvar(0.5), hub.fleet_digest().cvar(0.5));

        // The risk section is measurement data: fingerprint-inert.
        assert_eq!(report.config_fingerprint(), sample_report().config_fingerprint());

        // A malformed risk section is a typed error, not a silent None.
        let bad = r#"{"version":1,"bin":"x","wall_s":0.0,"risk":{"nope":1}}"#;
        assert!(RunReport::from_json(bad).is_err());
    }

    #[test]
    fn counts_length_validated() {
        let bad = r#"{"version":1,"bin":"x","wall_s":0.0,
            "histograms":{"h":{"bounds":[1.0],"counts":[1],"sum_micros":0}}}"#;
        assert!(RunReport::from_json(bad).is_err());
    }
}
