//! Streaming and batch summary statistics.
//!
//! Table 1 of the paper reports the mean, standard deviation, and an upper
//! percentile bound of stops-per-day across each area's fleet; the fleet
//! experiments additionally need per-vehicle means and worst-case maxima.
//! [`RunningStats`] provides numerically stable (Welford) accumulation and
//! [`quantile`] the batch order statistics.

/// Numerically stable streaming accumulator for count / mean / variance /
/// min / max.
///
/// Uses Welford's online algorithm, so it is safe for long traces with
/// large means (no catastrophic cancellation).
///
/// # Example
///
/// ```
/// use numeric::stats::RunningStats;
///
/// let s: RunningStats = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0].into_iter().collect();
/// assert_eq!(s.count(), 8);
/// assert!((s.mean() - 5.0).abs() < 1e-12);
/// assert!((s.population_std_dev() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self { n: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Adds one observation.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not finite — a NaN would silently poison every
    /// downstream statistic.
    pub fn add(&mut self, x: f64) {
        assert!(x.is_finite(), "RunningStats observation must be finite, got {x}");
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += delta * n2 / n;
        self.m2 += other.m2 + delta * delta * n1 * n2 / n;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean; `0` when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sum of observations.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.mean() * self.n as f64
    }

    /// Population variance (divide by `n`); `0` when fewer than 1
    /// observation.
    #[must_use]
    pub fn population_variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Sample variance (divide by `n − 1`); `0` when fewer than 2
    /// observations.
    #[must_use]
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Population standard deviation.
    #[must_use]
    pub fn population_std_dev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Sample standard deviation.
    #[must_use]
    pub fn sample_std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Smallest observation; `None` when empty.
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest observation; `None` when empty.
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }
}

impl FromIterator<f64> for RunningStats {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Self::new();
        for x in iter {
            s.add(x);
        }
        s
    }
}

impl Extend<f64> for RunningStats {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.add(x);
        }
    }
}

/// Returns the `q`-quantile (`0 ≤ q ≤ 1`) of `values` using linear
/// interpolation between order statistics (type-7, the numpy default).
/// Returns `None` for an empty slice.
///
/// The input does not need to be sorted; a sorted copy is made internally.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]` or any value is NaN.
///
/// # Example
///
/// ```
/// use numeric::stats::quantile;
///
/// let v = [1.0, 2.0, 3.0, 4.0];
/// assert_eq!(quantile(&v, 0.5), Some(2.5));
/// assert_eq!(quantile(&v, 0.0), Some(1.0));
/// assert_eq!(quantile(&v, 1.0), Some(4.0));
/// ```
#[must_use]
pub fn quantile(values: &[f64], q: f64) -> Option<f64> {
    assert!((0.0..=1.0).contains(&q), "quantile order must be in [0,1], got {q}");
    if values.is_empty() {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    Some(quantile_sorted(&sorted, q))
}

/// [`quantile`] for data already sorted ascending (no copy).
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]`. Behaviour on unsorted input is
/// unspecified (but will not panic).
#[must_use]
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile order must be in [0,1], got {q}");
    assert!(!sorted.is_empty(), "quantile of empty slice");
    let h = q * (sorted.len() - 1) as f64;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        sorted[lo] + (h - lo as f64) * (sorted[hi] - sorted[lo])
    }
}

/// Fraction of `values` that are `≤ threshold` — the empirical CDF used for
/// the Table-1 column `P{X ≤ μ + 2σ}`.
///
/// Returns `0` for an empty slice.
#[must_use]
pub fn fraction_at_most(values: &[f64], threshold: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().filter(|&&v| v <= threshold).count() as f64 / values.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn empty_stats() {
        let s = RunningStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.population_variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn single_observation() {
        let mut s = RunningStats::new();
        s.add(3.5);
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.min(), Some(3.5));
        assert_eq!(s.max(), Some(3.5));
    }

    #[test]
    fn known_variance() {
        let s: RunningStats = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0].into_iter().collect();
        assert!(approx_eq(s.mean(), 5.0, 1e-12));
        assert!(approx_eq(s.population_variance(), 4.0, 1e-12));
        assert!(approx_eq(s.sample_variance(), 32.0 / 7.0, 1e-12));
    }

    #[test]
    fn welford_is_stable_for_large_offsets() {
        // Same data shifted by 1e9: variance must be unchanged.
        let base = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let shifted: RunningStats = base.iter().map(|x| x + 1e9).collect();
        assert!(approx_eq(shifted.population_variance(), 4.0, 1e-6));
    }

    #[test]
    fn merge_matches_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0 + 5.0).collect();
        let seq: RunningStats = data.iter().copied().collect();
        let mut a: RunningStats = data[..37].iter().copied().collect();
        let b: RunningStats = data[37..].iter().copied().collect();
        a.merge(&b);
        assert_eq!(a.count(), seq.count());
        assert!(approx_eq(a.mean(), seq.mean(), 1e-12));
        assert!(approx_eq(a.population_variance(), seq.population_variance(), 1e-10));
        assert_eq!(a.min(), seq.min());
        assert_eq!(a.max(), seq.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s: RunningStats = [1.0, 2.0].into_iter().collect();
        let before = s;
        s.merge(&RunningStats::new());
        assert_eq!(s, before);
        let mut e = RunningStats::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn rejects_nan_observation() {
        RunningStats::new().add(f64::NAN);
    }

    #[test]
    fn quantile_interpolation() {
        let v = [10.0, 20.0, 30.0, 40.0, 50.0];
        assert_eq!(quantile(&v, 0.5), Some(30.0));
        assert_eq!(quantile(&v, 0.25), Some(20.0));
        assert_eq!(quantile(&v, 0.1), Some(14.0));
    }

    #[test]
    fn quantile_unsorted_input() {
        let v = [3.0, 1.0, 2.0];
        assert_eq!(quantile(&v, 0.5), Some(2.0));
    }

    #[test]
    fn quantile_empty() {
        assert_eq!(quantile(&[], 0.5), None);
    }

    #[test]
    fn fraction_at_most_basics() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert!(approx_eq(fraction_at_most(&v, 2.0), 0.5, 1e-12));
        assert_eq!(fraction_at_most(&v, 0.0), 0.0);
        assert_eq!(fraction_at_most(&v, 10.0), 1.0);
        assert_eq!(fraction_at_most(&[], 1.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "must be in [0,1]")]
    fn quantile_rejects_bad_order() {
        let _ = quantile(&[1.0], 1.5);
    }
}
