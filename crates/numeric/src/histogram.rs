//! Histograms for empirical stop-length distributions.
//!
//! Figure 3 of the paper plots the probability distribution of stop lengths
//! in each area; [`Histogram`] reproduces those plots as text/CSV series.
//! Both linear and logarithmic binnings are supported — the log binning is
//! what makes the heavy tail of the stop-length data visible.

use std::fmt;

/// How bin edges are spaced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Binning {
    /// Equal-width bins over `[lo, hi)`.
    Linear,
    /// Log-spaced bins over `[lo, hi)`; requires `lo > 0`.
    Logarithmic,
}

/// A fixed-edge histogram over `[lo, hi)` with an overflow and underflow
/// count.
///
/// # Example
///
/// ```
/// use numeric::histogram::{Binning, Histogram};
///
/// let mut h = Histogram::new(0.0, 10.0, 5, Binning::Linear);
/// for v in [0.5, 1.5, 2.5, 2.6, 11.0] {
///     h.add(v);
/// }
/// assert_eq!(h.count(1), 2);      // [2,4) holds 2.5, 2.6 → bin 1
/// assert_eq!(h.overflow(), 1);    // 11.0
/// assert_eq!(h.total(), 5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    binning: Binning,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` bins spanning `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0`, if `lo >= hi`, if either bound is non-finite,
    /// or if `Binning::Logarithmic` is requested with `lo <= 0`.
    #[must_use]
    pub fn new(lo: f64, hi: f64, bins: usize, binning: Binning) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo.is_finite() && hi.is_finite(), "histogram bounds must be finite");
        assert!(lo < hi, "histogram requires lo < hi");
        if binning == Binning::Logarithmic {
            assert!(lo > 0.0, "logarithmic binning requires lo > 0");
        }
        Self { lo, hi, binning, counts: vec![0; bins], underflow: 0, overflow: 0 }
    }

    /// Number of bins (excluding under/overflow).
    #[must_use]
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Adds one observation.
    pub fn add(&mut self, value: f64) {
        match self.bin_index(value) {
            BinIndex::Under => self.underflow += 1,
            BinIndex::Over => self.overflow += 1,
            BinIndex::In(i) => self.counts[i] += 1,
        }
    }

    /// Adds every observation from an iterator.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, values: I) {
        for v in values {
            self.add(v);
        }
    }

    /// Count in bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= bins()`.
    #[must_use]
    pub fn count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// Observations below `lo`.
    #[must_use]
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above `hi`.
    #[must_use]
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations added, including under/overflow.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.underflow + self.overflow + self.counts.iter().sum::<u64>()
    }

    /// `[start, end)` edges of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= bins()`.
    #[must_use]
    pub fn bin_edges(&self, i: usize) -> (f64, f64) {
        assert!(i < self.counts.len(), "bin index out of range");
        (self.edge(i), self.edge(i + 1))
    }

    /// Midpoint of bin `i` (geometric midpoint for log binning).
    ///
    /// # Panics
    ///
    /// Panics if `i >= bins()`.
    #[must_use]
    pub fn bin_center(&self, i: usize) -> f64 {
        let (a, b) = self.bin_edges(i);
        match self.binning {
            Binning::Linear => 0.5 * (a + b),
            Binning::Logarithmic => (a * b).sqrt(),
        }
    }

    /// Estimated probability *density* in bin `i`: relative frequency
    /// divided by bin width. Returns `0` if the histogram is empty.
    ///
    /// # Panics
    ///
    /// Panics if `i >= bins()`.
    #[must_use]
    pub fn density(&self, i: usize) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let (a, b) = self.bin_edges(i);
        self.counts[i] as f64 / total as f64 / (b - a)
    }

    /// Relative frequency of bin `i` (count / total, including flows in the
    /// denominator). Returns `0` if empty.
    ///
    /// # Panics
    ///
    /// Panics if `i >= bins()`.
    #[must_use]
    pub fn frequency(&self, i: usize) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        self.counts[i] as f64 / total as f64
    }

    /// Iterates `(center, density)` pairs — the series a Figure-3-style
    /// plot consumes.
    pub fn density_series(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        (0..self.counts.len()).map(|i| (self.bin_center(i), self.density(i)))
    }

    fn edge(&self, i: usize) -> f64 {
        let n = self.counts.len() as f64;
        let t = i as f64 / n;
        match self.binning {
            Binning::Linear => self.lo + t * (self.hi - self.lo),
            Binning::Logarithmic => self.lo * (self.hi / self.lo).powf(t),
        }
    }

    fn bin_index(&self, value: f64) -> BinIndex {
        if value < self.lo || value.is_nan() {
            return BinIndex::Under;
        }
        if value >= self.hi {
            return BinIndex::Over;
        }
        let n = self.counts.len() as f64;
        let t = match self.binning {
            Binning::Linear => (value - self.lo) / (self.hi - self.lo),
            Binning::Logarithmic => (value / self.lo).ln() / (self.hi / self.lo).ln(),
        };
        let i = ((t * n) as usize).min(self.counts.len() - 1);
        BinIndex::In(i)
    }
}

impl fmt::Display for Histogram {
    /// Renders a compact `center: count` listing — never empty, even for an
    /// empty histogram (C-DEBUG-NONEMPTY analogue for Display).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "histogram [{}, {}) x{} ({:?})", self.lo, self.hi, self.bins(), self.binning)?;
        for i in 0..self.bins() {
            writeln!(f, "  {:>12.4}: {}", self.bin_center(i), self.counts[i])?;
        }
        write!(f, "  under={} over={}", self.underflow, self.overflow)
    }
}

enum BinIndex {
    Under,
    In(usize),
    Over,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn linear_binning_basics() {
        let mut h = Histogram::new(0.0, 10.0, 10, Binning::Linear);
        h.extend([0.0, 0.99, 5.0, 9.999, -1.0, 10.0]);
        assert_eq!(h.count(0), 2);
        assert_eq!(h.count(5), 1);
        assert_eq!(h.count(9), 1);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.total(), 6);
    }

    #[test]
    fn log_binning_edges_are_geometric() {
        let h = Histogram::new(1.0, 100.0, 2, Binning::Logarithmic);
        let (a, b) = h.bin_edges(0);
        assert!(approx_eq(a, 1.0, 1e-12));
        assert!(approx_eq(b, 10.0, 1e-12));
        let (c, d) = h.bin_edges(1);
        assert!(approx_eq(c, 10.0, 1e-12));
        assert!(approx_eq(d, 100.0, 1e-12));
    }

    #[test]
    fn log_binning_assignment() {
        let mut h = Histogram::new(1.0, 100.0, 2, Binning::Logarithmic);
        h.extend([2.0, 9.0, 11.0, 99.0]);
        assert_eq!(h.count(0), 2);
        assert_eq!(h.count(1), 2);
    }

    #[test]
    fn density_integrates_to_coverage() {
        let mut h = Histogram::new(0.0, 1.0, 4, Binning::Linear);
        h.extend([0.1, 0.3, 0.6, 0.9]);
        let integral: f64 =
            (0..4).map(|i| h.density(i) * (h.bin_edges(i).1 - h.bin_edges(i).0)).sum();
        assert!(approx_eq(integral, 1.0, 1e-12));
    }

    #[test]
    fn frequency_counts_flows_in_denominator() {
        let mut h = Histogram::new(0.0, 1.0, 1, Binning::Linear);
        h.extend([0.5, 2.0]);
        assert!(approx_eq(h.frequency(0), 0.5, 1e-12));
    }

    #[test]
    fn empty_histogram_density_zero() {
        let h = Histogram::new(0.0, 1.0, 3, Binning::Linear);
        assert_eq!(h.density(0), 0.0);
        assert_eq!(h.frequency(1), 0.0);
        assert_eq!(h.total(), 0);
    }

    #[test]
    fn nan_goes_to_underflow() {
        let mut h = Histogram::new(0.0, 1.0, 2, Binning::Linear);
        h.add(f64::NAN);
        assert_eq!(h.underflow(), 1);
    }

    #[test]
    fn display_never_empty() {
        let h = Histogram::new(0.0, 1.0, 2, Binning::Linear);
        assert!(!h.to_string().is_empty());
    }

    #[test]
    fn density_series_length() {
        let h = Histogram::new(0.0, 1.0, 7, Binning::Linear);
        assert_eq!(h.density_series().count(), 7);
    }

    #[test]
    #[should_panic(expected = "requires lo < hi")]
    fn rejects_inverted_bounds() {
        let _ = Histogram::new(1.0, 0.0, 3, Binning::Linear);
    }

    #[test]
    #[should_panic(expected = "logarithmic binning requires lo > 0")]
    fn rejects_log_zero_lo() {
        let _ = Histogram::new(0.0, 1.0, 3, Binning::Logarithmic);
    }
}
