//! Bracketing root finders.
//!
//! Used by the driving simulator to calibrate distribution parameters to a
//! target mean (e.g. "scale the Chicago-shaped stop-length distribution so
//! its mean is 60 s" for the Figure 5/6 traffic sweeps).

use std::fmt;

/// Error returned when a root cannot be located.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FindRootError {
    /// `f(a)` and `f(b)` have the same sign, so `[a, b]` does not bracket a
    /// root.
    NotBracketed,
    /// The iteration budget was exhausted before the tolerance was met.
    MaxIterations,
    /// The function returned a non-finite value inside the bracket.
    NonFiniteValue,
}

impl fmt::Display for FindRootError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NotBracketed => write!(f, "interval does not bracket a sign change"),
            Self::MaxIterations => write!(f, "iteration budget exhausted before convergence"),
            Self::NonFiniteValue => write!(f, "function returned a non-finite value"),
        }
    }
}

impl std::error::Error for FindRootError {}

/// Finds a root of `f` in `[a, b]` by bisection.
///
/// Converges unconditionally for any continuous `f` with a sign change on
/// the bracket, at one bit of accuracy per iteration.
///
/// # Errors
///
/// Returns [`FindRootError::NotBracketed`] if `f(a)·f(b) > 0`,
/// [`FindRootError::NonFiniteValue`] if `f` produces NaN/∞, and
/// [`FindRootError::MaxIterations`] if 200 iterations do not reach `tol`.
///
/// # Example
///
/// ```
/// use numeric::rootfind::bisect;
///
/// let r = bisect(|x| x * x - 2.0, 0.0, 2.0, 1e-12)?;
/// assert!((r - 2f64.sqrt()).abs() < 1e-10);
/// # Ok::<(), numeric::rootfind::FindRootError>(())
/// ```
pub fn bisect<F: Fn(f64) -> f64>(f: F, a: f64, b: f64, tol: f64) -> Result<f64, FindRootError> {
    let (mut lo, mut hi) = (a.min(b), a.max(b));
    let mut flo = f(lo);
    let fhi = f(hi);
    if !flo.is_finite() || !fhi.is_finite() {
        return Err(FindRootError::NonFiniteValue);
    }
    if flo == 0.0 {
        return Ok(lo);
    }
    if fhi == 0.0 {
        return Ok(hi);
    }
    if flo.signum() == fhi.signum() {
        return Err(FindRootError::NotBracketed);
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        let fmid = f(mid);
        if !fmid.is_finite() {
            return Err(FindRootError::NonFiniteValue);
        }
        if fmid == 0.0 || hi - lo < tol {
            return Ok(mid);
        }
        if fmid.signum() == flo.signum() {
            lo = mid;
            flo = fmid;
        } else {
            hi = mid;
        }
    }
    Err(FindRootError::MaxIterations)
}

/// Finds a root of `f` in `[a, b]` with Brent's method (inverse quadratic
/// interpolation with a bisection fallback).
///
/// Typically an order of magnitude fewer function evaluations than
/// [`bisect`] on smooth functions, with the same unconditional convergence
/// guarantee.
///
/// # Errors
///
/// Same conditions as [`bisect`].
///
/// # Example
///
/// ```
/// use numeric::rootfind::brent;
///
/// let r = brent(|x| x.cos() - x, 0.0, 1.0, 1e-14)?;
/// assert!((r - 0.7390851332151607).abs() < 1e-12);
/// # Ok::<(), numeric::rootfind::FindRootError>(())
/// ```
pub fn brent<F: Fn(f64) -> f64>(f: F, a: f64, b: f64, tol: f64) -> Result<f64, FindRootError> {
    let (mut a, mut b) = (a, b);
    let mut fa = f(a);
    let mut fb = f(b);
    if !fa.is_finite() || !fb.is_finite() {
        return Err(FindRootError::NonFiniteValue);
    }
    if fa == 0.0 {
        return Ok(a);
    }
    if fb == 0.0 {
        return Ok(b);
    }
    if fa.signum() == fb.signum() {
        return Err(FindRootError::NotBracketed);
    }
    if fa.abs() < fb.abs() {
        std::mem::swap(&mut a, &mut b);
        std::mem::swap(&mut fa, &mut fb);
    }
    let mut c = a;
    let mut fc = fa;
    let mut mflag = true;
    let mut d = c;
    for _ in 0..200 {
        if fb == 0.0 || (b - a).abs() < tol {
            return Ok(b);
        }
        let mut s = if fa != fc && fb != fc {
            // Inverse quadratic interpolation.
            a * fb * fc / ((fa - fb) * (fa - fc))
                + b * fa * fc / ((fb - fa) * (fb - fc))
                + c * fa * fb / ((fc - fa) * (fc - fb))
        } else {
            // Secant step.
            b - fb * (b - a) / (fb - fa)
        };
        let lo = (3.0 * a + b) / 4.0;
        let cond1 = !((s > lo.min(b) && s < lo.max(b)) || (s > b.min(lo) && s < b.max(lo)));
        let cond2 = mflag && (s - b).abs() >= (b - c).abs() / 2.0;
        let cond3 = !mflag && (s - b).abs() >= (c - d).abs() / 2.0;
        let cond4 = mflag && (b - c).abs() < tol;
        let cond5 = !mflag && (c - d).abs() < tol;
        if cond1 || cond2 || cond3 || cond4 || cond5 {
            s = 0.5 * (a + b);
            mflag = true;
        } else {
            mflag = false;
        }
        let fs = f(s);
        if !fs.is_finite() {
            return Err(FindRootError::NonFiniteValue);
        }
        d = c;
        c = b;
        fc = fb;
        if fa.signum() != fs.signum() {
            b = s;
            fb = fs;
        } else {
            a = s;
            fa = fs;
        }
        if fa.abs() < fb.abs() {
            std::mem::swap(&mut a, &mut b);
            std::mem::swap(&mut fa, &mut fb);
        }
    }
    Err(FindRootError::MaxIterations)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bisect_finds_sqrt2() {
        let r = bisect(|x| x * x - 2.0, 0.0, 2.0, 1e-12).unwrap();
        assert!((r - std::f64::consts::SQRT_2).abs() < 1e-10);
    }

    #[test]
    fn bisect_accepts_reversed_bracket() {
        let r = bisect(|x| x - 1.0, 5.0, 0.0, 1e-12).unwrap();
        assert!((r - 1.0).abs() < 1e-10);
    }

    #[test]
    fn bisect_detects_missing_bracket() {
        assert_eq!(bisect(|x| x * x + 1.0, -1.0, 1.0, 1e-9), Err(FindRootError::NotBracketed));
    }

    #[test]
    fn bisect_returns_endpoint_root() {
        assert_eq!(bisect(|x| x, 0.0, 1.0, 1e-9), Ok(0.0));
        assert_eq!(bisect(|x| x - 1.0, 0.0, 1.0, 1e-9), Ok(1.0));
    }

    #[test]
    fn brent_finds_cos_fixed_point() {
        let r = brent(|x| x.cos() - x, 0.0, 1.0, 1e-14).unwrap();
        assert!((r - 0.739_085_133_215_160_7).abs() < 1e-12);
    }

    #[test]
    fn brent_matches_bisect() {
        let f = |x: f64| x.exp() - 3.0;
        let rb = bisect(f, 0.0, 2.0, 1e-13).unwrap();
        let rr = brent(f, 0.0, 2.0, 1e-13).unwrap();
        assert!((rb - rr).abs() < 1e-10);
        assert!((rr - 3f64.ln()).abs() < 1e-10);
    }

    #[test]
    fn brent_detects_missing_bracket() {
        assert_eq!(brent(|x| x * x + 1.0, -1.0, 1.0, 1e-9), Err(FindRootError::NotBracketed));
    }

    #[test]
    fn nonfinite_function_rejected() {
        assert_eq!(bisect(|_| f64::NAN, 0.0, 1.0, 1e-9), Err(FindRootError::NonFiniteValue));
    }

    #[test]
    fn error_display_is_nonempty() {
        for e in [
            FindRootError::NotBracketed,
            FindRootError::MaxIterations,
            FindRootError::NonFiniteValue,
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
