//! Numerical substrate for the automotive-idling reproduction.
//!
//! This crate is intentionally dependency-free (modulo optional `serde`
//! derives) and provides the small numerical toolbox that the rest of the
//! workspace builds on:
//!
//! * [`quadrature`] — adaptive Simpson integration, used to cross-validate
//!   the closed-form expected-cost integrals of the randomized ski-rental
//!   policies against direct numeric integration.
//! * [`simplex`] — a dense two-phase simplex solver for the small linear
//!   programs that arise in the paper's Section 4.4 vertex-selection step.
//! * [`special`] — special functions: `erf`, `ln_gamma`, and the asymptotic
//!   Kolmogorov distribution used for Kolmogorov–Smirnov p-values.
//! * [`rootfind`] — bracketing root finders (bisection / Brent), used when
//!   calibrating synthetic stop-length distributions to a target mean.
//! * [`histogram`] — fixed-width and logarithmic histograms for the
//!   Figure-3 stop-length distribution plots.
//! * [`stats`] — streaming and batch summary statistics (Welford variance,
//!   quantiles, min/max) used throughout the fleet experiments.
//! * [`crc32`] — CRC-32 (IEEE) checksums shared by the crash-safe state
//!   snapshots and the drive-trace CSV integrity footer.
//!
//! # Example
//!
//! ```
//! use numeric::quadrature::integrate;
//!
//! // ∫₀^1 e^x dx = e − 1
//! let v = integrate(|x| x.exp(), 0.0, 1.0, 1e-10);
//! assert!((v - (1f64.exp() - 1.0)).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crc32;
pub mod histogram;
pub mod quadrature;
pub mod rootfind;
pub mod simplex;
pub mod special;
pub mod stats;

/// Machine-level tolerance used as a default for "are these costs equal"
/// comparisons throughout the workspace.
pub const DEFAULT_TOL: f64 = 1e-9;

/// Returns `true` when `a` and `b` agree to within `tol` absolutely **or**
/// relatively (whichever is looser), which is the right notion for comparing
/// costs that can span several orders of magnitude.
///
/// # Example
///
/// ```
/// assert!(numeric::approx_eq(1.0, 1.0 + 1e-12, 1e-9));
/// assert!(!numeric::approx_eq(1.0, 1.1, 1e-9));
/// ```
#[must_use]
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    let diff = (a - b).abs();
    diff <= tol || diff <= tol * a.abs().max(b.abs())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_absolute() {
        assert!(approx_eq(0.0, 1e-12, 1e-9));
        assert!(!approx_eq(0.0, 1e-6, 1e-9));
    }

    #[test]
    fn approx_eq_relative() {
        assert!(approx_eq(1e12, 1e12 + 1.0, 1e-9));
        assert!(!approx_eq(1e12, 1.001e12, 1e-9));
    }

    #[test]
    fn approx_eq_symmetry() {
        assert_eq!(approx_eq(3.0, 3.1, 0.05), approx_eq(3.1, 3.0, 0.05));
    }
}
