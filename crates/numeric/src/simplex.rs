//! A dense two-phase simplex solver for small linear programs.
//!
//! Section 4.4 of the paper reduces the constrained ski-rental design to a
//! linear program over the probability masses `(α, β, γ)` placed on the
//! TOI / DET / b-DET atoms (objective (32), constraints (33)). The optimum
//! is known to sit at one of four vertices, and `skirental` selects it in
//! closed form; this solver provides the *general* LP path so the closed
//! form can be cross-checked (see the `ablation_lp` bench and the
//! `constrained` module's tests).
//!
//! The implementation is a textbook dense tableau with Bland's anti-cycling
//! rule: variables are non-negative, constraints may be `≤`, `≥`, or `=`,
//! and both phases share the same pivoting kernel. It is built for problems
//! with tens of variables, not thousands.

use std::fmt;

/// Relation of a linear constraint row to its right-hand side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relation {
    /// `a·x ≤ b`
    Le,
    /// `a·x ≥ b`
    Ge,
    /// `a·x = b`
    Eq,
}

/// A single linear constraint `coeffs · x <relation> rhs`.
#[derive(Debug, Clone, PartialEq)]
pub struct Constraint {
    coeffs: Vec<f64>,
    relation: Relation,
    rhs: f64,
}

/// Why an LP could not be solved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveError {
    /// The feasible region is empty.
    Infeasible,
    /// The objective is unbounded below on the feasible region.
    Unbounded,
    /// A constraint row's coefficient count does not match the objective's.
    DimensionMismatch {
        /// Index of the offending constraint.
        constraint: usize,
        /// Number of coefficients supplied on that row.
        got: usize,
        /// Number of decision variables expected.
        expected: usize,
    },
    /// The objective or a constraint contains a NaN/∞ coefficient.
    NonFiniteInput,
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Infeasible => write!(f, "linear program is infeasible"),
            Self::Unbounded => write!(f, "linear program is unbounded"),
            Self::DimensionMismatch { constraint, got, expected } => {
                write!(f, "constraint {constraint} has {got} coefficients, expected {expected}")
            }
            Self::NonFiniteInput => write!(f, "non-finite coefficient in linear program"),
        }
    }
}

impl std::error::Error for SolveError {}

/// An optimal solution to a [`LinearProgram`].
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// Optimal values of the decision variables.
    pub x: Vec<f64>,
    /// Optimal objective value (for the *minimization* form).
    pub objective: f64,
}

/// A linear program `min c·x` subject to linear constraints and `x ≥ 0`.
///
/// # Example
///
/// Recover the classic vertex solution of a tiny transportation-style LP:
///
/// ```
/// use numeric::simplex::{LinearProgram, Relation};
///
/// // min −x − 2y  s.t.  x + y ≤ 4,  y ≤ 3,  x,y ≥ 0   →  x=1, y=3, obj=−7
/// let mut lp = LinearProgram::minimize(vec![-1.0, -2.0]);
/// lp.constrain(vec![1.0, 1.0], Relation::Le, 4.0)
///   .constrain(vec![0.0, 1.0], Relation::Le, 3.0);
/// let sol = lp.solve()?;
/// assert!((sol.objective + 7.0).abs() < 1e-9);
/// # Ok::<(), numeric::simplex::SolveError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LinearProgram {
    objective: Vec<f64>,
    constraints: Vec<Constraint>,
}

const EPS: f64 = 1e-9;

impl LinearProgram {
    /// Creates a minimization problem over `objective.len()` non-negative
    /// decision variables.
    ///
    /// # Panics
    ///
    /// Panics if `objective` is empty.
    #[must_use]
    pub fn minimize(objective: Vec<f64>) -> Self {
        assert!(!objective.is_empty(), "objective must have at least one variable");
        Self { objective, constraints: Vec::new() }
    }

    /// Creates a maximization problem by negating the objective; the
    /// returned [`Solution::objective`] is reported for the *maximization*
    /// once solved through [`Self::solve_max`].
    ///
    /// # Panics
    ///
    /// Panics if `objective` is empty.
    #[must_use]
    pub fn maximize(objective: Vec<f64>) -> Self {
        Self::minimize(objective.into_iter().map(|c| -c).collect())
    }

    /// Adds the constraint `coeffs · x <relation> rhs` and returns `self`
    /// for chaining.
    pub fn constrain(&mut self, coeffs: Vec<f64>, relation: Relation, rhs: f64) -> &mut Self {
        self.constraints.push(Constraint { coeffs, relation, rhs });
        self
    }

    /// Number of decision variables.
    #[must_use]
    pub fn num_vars(&self) -> usize {
        self.objective.len()
    }

    /// Number of constraints added so far.
    #[must_use]
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Solves the minimization problem with the two-phase simplex method.
    ///
    /// # Errors
    ///
    /// * [`SolveError::DimensionMismatch`] — a constraint row has the wrong
    ///   number of coefficients.
    /// * [`SolveError::NonFiniteInput`] — NaN/∞ in the input.
    /// * [`SolveError::Infeasible`] — phase 1 cannot zero the artificials.
    /// * [`SolveError::Unbounded`] — phase 2 finds an unbounded ray.
    pub fn solve(&self) -> Result<Solution, SolveError> {
        self.validate()?;
        Tableau::new(self).solve()
    }

    /// Solves a problem built with [`Self::maximize`], reporting the
    /// objective in maximization orientation.
    ///
    /// # Errors
    ///
    /// Same as [`Self::solve`].
    pub fn solve_max(&self) -> Result<Solution, SolveError> {
        let sol = self.solve()?;
        Ok(Solution { objective: -sol.objective, x: sol.x })
    }

    fn validate(&self) -> Result<(), SolveError> {
        if self.objective.iter().any(|c| !c.is_finite()) {
            return Err(SolveError::NonFiniteInput);
        }
        let n = self.objective.len();
        for (i, c) in self.constraints.iter().enumerate() {
            if c.coeffs.len() != n {
                return Err(SolveError::DimensionMismatch {
                    constraint: i,
                    got: c.coeffs.len(),
                    expected: n,
                });
            }
            if c.coeffs.iter().any(|v| !v.is_finite()) || !c.rhs.is_finite() {
                return Err(SolveError::NonFiniteInput);
            }
        }
        Ok(())
    }
}

/// Dense simplex tableau.
///
/// Layout: `rows × (n_total + 1)` where the last column is the RHS.
/// Columns: `[decision | slack/surplus | artificial]`.
struct Tableau {
    /// Constraint rows.
    rows: Vec<Vec<f64>>,
    /// Basis variable index for each row.
    basis: Vec<usize>,
    /// Number of decision variables.
    n_dec: usize,
    /// Total structural columns (decision + slack + artificial).
    n_total: usize,
    /// First artificial column index.
    art_start: usize,
    /// Original objective padded to `n_total`.
    cost: Vec<f64>,
}

impl Tableau {
    fn new(lp: &LinearProgram) -> Self {
        let n_dec = lp.objective.len();
        let m = lp.constraints.len();

        // Count slack/surplus columns and normalize rows to rhs ≥ 0.
        let mut norm: Vec<(Vec<f64>, Relation, f64)> =
            lp.constraints.iter().map(|c| (c.coeffs.clone(), c.relation, c.rhs)).collect();
        for (coeffs, rel, rhs) in &mut norm {
            if *rhs < 0.0 {
                for v in coeffs.iter_mut() {
                    *v = -*v;
                }
                *rhs = -*rhs;
                *rel = match *rel {
                    Relation::Le => Relation::Ge,
                    Relation::Ge => Relation::Le,
                    Relation::Eq => Relation::Eq,
                };
            }
        }
        let n_slack =
            norm.iter().filter(|(_, rel, _)| matches!(rel, Relation::Le | Relation::Ge)).count();
        // Every row gets an artificial except `≤` rows, whose slack can
        // start basic.
        let n_art = norm.iter().filter(|(_, rel, _)| !matches!(rel, Relation::Le)).count();
        let art_start = n_dec + n_slack;
        let n_total = art_start + n_art;

        let mut rows = vec![vec![0.0; n_total + 1]; m];
        let mut basis = vec![0usize; m];
        let mut slack_col = n_dec;
        let mut art_col = art_start;
        for (i, (coeffs, rel, rhs)) in norm.iter().enumerate() {
            rows[i][..n_dec].copy_from_slice(coeffs);
            rows[i][n_total] = *rhs;
            match rel {
                Relation::Le => {
                    rows[i][slack_col] = 1.0;
                    basis[i] = slack_col;
                    slack_col += 1;
                }
                Relation::Ge => {
                    rows[i][slack_col] = -1.0;
                    slack_col += 1;
                    rows[i][art_col] = 1.0;
                    basis[i] = art_col;
                    art_col += 1;
                }
                Relation::Eq => {
                    rows[i][art_col] = 1.0;
                    basis[i] = art_col;
                    art_col += 1;
                }
            }
        }

        let mut cost = vec![0.0; n_total];
        cost[..n_dec].copy_from_slice(&lp.objective);

        Self { rows, basis, n_dec, n_total, art_start, cost }
    }

    fn solve(mut self) -> Result<Solution, SolveError> {
        // Phase 1: minimize the sum of artificial variables.
        if self.art_start < self.n_total {
            let phase1_cost: Vec<f64> =
                (0..self.n_total).map(|j| if j >= self.art_start { 1.0 } else { 0.0 }).collect();
            let obj = self.run_phase(&phase1_cost, self.n_total)?;
            if obj > EPS {
                return Err(SolveError::Infeasible);
            }
            self.drive_out_artificials();
        }
        // Phase 2: original objective, artificials barred from entering.
        let cost = self.cost.clone();
        let objective = self.run_phase(&cost, self.art_start)?;
        let mut x = vec![0.0; self.n_dec];
        for (row, &bj) in self.basis.iter().enumerate() {
            if bj < self.n_dec {
                x[bj] = self.rows[row][self.n_total];
            }
        }
        Ok(Solution { x, objective })
    }

    /// Runs primal simplex with cost vector `cost`, allowing only columns
    /// `< col_limit` to enter the basis. Returns the optimal objective.
    fn run_phase(&mut self, cost: &[f64], col_limit: usize) -> Result<f64, SolveError> {
        loop {
            let reduced = self.reduced_costs(cost);
            // Bland's rule: smallest-index column with negative reduced cost.
            let entering = (0..col_limit).find(|&j| reduced[j] < -EPS);
            let Some(enter) = entering else {
                return Ok(self.objective_value(cost));
            };
            // Ratio test with Bland tie-breaking on basis index.
            let mut leave: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            for (i, row) in self.rows.iter().enumerate() {
                let a = row[enter];
                if a > EPS {
                    let ratio = row[self.n_total] / a;
                    let better = ratio < best_ratio - EPS
                        || (ratio < best_ratio + EPS
                            && leave.is_some_and(|l| self.basis[i] < self.basis[l]));
                    if better {
                        best_ratio = ratio;
                        leave = Some(i);
                    }
                }
            }
            let Some(leave) = leave else {
                return Err(SolveError::Unbounded);
            };
            self.pivot(leave, enter);
        }
    }

    fn reduced_costs(&self, cost: &[f64]) -> Vec<f64> {
        // r_j = c_j − c_B · B⁻¹A_j ; with an explicit tableau B⁻¹A is just
        // the stored rows, so r_j = c_j − Σ_i c_{basis(i)} · rows[i][j].
        let mut r = cost.to_vec();
        for (i, row) in self.rows.iter().enumerate() {
            let cb = cost[self.basis[i]];
            if cb != 0.0 {
                for j in 0..self.n_total {
                    r[j] -= cb * row[j];
                }
            }
        }
        r
    }

    fn objective_value(&self, cost: &[f64]) -> f64 {
        self.rows.iter().enumerate().map(|(i, row)| cost[self.basis[i]] * row[self.n_total]).sum()
    }

    fn pivot(&mut self, row: usize, col: usize) {
        let p = self.rows[row][col];
        for v in self.rows[row].iter_mut() {
            *v /= p;
        }
        let pivot_row = self.rows[row].clone();
        for (i, r) in self.rows.iter_mut().enumerate() {
            if i != row {
                let factor = r[col];
                if factor != 0.0 {
                    for (v, pv) in r.iter_mut().zip(&pivot_row) {
                        *v -= factor * pv;
                    }
                }
            }
        }
        self.basis[row] = col;
    }

    /// After phase 1, pivot any artificial variable still in the basis out
    /// on a non-artificial column (or drop the redundant row if none
    /// exists).
    fn drive_out_artificials(&mut self) {
        for i in 0..self.rows.len() {
            if self.basis[i] >= self.art_start {
                let col = (0..self.art_start).find(|&j| self.rows[i][j].abs() > EPS);
                if let Some(col) = col {
                    self.pivot(i, col);
                } else {
                    // Redundant row: all structural coefficients are zero
                    // and (phase 1 succeeded) so is the RHS. Zeroing keeps
                    // indices stable and the row inert.
                    for v in self.rows[i].iter_mut() {
                        *v = 0.0;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    fn assert_sol(sol: &Solution, x: &[f64], obj: f64) {
        assert!(approx_eq(sol.objective, obj, 1e-7), "objective {} != {obj}", sol.objective);
        for (i, (&got, &want)) in sol.x.iter().zip(x).enumerate() {
            assert!(approx_eq(got, want, 1e-7), "x[{i}] = {got}, want {want}");
        }
    }

    #[test]
    fn basic_maximization() {
        // max 3x + 5y  s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 → (2,6), 36
        let mut lp = LinearProgram::maximize(vec![3.0, 5.0]);
        lp.constrain(vec![1.0, 0.0], Relation::Le, 4.0)
            .constrain(vec![0.0, 2.0], Relation::Le, 12.0)
            .constrain(vec![3.0, 2.0], Relation::Le, 18.0);
        let sol = lp.solve_max().unwrap();
        assert_sol(&sol, &[2.0, 6.0], 36.0);
    }

    #[test]
    fn minimization_with_ge() {
        // min 2x + 3y  s.t. x + y ≥ 10, x ≥ 2 → (10, 0)? check: obj 20 at
        // (10,0); (2,8) gives 4+24=28. So (10,0), obj 20.
        let mut lp = LinearProgram::minimize(vec![2.0, 3.0]);
        lp.constrain(vec![1.0, 1.0], Relation::Ge, 10.0).constrain(
            vec![1.0, 0.0],
            Relation::Ge,
            2.0,
        );
        let sol = lp.solve().unwrap();
        assert_sol(&sol, &[10.0, 0.0], 20.0);
    }

    #[test]
    fn equality_constraint() {
        // min x + y  s.t. x + 2y = 4, x ≤ 1 → x=1? obj at (0,2)=2; (1,1.5)=2.5.
        // min is (0,2) with obj 2.
        let mut lp = LinearProgram::minimize(vec![1.0, 1.0]);
        lp.constrain(vec![1.0, 2.0], Relation::Eq, 4.0).constrain(
            vec![1.0, 0.0],
            Relation::Le,
            1.0,
        );
        let sol = lp.solve().unwrap();
        assert_sol(&sol, &[0.0, 2.0], 2.0);
    }

    #[test]
    fn negative_rhs_normalized() {
        // −x ≤ −3  ⟺  x ≥ 3 ; min x → 3.
        let mut lp = LinearProgram::minimize(vec![1.0]);
        lp.constrain(vec![-1.0], Relation::Le, -3.0);
        let sol = lp.solve().unwrap();
        assert_sol(&sol, &[3.0], 3.0);
    }

    #[test]
    fn detects_infeasible() {
        let mut lp = LinearProgram::minimize(vec![1.0]);
        lp.constrain(vec![1.0], Relation::Le, 1.0).constrain(vec![1.0], Relation::Ge, 2.0);
        assert_eq!(lp.solve(), Err(SolveError::Infeasible));
    }

    #[test]
    fn detects_unbounded() {
        // min −x, x ≥ 0, no upper bound.
        let mut lp = LinearProgram::minimize(vec![-1.0]);
        lp.constrain(vec![1.0], Relation::Ge, 0.0);
        assert_eq!(lp.solve(), Err(SolveError::Unbounded));
    }

    #[test]
    fn detects_dimension_mismatch() {
        let mut lp = LinearProgram::minimize(vec![1.0, 2.0]);
        lp.constrain(vec![1.0], Relation::Le, 1.0);
        assert_eq!(
            lp.solve(),
            Err(SolveError::DimensionMismatch { constraint: 0, got: 1, expected: 2 })
        );
    }

    #[test]
    fn detects_non_finite() {
        let mut lp = LinearProgram::minimize(vec![f64::NAN]);
        lp.constrain(vec![1.0], Relation::Le, 1.0);
        assert_eq!(lp.solve(), Err(SolveError::NonFiniteInput));
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Classic degenerate vertex; Bland's rule must avoid cycling.
        let mut lp = LinearProgram::minimize(vec![-0.75, 150.0, -0.02, 6.0]);
        lp.constrain(vec![0.25, -60.0, -0.04, 9.0], Relation::Le, 0.0)
            .constrain(vec![0.5, -90.0, -0.02, 3.0], Relation::Le, 0.0)
            .constrain(vec![0.0, 0.0, 1.0, 0.0], Relation::Le, 1.0);
        let sol = lp.solve().unwrap();
        assert!(approx_eq(sol.objective, -0.05, 1e-7), "objective {}", sol.objective);
    }

    #[test]
    fn redundant_equality_rows() {
        // x + y = 2 listed twice: feasible, redundant row must be handled.
        let mut lp = LinearProgram::minimize(vec![1.0, 0.0]);
        lp.constrain(vec![1.0, 1.0], Relation::Eq, 2.0).constrain(
            vec![1.0, 1.0],
            Relation::Eq,
            2.0,
        );
        let sol = lp.solve().unwrap();
        assert_sol(&sol, &[0.0, 2.0], 0.0);
    }

    #[test]
    fn paper_vertex_lp_shape() {
        // The Section-4.4 LP: min Kα·α + Kβ·β + Kγ·γ with α+β+γ ≤ 1 picks
        // the most negative coefficient's vertex.
        let mut lp = LinearProgram::minimize(vec![-0.2, -0.5, -0.1]);
        lp.constrain(vec![1.0, 1.0, 1.0], Relation::Le, 1.0);
        let sol = lp.solve().unwrap();
        assert_sol(&sol, &[0.0, 1.0, 0.0], -0.5);
    }

    #[test]
    fn all_coefficients_positive_selects_origin() {
        let mut lp = LinearProgram::minimize(vec![0.3, 0.7, 0.1]);
        lp.constrain(vec![1.0, 1.0, 1.0], Relation::Le, 1.0);
        let sol = lp.solve().unwrap();
        assert_sol(&sol, &[0.0, 0.0, 0.0], 0.0);
    }

    #[test]
    fn error_display_nonempty() {
        let errs: Vec<SolveError> = vec![
            SolveError::Infeasible,
            SolveError::Unbounded,
            SolveError::NonFiniteInput,
            SolveError::DimensionMismatch { constraint: 0, got: 1, expected: 2 },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn accessors() {
        let mut lp = LinearProgram::minimize(vec![1.0, 2.0]);
        lp.constrain(vec![1.0, 1.0], Relation::Le, 1.0);
        assert_eq!(lp.num_vars(), 2);
        assert_eq!(lp.num_constraints(), 1);
    }
}
