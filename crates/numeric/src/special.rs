//! Special functions.
//!
//! Provides the handful of special functions the workspace needs: `ln Γ`,
//! the regularized incomplete gamma functions, `erf`/`erfc`, the standard
//! normal CDF, and the asymptotic Kolmogorov distribution used to attach
//! p-values to Kolmogorov–Smirnov statistics (the paper applies a K-S test
//! to reject exponentiality of the stop-length data in Figure 3).

use std::f64::consts::PI;

/// Natural log of the gamma function, `ln Γ(x)`, for `x > 0`.
///
/// Uses the Lanczos approximation (g = 7, n = 9), accurate to ~1e-13 over
/// the domain used here.
///
/// # Panics
///
/// Panics if `x ≤ 0`.
///
/// # Example
///
/// ```
/// // Γ(5) = 4! = 24
/// assert!((numeric::special::ln_gamma(5.0) - 24f64.ln()).abs() < 1e-12);
/// ```
#[must_use]
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula keeps accuracy for small x.
        return (PI / (PI * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + G + 0.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized lower incomplete gamma function `P(a, x) = γ(a,x)/Γ(a)`.
///
/// # Panics
///
/// Panics if `a ≤ 0` or `x < 0`.
#[must_use]
pub fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gamma_p requires a > 0");
    assert!(x >= 0.0, "gamma_p requires x >= 0");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_cf(a, x)
    }
}

/// Regularized upper incomplete gamma function `Q(a, x) = 1 − P(a, x)`.
///
/// # Panics
///
/// Panics if `a ≤ 0` or `x < 0`.
#[must_use]
pub fn gamma_q(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gamma_q requires a > 0");
    assert!(x >= 0.0, "gamma_q requires x >= 0");
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_cf(a, x)
    }
}

/// Series representation of `P(a, x)`, convergent for `x < a + 1`.
fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..500 {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * 1e-16 {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Continued-fraction representation of `Q(a, x)` (modified Lentz),
/// convergent for `x ≥ a + 1`.
fn gamma_q_cf(a: f64, x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-16 {
            break;
        }
    }
    (-x + a * x.ln() - ln_gamma(a)).exp() * h
}

/// Error function `erf(x)`, accurate to ~1e-14 via the incomplete gamma
/// functions.
///
/// # Example
///
/// ```
/// assert!((numeric::special::erf(0.0)).abs() < 1e-15);
/// assert!((numeric::special::erf(1.0) - 0.8427007929497149).abs() < 1e-12);
/// ```
#[must_use]
pub fn erf(x: f64) -> f64 {
    if x == 0.0 {
        0.0
    } else if x > 0.0 {
        gamma_p(0.5, x * x)
    } else {
        -gamma_p(0.5, x * x)
    }
}

/// Complementary error function `erfc(x) = 1 − erf(x)`, computed without
/// cancellation for large `x`.
#[must_use]
pub fn erfc(x: f64) -> f64 {
    if x >= 0.0 {
        gamma_q(0.5, x * x)
    } else {
        1.0 + gamma_p(0.5, x * x)
    }
}

/// Standard normal cumulative distribution function `Φ(z)`.
///
/// # Example
///
/// ```
/// assert!((numeric::special::normal_cdf(0.0) - 0.5).abs() < 1e-15);
/// assert!((numeric::special::normal_cdf(1.96) - 0.9750021048517795).abs() < 1e-10);
/// ```
#[must_use]
pub fn normal_cdf(z: f64) -> f64 {
    0.5 * erfc(-z / std::f64::consts::SQRT_2)
}

/// Standard normal quantile (probit) `Φ⁻¹(p)` for `p ∈ (0, 1)`.
///
/// Acklam's rational approximation (≈ 1.15e-9 relative error), polished
/// with one Halley step against [`normal_cdf`] to near machine precision.
///
/// # Panics
///
/// Panics if `p` is outside the open interval `(0, 1)`.
///
/// # Example
///
/// ```
/// let z = numeric::special::normal_quantile(0.975);
/// assert!((z - 1.959963984540054).abs() < 1e-12);
/// ```
#[must_use]
pub fn normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "probability must be in (0,1), got {p}");
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };
    // One Halley step: u = (Φ(x) − p) / φ(x).
    let e = normal_cdf(x) - p;
    let pdf = (-0.5 * x * x).exp() / (2.0 * PI).sqrt();
    let u = e / pdf;
    x - u / (1.0 + 0.5 * x * u)
}

/// Survival function of the Kolmogorov distribution,
/// `Q_KS(λ) = 2 Σ_{j≥1} (−1)^{j−1} exp(−2 j² λ²)`.
///
/// This is the asymptotic null distribution of `√n · D_n`; it underpins
/// [`ks_p_value`]. Returns `1` for `λ ≤ 0` and decays to `0` as `λ → ∞`.
#[must_use]
pub fn kolmogorov_sf(lambda: f64) -> f64 {
    if lambda <= 0.0 {
        return 1.0;
    }
    let l2 = lambda * lambda;
    let mut sum = 0.0;
    let mut sign = 1.0;
    for j in 1..=100 {
        let term = (-2.0 * (j as f64).powi(2) * l2).exp();
        sum += sign * term;
        sign = -sign;
        if term < 1e-16 {
            break;
        }
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

/// Asymptotic p-value for a one-sample Kolmogorov–Smirnov statistic `d`
/// computed from `n` observations, using Stephens' finite-sample correction
/// `λ = (√n + 0.12 + 0.11/√n) · d`.
///
/// # Panics
///
/// Panics if `n == 0` or `d` is not in `[0, 1]`.
///
/// # Example
///
/// ```
/// // A large deviation on a big sample is overwhelmingly significant.
/// let p = numeric::special::ks_p_value(0.2, 1000);
/// assert!(p < 1e-6);
/// ```
#[must_use]
pub fn ks_p_value(d: f64, n: usize) -> f64 {
    assert!(n > 0, "sample size must be positive");
    assert!((0.0..=1.0).contains(&d), "KS statistic must lie in [0,1], got {d}");
    let sn = (n as f64).sqrt();
    kolmogorov_sf((sn + 0.12 + 0.11 / sn) * d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn ln_gamma_integers() {
        // Γ(n) = (n−1)!
        let facts = [1.0f64, 1.0, 2.0, 6.0, 24.0, 120.0, 720.0];
        for (n, &f) in facts.iter().enumerate() {
            let x = (n + 1) as f64;
            assert!(
                approx_eq(ln_gamma(x), f.ln(), 1e-12),
                "ln_gamma({x}) = {}, want {}",
                ln_gamma(x),
                f.ln()
            );
        }
    }

    #[test]
    fn ln_gamma_half() {
        // Γ(1/2) = √π
        assert!(approx_eq(ln_gamma(0.5), 0.5 * std::f64::consts::PI.ln(), 1e-12));
    }

    #[test]
    fn gamma_p_q_complementary() {
        for &a in &[0.3, 1.0, 2.5, 10.0] {
            for &x in &[0.1, 1.0, 3.0, 15.0] {
                let s = gamma_p(a, x) + gamma_q(a, x);
                assert!(approx_eq(s, 1.0, 1e-12), "P+Q = {s} at a={a}, x={x}");
            }
        }
    }

    #[test]
    fn gamma_p_exponential_cdf() {
        // P(1, x) = 1 − e^{−x}
        for &x in &[0.1, 0.5, 1.0, 2.0, 5.0] {
            assert!(approx_eq(gamma_p(1.0, x), 1.0 - (-x).exp(), 1e-13));
        }
    }

    #[test]
    fn erf_reference_values() {
        let cases = [
            (0.5, 0.520_499_877_813_046_5),
            (1.0, 0.842_700_792_949_714_9),
            (2.0, 0.995_322_265_018_952_7),
        ];
        for (x, want) in cases {
            assert!(approx_eq(erf(x), want, 1e-12), "erf({x}) = {}", erf(x));
            assert!(approx_eq(erf(-x), -want, 1e-12));
        }
    }

    #[test]
    fn erfc_no_cancellation() {
        // erfc(5) ≈ 1.537e-12; naive 1−erf would lose all digits.
        let v = erfc(5.0);
        assert!(approx_eq(v, 1.537_459_794_428_035e-12, 1e-6 * 1.5e-12 + 1e-20), "got {v}");
    }

    #[test]
    fn normal_cdf_symmetry() {
        for &z in &[0.1, 0.5, 1.0, 2.3] {
            assert!(approx_eq(normal_cdf(z) + normal_cdf(-z), 1.0, 1e-13));
        }
    }

    #[test]
    fn normal_quantile_round_trips_cdf() {
        for &p in &[1e-9, 1e-4, 0.02, 0.3, 0.5, 0.8, 0.975, 0.9999, 1.0 - 1e-9] {
            let z = normal_quantile(p);
            assert!(approx_eq(normal_cdf(z), p, 1e-10), "p={p}: cdf(q) = {}", normal_cdf(z));
        }
    }

    #[test]
    fn normal_quantile_reference_values() {
        assert!(normal_quantile(0.5).abs() < 1e-14);
        assert!(approx_eq(normal_quantile(0.975), 1.959_963_984_540_054, 1e-12));
        assert!(approx_eq(normal_quantile(0.025), -1.959_963_984_540_054, 1e-12));
    }

    #[test]
    #[should_panic(expected = "must be in (0,1)")]
    fn normal_quantile_rejects_boundary() {
        let _ = normal_quantile(1.0);
    }

    #[test]
    fn kolmogorov_sf_limits() {
        assert_eq!(kolmogorov_sf(0.0), 1.0);
        assert_eq!(kolmogorov_sf(-1.0), 1.0);
        assert!(kolmogorov_sf(10.0) < 1e-15);
        // Reference: Q(1.0) ≈ 0.26999967...
        assert!(approx_eq(kolmogorov_sf(1.0), 0.269_999_67, 1e-6));
    }

    #[test]
    fn kolmogorov_sf_monotone_decreasing() {
        let mut prev = 1.0;
        let mut l = 0.05;
        while l < 3.0 {
            let v = kolmogorov_sf(l);
            assert!(v <= prev + 1e-15, "not monotone at λ={l}");
            prev = v;
            l += 0.05;
        }
    }

    #[test]
    fn ks_p_value_behaviour() {
        // Tiny statistic on small sample: not significant.
        assert!(ks_p_value(0.05, 20) > 0.5);
        // Large statistic on large sample: very significant.
        assert!(ks_p_value(0.2, 1000) < 1e-6);
    }

    #[test]
    #[should_panic(expected = "sample size must be positive")]
    fn ks_p_value_rejects_zero_n() {
        let _ = ks_p_value(0.1, 0);
    }

    #[test]
    #[should_panic(expected = "requires x > 0")]
    fn ln_gamma_rejects_nonpositive() {
        let _ = ln_gamma(0.0);
    }
}
