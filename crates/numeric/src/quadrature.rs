//! Adaptive Simpson quadrature.
//!
//! The ski-rental analysis in the paper rests on closed-form integrals of
//! exponential threshold densities (e.g. the N-Rand expected cost). This
//! module provides an independent numeric check of those closed forms, and
//! is also used to compute expected costs under arbitrary user-supplied
//! threshold or stop-length densities for which no closed form exists.

/// Integrates `f` over `[a, b]` using adaptive Simpson's rule with absolute
/// error target `tol`.
///
/// The interval is recursively bisected until the local Richardson error
/// estimate falls below the locally apportioned tolerance, or the recursion
/// depth reaches an internal safety limit of 60 levels (at which point the
/// best available estimate is returned).
///
/// If `a > b` the result is the negated integral over `[b, a]`, matching the
/// usual orientation convention. An empty interval integrates to `0`.
///
/// # Panics
///
/// Panics if `a` or `b` is non-finite or if `tol` is not strictly positive.
///
/// # Example
///
/// ```
/// use numeric::quadrature::integrate;
///
/// let v = integrate(|x| x * x, 0.0, 3.0, 1e-12);
/// assert!((v - 9.0).abs() < 1e-10);
/// ```
pub fn integrate<F: Fn(f64) -> f64>(f: F, a: f64, b: f64, tol: f64) -> f64 {
    assert!(a.is_finite() && b.is_finite(), "integration bounds must be finite");
    assert!(tol > 0.0, "tolerance must be positive");
    if a == b {
        return 0.0;
    }
    if a > b {
        return -integrate(f, b, a, tol);
    }
    let fa = f(a);
    let fb = f(b);
    let m = 0.5 * (a + b);
    let fm = f(m);
    let whole = simpson(a, b, fa, fm, fb);
    adaptive(&f, a, b, fa, fm, fb, whole, tol, 60)
}

/// Integrates `f` over `[a, b]` with composite Simpson's rule on `n` equal
/// panels (`n` is rounded up to the next even integer, minimum 2).
///
/// This non-adaptive variant is useful when the integrand is cheap and
/// smooth and a predictable amount of work is preferred, e.g. inside
/// property tests.
///
/// # Panics
///
/// Panics if the bounds are non-finite or `n == 0`.
///
/// # Example
///
/// ```
/// use numeric::quadrature::integrate_fixed;
///
/// let v = integrate_fixed(|x| x.sin(), 0.0, std::f64::consts::PI, 1000);
/// assert!((v - 2.0).abs() < 1e-9);
/// ```
pub fn integrate_fixed<F: Fn(f64) -> f64>(f: F, a: f64, b: f64, n: usize) -> f64 {
    assert!(a.is_finite() && b.is_finite(), "integration bounds must be finite");
    assert!(n > 0, "panel count must be positive");
    if a == b {
        return 0.0;
    }
    if a > b {
        return -integrate_fixed(f, b, a, n);
    }
    let n = if n % 2 == 0 { n } else { n + 1 };
    let h = (b - a) / n as f64;
    let mut sum = f(a) + f(b);
    for i in 1..n {
        let x = a + h * i as f64;
        sum += if i % 2 == 1 { 4.0 * f(x) } else { 2.0 * f(x) };
    }
    sum * h / 3.0
}

fn simpson(a: f64, b: f64, fa: f64, fm: f64, fb: f64) -> f64 {
    (b - a) / 6.0 * (fa + 4.0 * fm + fb)
}

#[allow(clippy::too_many_arguments)]
fn adaptive<F: Fn(f64) -> f64>(
    f: &F,
    a: f64,
    b: f64,
    fa: f64,
    fm: f64,
    fb: f64,
    whole: f64,
    tol: f64,
    depth: u32,
) -> f64 {
    let m = 0.5 * (a + b);
    let lm = 0.5 * (a + m);
    let rm = 0.5 * (m + b);
    let flm = f(lm);
    let frm = f(rm);
    let left = simpson(a, m, fa, flm, fm);
    let right = simpson(m, b, fm, frm, fb);
    let delta = left + right - whole;
    if depth == 0 || delta.abs() <= 15.0 * tol {
        // Richardson extrapolation on the two half-interval estimates.
        left + right + delta / 15.0
    } else {
        adaptive(f, a, m, fa, flm, fm, left, 0.5 * tol, depth - 1)
            + adaptive(f, m, b, fm, frm, fb, right, 0.5 * tol, depth - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;
    use std::f64::consts::{E, PI};

    #[test]
    fn integrates_polynomial_exactly() {
        // Simpson is exact for cubics.
        let v = integrate(|x| 4.0 * x * x * x - 2.0 * x + 1.0, -1.0, 2.0, 1e-12);
        // ∫ = x^4 - x^2 + x evaluated: (16-4+2) - (1-1-1) = 14 + 1 = 15
        assert!(approx_eq(v, 15.0, 1e-10), "got {v}");
    }

    #[test]
    fn integrates_exponential() {
        let v = integrate(|x| x.exp(), 0.0, 1.0, 1e-12);
        assert!(approx_eq(v, E - 1.0, 1e-10));
    }

    #[test]
    fn reversed_bounds_negate() {
        let fwd = integrate(|x| x.cos(), 0.0, PI / 2.0, 1e-10);
        let rev = integrate(|x| x.cos(), PI / 2.0, 0.0, 1e-10);
        assert!(approx_eq(fwd, -rev, 1e-10));
        assert!(approx_eq(fwd, 1.0, 1e-8));
    }

    #[test]
    fn empty_interval_is_zero() {
        assert_eq!(integrate(|x| x.exp(), 2.0, 2.0, 1e-9), 0.0);
        assert_eq!(integrate_fixed(|x| x.exp(), 2.0, 2.0, 8), 0.0);
    }

    #[test]
    fn handles_sharp_peak() {
        // Narrow Gaussian bump: adaptive refinement must find it.
        let sigma: f64 = 1e-3;
        let norm = 1.0 / (sigma * (2.0 * PI).sqrt());
        let f = |x: f64| norm * (-0.5 * ((x - 0.5) / sigma).powi(2)).exp();
        let v = integrate(f, 0.0, 1.0, 1e-10);
        assert!(approx_eq(v, 1.0, 1e-6), "got {v}");
    }

    #[test]
    fn fixed_matches_adaptive_on_smooth_integrand() {
        let f = |x: f64| (1.0 + x).ln();
        let a = integrate(f, 0.0, 4.0, 1e-12);
        let b = integrate_fixed(f, 0.0, 4.0, 4096);
        assert!(approx_eq(a, b, 1e-9));
    }

    #[test]
    fn fixed_rounds_odd_panel_count_up() {
        let v = integrate_fixed(|x| x, 0.0, 1.0, 3);
        assert!(approx_eq(v, 0.5, 1e-12));
    }

    #[test]
    #[should_panic(expected = "tolerance must be positive")]
    fn rejects_nonpositive_tolerance() {
        integrate(|x| x, 0.0, 1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "bounds must be finite")]
    fn rejects_infinite_bound() {
        integrate(|x| x, 0.0, f64::INFINITY, 1e-9);
    }
}
