//! CRC-32 (IEEE 802.3) checksums for corruption detection.
//!
//! The crash-safe persistence layer (`fleetstate`) and the drive-trace CSV
//! footer (`drivesim::persist`) both need a cheap, dependency-free
//! integrity check. This is the standard reflected CRC-32 with polynomial
//! `0xEDB8_8320` (the bit-reversed `0x04C1_1DB7`), initial value
//! `0xFFFF_FFFF`, and final XOR `0xFFFF_FFFF` — the same variant used by
//! gzip, PNG, and cksum-style tooling, so values are easy to cross-check
//! with external tools.
//!
//! # Example
//!
//! ```
//! // The canonical CRC-32 check value.
//! assert_eq!(numeric::crc32::crc32(b"123456789"), 0xCBF4_3926);
//! ```

/// Byte-at-a-time lookup table for the reflected polynomial `0xEDB8_8320`,
/// built at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// Streaming CRC-32 hasher; feed bytes with [`Hasher::update`] and read
/// the digest with [`Hasher::finalize`].
#[derive(Debug, Clone)]
pub struct Hasher {
    state: u32,
}

impl Hasher {
    /// A fresh hasher (initial state `0xFFFF_FFFF`).
    #[must_use]
    pub fn new() -> Self {
        Self { state: 0xFFFF_FFFF }
    }

    /// Absorbs `bytes` into the running checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            let idx = ((self.state ^ u32::from(b)) & 0xFF) as usize;
            self.state = (self.state >> 8) ^ TABLE[idx];
        }
    }

    /// The CRC-32 of everything absorbed so far (applies the final XOR;
    /// the hasher itself is unchanged and may keep absorbing).
    #[must_use]
    pub fn finalize(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

impl Default for Hasher {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot CRC-32 of `bytes`.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut h = Hasher::new();
    h.update(bytes);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_value() {
        // The standard check vector for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn streaming_matches_oneshot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let mut h = Hasher::new();
        for chunk in data.chunks(7) {
            h.update(chunk);
        }
        assert_eq!(h.finalize(), crc32(data));
    }

    #[test]
    fn finalize_is_nondestructive() {
        let mut h = Hasher::new();
        h.update(b"abc");
        let first = h.finalize();
        assert_eq!(h.finalize(), first);
        h.update(b"def");
        assert_eq!(h.finalize(), crc32(b"abcdef"));
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = vec![0x5Au8; 64];
        let clean = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                data[byte] ^= 1 << bit;
                assert_ne!(crc32(&data), clean, "flip at {byte}:{bit} undetected");
                data[byte] ^= 1 << bit;
            }
        }
    }
}
