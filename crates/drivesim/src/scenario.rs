//! Named driver scenarios.
//!
//! The paper notes its algorithm "can also be provided as a driving tip to
//! drivers of vehicles without stop-start systems". Advice depends on how
//! you drive: a delivery van's stop pattern is nothing like a highway
//! commuter's. This module provides calibrated stop-length mixtures for
//! archetypal usage patterns, so examples and tests can ask "what should
//! *this* driver do?" (see `examples/driving_tips.rs`).

use std::fmt;
use stopmodel::dist::{Censored, LogNormal, Mixture, Pareto, Uniform};

/// An archetypal driving pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Scenario {
    /// Suburban commuter: lights and signs, occasional congestion.
    Commuter,
    /// Urban delivery van: frequent short sign-stops plus long loading
    /// waits with the engine on.
    DeliveryVan,
    /// Taxi / ride-hailing: medium waits at curbs and ranks, heavy
    /// downtown lights.
    Taxi,
    /// Long-haul highway: stops are rare and either toll-booth short or
    /// rest-break long.
    Highway,
}

impl Scenario {
    /// All scenarios.
    pub const ALL: [Scenario; 4] =
        [Scenario::Commuter, Scenario::DeliveryVan, Scenario::Taxi, Scenario::Highway];

    /// Display name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Self::Commuter => "commuter",
            Self::DeliveryVan => "delivery van",
            Self::Taxi => "taxi",
            Self::Highway => "highway",
        }
    }

    /// Typical stops per day for the pattern.
    #[must_use]
    pub fn stops_per_day(&self) -> f64 {
        match self {
            Self::Commuter => 10.0,
            Self::DeliveryVan => 60.0,
            Self::Taxi => 35.0,
            Self::Highway => 2.5,
        }
    }

    /// The stop-length mixture for the pattern (seconds; tails censored
    /// at 2 h like the area models).
    ///
    /// # Panics
    ///
    /// Never panics — the preset parameters are validated by tests.
    #[must_use]
    // Compile-time-constant preset parameters; a construction failure here
    // is a programming error caught by the preset tests, not a runtime
    // condition worth plumbing a Result for.
    #[allow(clippy::expect_used)]
    pub fn stop_distribution(&self) -> Mixture {
        let cap = |p: Pareto| Censored::new(p, 7200.0).expect("positive cap");
        match self {
            Self::Commuter => Mixture::new(vec![
                (0.50, Box::new(LogNormal::new(2.35, 0.50).expect("valid")) as _),
                (0.46, Box::new(LogNormal::new(1.35, 0.60).expect("valid")) as _),
                (0.04, Box::new(cap(Pareto::new(45.0, 1.05).expect("valid"))) as _),
            ])
            .expect("positive weights"),
            Self::DeliveryVan => Mixture::new(vec![
                // Curbside drops: half a minute to several minutes.
                (0.55, Box::new(LogNormal::new(4.0, 0.7).expect("valid")) as _),
                // Signs/lights between drops.
                (0.40, Box::new(LogNormal::new(1.8, 0.6).expect("valid")) as _),
                // Dock waits.
                (0.05, Box::new(cap(Pareto::new(300.0, 1.4).expect("valid"))) as _),
            ])
            .expect("positive weights"),
            Self::Taxi => Mixture::new(vec![
                // Downtown lights: longer cycles.
                (0.60, Box::new(LogNormal::new(2.9, 0.5).expect("valid")) as _),
                // Pickup waits.
                (0.30, Box::new(LogNormal::new(3.6, 0.8).expect("valid")) as _),
                // Rank queueing.
                (0.10, Box::new(cap(Pareto::new(120.0, 1.3).expect("valid"))) as _),
            ])
            .expect("positive weights"),
            Self::Highway => Mixture::new(vec![
                // Toll booths / brief slowdowns.
                (0.70, Box::new(Uniform::new(2.0, 20.0).expect("valid")) as _),
                // Rest breaks with the engine idling.
                (0.30, Box::new(cap(Pareto::new(240.0, 1.6).expect("valid"))) as _),
            ])
            .expect("positive weights"),
        }
    }
}

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stopmodel::StopDistribution;

    #[test]
    fn all_presets_valid_and_distinct() {
        let mut means = Vec::new();
        for s in Scenario::ALL {
            let d = s.stop_distribution();
            let m = d.mean();
            assert!(m.is_finite() && m > 0.0, "{s}: mean {m}");
            assert!(s.stops_per_day() > 0.0);
            assert!(!s.name().is_empty());
            means.push(m);
        }
        // The patterns are genuinely different workloads.
        means.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for w in means.windows(2) {
            assert!(w[1] > 1.2 * w[0], "scenario means too similar: {means:?}");
        }
    }

    #[test]
    fn delivery_van_has_long_body() {
        // Median stop of a delivery van is minutes, not seconds.
        let d = Scenario::DeliveryVan.stop_distribution();
        assert!(d.quantile(0.5) > 20.0, "median {}", d.quantile(0.5));
    }

    #[test]
    fn commuter_mostly_short_stops() {
        let d = Scenario::Commuter.stop_distribution();
        assert!(d.cdf(28.0) > 0.9, "P(y<28) = {}", d.cdf(28.0));
    }

    #[test]
    fn scenarios_select_different_strategies() {
        // The whole point: the minimax-optimal advice differs by pattern.
        use std::collections::BTreeSet;
        let mut choices = BTreeSet::new();
        for s in Scenario::ALL {
            let d = s.stop_distribution();
            // B = 47 s (conventional vehicle being given a driving tip).
            let stats = skirental_stats(&d, 47.0);
            choices.insert(stats);
        }
        assert!(choices.len() >= 2, "all scenarios got the same advice: {choices:?}");
    }

    fn skirental_stats(d: &Mixture, b: f64) -> &'static str {
        // Avoid a dev-dependency cycle: reimplement the vertex argmin on
        // the (μ_B⁻, q_B⁺) computed from the distribution.
        let mu = d.partial_mean(b);
        let q = d.tail_prob(b);
        let offline = mu + q * b;
        let e = std::f64::consts::E;
        let mut best = ("DET", mu + 2.0 * q * b);
        if b < best.1 {
            best = ("TOI", b);
        }
        if q > 0.0 && mu > 0.0 && (mu * b / q).sqrt() <= b && mu / b < (1.0 - q).powi(2) / q {
            let c = (mu.sqrt() + (q * b).sqrt()).powi(2);
            if c < best.1 {
                best = ("b-DET", c);
            }
        }
        if e / (e - 1.0) * offline < best.1 {
            best = ("N-Rand", e / (e - 1.0) * offline);
        }
        best.0
    }
}
