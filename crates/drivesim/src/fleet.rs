//! Fleet synthesis and Table-1 statistics.
//!
//! [`FleetConfig`] generates one area's fleet; [`synthesize_nrel_like_fleet`]
//! builds the full 1182-vehicle study population (California 217, Chicago
//! 312, Atlanta 653 — the Section-5 counts); [`Table1Row`] reproduces the
//! stops-per-day summary table.

use crate::area::{Area, AreaParams};
use crate::diurnal::DiurnalProfile;
use crate::trace::VehicleTrace;
use crate::trip::VehicleProfile;
use numeric::stats::{fraction_at_most, RunningStats};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::fmt;

/// Number of recorded days per vehicle (the NREL collection window).
pub const TRACE_DAYS: u32 = 7;

/// Configuration for synthesizing one area's fleet.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetConfig {
    params: AreaParams,
    vehicles: usize,
    days: u32,
    diurnal: Option<DiurnalProfile>,
}

impl FleetConfig {
    /// Starts from the area's calibrated parameters with the Section-5
    /// fleet size and a 7-day window.
    #[must_use]
    pub fn new(area: Area) -> Self {
        let params = area.params();
        Self { params, vehicles: params.fleet_vehicles, days: TRACE_DAYS, diurnal: None }
    }

    /// Places stop arrivals according to a diurnal (time-of-day) profile
    /// instead of sequential exponential gaps, and returns `self`. Stop
    /// counts and durations — everything the ski-rental analysis consumes
    /// — keep the same generators; only timestamps change.
    #[must_use]
    pub fn with_diurnal(mut self, profile: DiurnalProfile) -> Self {
        self.diurnal = Some(profile);
        self
    }

    /// Overrides the number of vehicles (e.g. the Table-1 counts, or a
    /// small fleet for tests) and returns `self`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn vehicles(mut self, n: usize) -> Self {
        assert!(n > 0, "fleet needs at least one vehicle");
        self.vehicles = n;
        self
    }

    /// Overrides the number of recorded days and returns `self`.
    ///
    /// # Panics
    ///
    /// Panics if `days == 0`.
    #[must_use]
    pub fn days(mut self, days: u32) -> Self {
        assert!(days > 0, "need at least one day");
        self.days = days;
        self
    }

    /// The area parameters in use.
    #[must_use]
    pub fn params(&self) -> &AreaParams {
        &self.params
    }

    /// Synthesizes the fleet deterministically from `seed`.
    #[must_use]
    pub fn synthesize(&self, seed: u64) -> Vec<VehicleTrace> {
        // Derive a per-area stream so areas are independent of each other
        // and of vehicle count.
        let mut rng = StdRng::seed_from_u64(seed ^ area_salt(self.params.area));
        self.synthesize_with(&mut rng)
    }

    /// Synthesizes using a caller-provided RNG.
    #[must_use]
    pub fn synthesize_with(&self, rng: &mut dyn RngCore) -> Vec<VehicleTrace> {
        (0..self.vehicles)
            .map(|id| {
                let profile = VehicleProfile::draw(&self.params, id as u32, self.days, rng);
                match &self.diurnal {
                    Some(d) => profile.week_with_diurnal(self.days, d, rng),
                    None => profile.week(self.days, rng),
                }
            })
            .collect()
    }
}

fn area_salt(area: Area) -> u64 {
    match area {
        Area::California => 0xCA11F0,
        Area::Chicago => 0xC41CA6,
        Area::Atlanta => 0xA71A47,
    }
}

/// The three synthesized fleets of the Section-5 study.
#[derive(Debug, Clone, PartialEq)]
pub struct NrelLikeFleet {
    /// California: 217 vehicles.
    pub california: Vec<VehicleTrace>,
    /// Chicago: 312 vehicles.
    pub chicago: Vec<VehicleTrace>,
    /// Atlanta: 653 vehicles.
    pub atlanta: Vec<VehicleTrace>,
}

impl NrelLikeFleet {
    /// Per-area traces in the paper's order.
    #[must_use]
    pub fn by_area(&self) -> [(Area, &[VehicleTrace]); 3] {
        [
            (Area::California, self.california.as_slice()),
            (Area::Chicago, self.chicago.as_slice()),
            (Area::Atlanta, self.atlanta.as_slice()),
        ]
    }

    /// Total vehicle count (1182 with the default configuration).
    #[must_use]
    pub fn total_vehicles(&self) -> usize {
        self.california.len() + self.chicago.len() + self.atlanta.len()
    }

    /// Every stop length in one flat vector (for whole-population
    /// distribution plots).
    #[must_use]
    pub fn all_stop_lengths(&self) -> Vec<f64> {
        self.by_area()
            .iter()
            .flat_map(|(_, traces)| traces.iter())
            .flat_map(VehicleTrace::stop_lengths)
            .collect()
    }
}

/// Synthesizes the full 1182-vehicle study population.
#[must_use]
pub fn synthesize_nrel_like_fleet(seed: u64) -> NrelLikeFleet {
    NrelLikeFleet {
        california: FleetConfig::new(Area::California).synthesize(seed),
        chicago: FleetConfig::new(Area::Chicago).synthesize(seed),
        atlanta: FleetConfig::new(Area::Atlanta).synthesize(seed),
    }
}

/// One row of the paper's Table 1: stops-per-day statistics for an area.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table1Row {
    /// The area.
    pub area: Area,
    /// Number of vehicles.
    pub vehicles: usize,
    /// Mean stops per day across vehicles.
    pub mean: f64,
    /// Standard deviation of stops per day across vehicles.
    pub std_dev: f64,
    /// `P{X ≤ μ + 2σ}` across vehicles.
    pub p_within_2_sigma: f64,
}

impl Table1Row {
    /// Computes the row from a fleet of traces.
    ///
    /// # Panics
    ///
    /// Panics if `traces` is empty.
    #[must_use]
    pub fn from_traces(area: Area, traces: &[VehicleTrace]) -> Self {
        assert!(!traces.is_empty(), "need at least one vehicle");
        let rates: Vec<f64> = traces.iter().map(VehicleTrace::stops_per_day).collect();
        let stats: RunningStats = rates.iter().copied().collect();
        let mean = stats.mean();
        let std_dev = stats.sample_std_dev();
        Self {
            area,
            vehicles: traces.len(),
            mean,
            std_dev,
            p_within_2_sigma: fraction_at_most(&rates, mean + 2.0 * std_dev),
        }
    }
}

impl fmt::Display for Table1Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<11} {:>8} {:>8.2} {:>8.2} {:>10.4}",
            self.area.name(),
            self.vehicles,
            self.mean,
            self.std_dev,
            self.p_within_2_sigma
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stopmodel::dist::Exponential;
    use stopmodel::kstest::ks_test;

    #[test]
    fn small_fleet_shape() {
        let fleet = FleetConfig::new(Area::California).vehicles(5).days(3).synthesize(1);
        assert_eq!(fleet.len(), 5);
        for t in &fleet {
            assert_eq!(t.days, 3);
            assert!(t.num_stops() >= 1);
            assert_eq!(t.area, Area::California);
        }
    }

    #[test]
    fn diurnal_fleet_config() {
        use crate::diurnal::DiurnalProfile;
        let fleet = FleetConfig::new(Area::Chicago)
            .vehicles(30)
            .with_diurnal(DiurnalProfile::commuter())
            .synthesize(21);
        assert_eq!(fleet.len(), 30);
        let mut rush = 0usize;
        let mut night = 0usize;
        for t in &fleet {
            for e in t {
                let hour = (e.start_s % 86_400.0) / 3600.0;
                if (7.0..9.0).contains(&hour) || (16.0..19.0).contains(&hour) {
                    rush += 1;
                } else if hour < 5.0 {
                    night += 1;
                }
            }
        }
        assert!(rush > 3 * night, "rush {rush} vs night {night}");
    }

    #[test]
    fn synthesis_is_deterministic() {
        let a = FleetConfig::new(Area::Chicago).vehicles(4).synthesize(7);
        let b = FleetConfig::new(Area::Chicago).vehicles(4).synthesize(7);
        assert_eq!(a, b);
        let c = FleetConfig::new(Area::Chicago).vehicles(4).synthesize(8);
        assert_ne!(a, c);
    }

    #[test]
    fn full_study_population() {
        let fleet = synthesize_nrel_like_fleet(42);
        assert_eq!(fleet.california.len(), 217);
        assert_eq!(fleet.chicago.len(), 312);
        assert_eq!(fleet.atlanta.len(), 653);
        assert_eq!(fleet.total_vehicles(), 1182);
        assert!(fleet.all_stop_lengths().len() > 10_000);
    }

    #[test]
    fn table1_statistics_match_calibration() {
        // With the Table-1 vehicle counts, the synthesized stops/day
        // statistics land near the paper's values.
        for area in Area::ALL {
            let p = area.params();
            let fleet = FleetConfig::new(area).vehicles(p.table1_vehicles).synthesize(3);
            let row = Table1Row::from_traces(area, &fleet);
            assert!(
                (row.mean - p.stops_per_day_mean).abs() < 0.15 * p.stops_per_day_mean,
                "{area}: mean {} vs target {}",
                row.mean,
                p.stops_per_day_mean
            );
            assert!(
                (row.std_dev - p.stops_per_day_std).abs() < 0.2 * p.stops_per_day_std,
                "{area}: std {} vs target {}",
                row.std_dev,
                p.stops_per_day_std
            );
            // The paper's P column sits between 0.90 and 0.96.
            assert!(
                (0.85..=1.0).contains(&row.p_within_2_sigma),
                "{area}: P = {}",
                row.p_within_2_sigma
            );
        }
    }

    #[test]
    fn stop_lengths_are_heavy_tailed_non_exponential() {
        // The Figure-3 claim: a K-S test rejects the fitted exponential.
        for area in Area::ALL {
            let fleet = FleetConfig::new(area).vehicles(60).synthesize(5);
            let stops: Vec<f64> = fleet.iter().flat_map(VehicleTrace::stop_lengths).collect();
            let null = Exponential::fit(&stops).unwrap();
            let r = ks_test(&stops, &null);
            assert!(r.rejects_at(0.001), "{area}: p = {}", r.p_value);
        }
    }

    #[test]
    fn chicago_stops_longer_on_average() {
        let mean_of = |area: Area| {
            let fleet = FleetConfig::new(area).vehicles(80).synthesize(9);
            let stops: Vec<f64> = fleet.iter().flat_map(VehicleTrace::stop_lengths).collect();
            stops.iter().sum::<f64>() / stops.len() as f64
        };
        let chi = mean_of(Area::Chicago);
        assert!(chi > mean_of(Area::California), "Chicago {chi}");
        assert!(chi > mean_of(Area::Atlanta), "Chicago {chi}");
    }

    #[test]
    fn table1_row_display() {
        let fleet = FleetConfig::new(Area::Atlanta).vehicles(10).synthesize(11);
        let row = Table1Row::from_traces(Area::Atlanta, &fleet);
        let s = row.to_string();
        assert!(s.contains("Atlanta") && s.contains("10"));
    }

    #[test]
    #[should_panic(expected = "at least one vehicle")]
    fn table1_rejects_empty() {
        let _ = Table1Row::from_traces(Area::Atlanta, &[]);
    }

    #[test]
    #[should_panic(expected = "at least one vehicle")]
    fn config_rejects_zero_vehicles() {
        let _ = FleetConfig::new(Area::Atlanta).vehicles(0);
    }
}
