//! Per-vehicle stop-event generation.
//!
//! A [`VehicleProfile`] is one vehicle's realization of its area's
//! hyperpriors: its own stop rate (drawn from a Gamma matched to Table 1)
//! and its own mildly jittered stop-length mixture. From a profile, a
//! week-long [`VehicleTrace`] is generated day by day: a Poisson number of
//! stops per day, each stop assigned a cause and a duration, placed on the
//! clock with exponential gaps.

use crate::area::AreaParams;
use crate::random::{gamma_mean_std, poisson, standard_normal};
use crate::trace::{StopCause, StopEvent, VehicleTrace};
use rand::RngCore;
use stopmodel::dist::{Censored, LogNormal, Pareto, StopDistribution};
use stopmodel::uniform01;

/// Mean driving gap between consecutive stops, seconds (affects only
/// timestamps, not the ski-rental analysis).
const MEAN_GAP_S: f64 = 420.0;

/// Longest realizable ignition-on stop, seconds (2 h): the congestion
/// Pareto tail is near-critical (`α` just above 1), and real ignition-on
/// idling episodes do not last days, so the congestion component is
/// censored (`Y = min(X, cap)`) at this value.
const MAX_STOP_S: f64 = 7200.0;

/// One vehicle's realized generation parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct VehicleProfile {
    /// Vehicle identifier.
    pub vehicle_id: u32,
    /// Area parameters the profile was drawn from.
    pub params: AreaParams,
    /// This vehicle's mean stops per day.
    pub stops_per_day: f64,
    light: LogNormal,
    sign: LogNormal,
    congestion: Censored<Pareto>,
    weights: [f64; 3],
}

impl VehicleProfile {
    /// Draws a vehicle profile from the area's hyperpriors.
    ///
    /// Per-vehicle heterogeneity: the log-normal location parameters get
    /// a `N(0, 0.15)` shift, the congestion weight a log-normal(0, 0.3)
    /// multiplier (renormalized), and the stop rate a Gamma draw matching
    /// the Table-1 across-vehicle moments.
    #[must_use]
    pub fn draw(params: &AreaParams, vehicle_id: u32, days: u32, rng: &mut dyn RngCore) -> Self {
        let light_mu = params.light_log_mu + 0.15 * standard_normal(rng);
        let sign_mu = params.sign_log_mu + 0.15 * standard_normal(rng);
        let cong_mult = (0.3 * standard_normal(rng)).exp();
        let w_cong = (params.weight_congestion * cong_mult).min(0.5);
        let rest = 1.0 - w_cong;
        let light_sign_total = params.weight_light + params.weight_sign;
        let w_light = rest * params.weight_light / light_sign_total;
        let w_sign = rest * params.weight_sign / light_sign_total;

        // Per-vehicle mean stop rate; floored so every vehicle has data.
        let lambda =
            gamma_mean_std(params.stops_per_day_mean, params.lambda_std(days), rng).max(0.5);

        Self {
            vehicle_id,
            params: *params,
            stops_per_day: lambda,
            light: LogNormal::new(light_mu, params.light_log_sigma)
                .unwrap_or_else(|_| unreachable!("jittered parameters stay valid")),
            sign: LogNormal::new(sign_mu, params.sign_log_sigma)
                .unwrap_or_else(|_| unreachable!("jittered parameters stay valid")),
            congestion: Censored::new(
                Pareto::new(params.congestion_scale, params.congestion_alpha)
                    .unwrap_or_else(|_| unreachable!("area parameters are valid")),
                MAX_STOP_S,
            )
            .unwrap_or_else(|_| unreachable!("cap is positive")),
            weights: [w_light, w_sign, w_cong],
        }
    }

    /// Mixture weights `(light, sign, congestion)`.
    #[must_use]
    pub fn weights(&self) -> [f64; 3] {
        self.weights
    }

    /// Samples one stop: `(duration, cause)`.
    #[must_use]
    pub fn sample_stop(&self, rng: &mut dyn RngCore) -> (f64, StopCause) {
        let u = uniform01(rng);
        if u < self.weights[0] {
            (self.light.sample(rng), StopCause::TrafficLight)
        } else if u < self.weights[0] + self.weights[1] {
            (self.sign.sample(rng), StopCause::StopSign)
        } else {
            (self.congestion.sample(rng), StopCause::Congestion)
        }
    }

    /// Generates a `days`-long trace for this vehicle.
    ///
    /// Day `d` contributes a Poisson(λ) number of stops placed after
    /// exponential driving gaps starting at `d · 86 400 s`. A vehicle
    /// whose whole week draws zero stops is given a single stop so the
    /// plug-in estimators are always defined.
    ///
    /// # Panics
    ///
    /// Panics if `days == 0`.
    #[must_use]
    pub fn week(&self, days: u32, rng: &mut dyn RngCore) -> VehicleTrace {
        assert!(days > 0, "need at least one day");
        let mut events = Vec::new();
        for day in 0..days {
            let n = poisson(self.stops_per_day, rng);
            let mut t = f64::from(day) * 86_400.0;
            for _ in 0..n {
                // Exponential driving gap.
                let mut u = uniform01(rng);
                while u == 0.0 {
                    u = uniform01(rng);
                }
                t += -MEAN_GAP_S * u.ln();
                let (duration, cause) = self.sample_stop(rng);
                events.push(StopEvent { start_s: t, duration_s: duration, cause });
                t += duration;
            }
        }
        if events.is_empty() {
            let (duration, cause) = self.sample_stop(rng);
            events.push(StopEvent { start_s: 0.0, duration_s: duration, cause });
        }
        VehicleTrace::new(self.vehicle_id, self.params.area, days, events)
    }

    /// Like [`Self::week`], but stop *arrival times* follow a diurnal
    /// profile (e.g. commuter rush hours) instead of sequential
    /// exponential gaps. Stop counts and durations are drawn identically,
    /// so the ski-rental statistics are unchanged; only the timestamps
    /// move. Very long stops may overlap the next arrival — the analysis
    /// consumes durations only, and [`VehicleTrace`] requires only sorted
    /// start times.
    ///
    /// # Panics
    ///
    /// Panics if `days == 0`.
    #[must_use]
    pub fn week_with_diurnal(
        &self,
        days: u32,
        profile: &crate::diurnal::DiurnalProfile,
        rng: &mut dyn RngCore,
    ) -> VehicleTrace {
        assert!(days > 0, "need at least one day");
        let mut events = Vec::new();
        for day in 0..days {
            let n = poisson(self.stops_per_day, rng) as usize;
            let arrivals = profile.sample_day_arrivals(day, n, rng);
            for start_s in arrivals {
                let (duration, cause) = self.sample_stop(rng);
                events.push(StopEvent { start_s, duration_s: duration, cause });
            }
        }
        if events.is_empty() {
            let (duration, cause) = self.sample_stop(rng);
            events.push(StopEvent { start_s: 0.0, duration_s: duration, cause });
        }
        VehicleTrace::new(self.vehicle_id, self.params.area, days, events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::area::Area;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn profile(seed: u64) -> VehicleProfile {
        let mut rng = StdRng::seed_from_u64(seed);
        VehicleProfile::draw(&Area::Chicago.params(), 1, 7, &mut rng)
    }

    #[test]
    fn weights_normalized() {
        for seed in 0..50 {
            let p = profile(seed);
            let sum: f64 = p.weights().iter().sum();
            assert!((sum - 1.0).abs() < 1e-12, "weights sum {sum}");
            assert!(p.weights().iter().all(|&w| (0.0..=1.0).contains(&w)));
        }
    }

    #[test]
    fn stop_rate_positive_and_heterogeneous() {
        let rates: Vec<f64> = (0..200).map(|s| profile(s).stops_per_day).collect();
        assert!(rates.iter().all(|&r| r >= 0.5));
        let mean = rates.iter().sum::<f64>() / rates.len() as f64;
        // Near the Chicago Table-1 mean.
        assert!((mean - 12.49).abs() < 2.0, "mean rate {mean}");
        let var = rates.iter().map(|r| (r - mean).powi(2)).sum::<f64>() / rates.len() as f64;
        assert!(var > 10.0, "rates should vary across vehicles, var {var}");
    }

    #[test]
    fn sample_stop_causes_follow_weights() {
        let p = profile(3);
        let mut rng = StdRng::seed_from_u64(99);
        let n = 50_000;
        let mut counts = [0usize; 3];
        for _ in 0..n {
            let (d, cause) = p.sample_stop(&mut rng);
            assert!(d > 0.0);
            match cause {
                StopCause::TrafficLight => counts[0] += 1,
                StopCause::StopSign => counts[1] += 1,
                StopCause::Congestion => counts[2] += 1,
            }
        }
        for (i, (&count, &weight)) in counts.iter().zip(&p.weights()).enumerate() {
            let freq = count as f64 / n as f64;
            assert!((freq - weight).abs() < 0.01, "cause {i}: freq {freq} vs weight {weight}");
        }
    }

    #[test]
    fn congestion_stops_are_long() {
        let p = profile(4);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let (d, cause) = p.sample_stop(&mut rng);
            if cause == StopCause::Congestion {
                assert!(d >= p.params.congestion_scale);
            }
        }
    }

    #[test]
    fn week_has_chronological_events() {
        let p = profile(5);
        let mut rng = StdRng::seed_from_u64(11);
        let trace = p.week(7, &mut rng);
        assert!(trace.num_stops() > 0);
        let mut prev = 0.0;
        for e in &trace {
            assert!(e.start_s >= prev);
            prev = e.start_s;
        }
        // Roughly λ·7 stops.
        let expect = p.stops_per_day * 7.0;
        assert!(
            (trace.num_stops() as f64) > 0.3 * expect && (trace.num_stops() as f64) < 3.0 * expect,
            "stops {} vs expectation {expect}",
            trace.num_stops()
        );
    }

    #[test]
    fn week_never_empty() {
        // Even a minimal-rate vehicle gets at least one stop.
        let params = Area::California.params();
        let mut rng = StdRng::seed_from_u64(13);
        for id in 0..100 {
            let mut p = VehicleProfile::draw(&params, id, 7, &mut rng);
            p.stops_per_day = 0.5; // force the floor
            let t = p.week(1, &mut rng);
            assert!(t.num_stops() >= 1);
        }
    }

    #[test]
    fn diurnal_week_preserves_statistics() {
        use crate::diurnal::DiurnalProfile;
        let params = Area::Chicago.params();
        let mut rng = StdRng::seed_from_u64(31);
        let p = VehicleProfile::draw(&params, 1, 7, &mut rng);
        let profile = DiurnalProfile::commuter();
        let trace = p.week_with_diurnal(7, &profile, &mut rng);
        assert!(trace.num_stops() > 0);
        // Chronological starts, all within the week.
        let mut prev = 0.0;
        for e in &trace {
            assert!(e.start_s >= prev);
            assert!(e.start_s < 7.0 * 86_400.0);
            prev = e.start_s;
        }
        // Rush hours are busier than deep night across many vehicles.
        let mut rush = 0usize;
        let mut night = 0usize;
        for id in 0..60 {
            let p = VehicleProfile::draw(&params, id, 7, &mut rng);
            let t = p.week_with_diurnal(7, &profile, &mut rng);
            for e in &t {
                let hour = (e.start_s % 86_400.0) / 3600.0;
                if (7.0..9.0).contains(&hour) || (16.0..19.0).contains(&hour) {
                    rush += 1;
                } else if hour < 5.0 {
                    night += 1;
                }
            }
        }
        assert!(rush > 3 * night, "rush {rush} vs night {night}");
    }

    #[test]
    fn determinism_with_seed() {
        let params = Area::Atlanta.params();
        let mk = || {
            let mut rng = StdRng::seed_from_u64(21);
            let p = VehicleProfile::draw(&params, 1, 7, &mut rng);
            p.week(7, &mut rng)
        };
        assert_eq!(mk(), mk());
    }
}
