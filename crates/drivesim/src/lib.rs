//! Synthetic driving-trace simulator.
//!
//! The paper evaluates on one week of real driving data from 1182 vehicles
//! released by NREL, across three areas (California, Chicago, Atlanta).
//! That dataset is not redistributable, so this crate synthesizes the
//! closest statistical equivalent (see DESIGN.md for the substitution
//! argument):
//!
//! * per-area **stop-cause mixtures** — traffic-light queueing, stop
//!   signs, and heavy-tailed congestion/parking idling — calibrated so the
//!   stop-length distributions are heavy-tailed, non-exponential by a K-S
//!   test (the paper's Figure-3 observation), similar in shape across
//!   areas but different in mean (Chicago worst);
//! * per-area **stops-per-day** statistics matching Table 1 (mean, std,
//!   and the `P{X ≤ μ+2σ}` column);
//! * per-vehicle **heterogeneity** from area-level hyperpriors, so fleet
//!   comparisons (Figure 4) have realistic vehicle-to-vehicle spread.
//!
//! Everything is seeded and deterministic.
//!
//! # Example
//!
//! ```
//! use drivesim::{Area, FleetConfig};
//!
//! // One week of synthetic Chicago driving for a small fleet.
//! let fleet = FleetConfig::new(Area::Chicago).vehicles(5).synthesize(42);
//! assert_eq!(fleet.len(), 5);
//! let stops = fleet[0].stop_lengths();
//! assert!(!stops.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod area;
pub mod diurnal;
pub mod faults;
pub mod fleet;
mod obs;
pub mod persist;
pub mod random;
pub mod sanitize;
pub mod scenario;
pub mod trace;
pub mod trip;

pub use area::{Area, AreaParams};
pub use faults::{Fault, FaultPlan};
pub use fleet::{synthesize_nrel_like_fleet, FleetConfig, NrelLikeFleet, Table1Row};
pub use sanitize::{SanitizeReport, TraceSanitizer};
pub use trace::{StopCause, StopEvent, VehicleTrace};
pub use trip::VehicleProfile;
