//! Per-area parameter sets.
//!
//! The NREL dataset covers three areas. Two groups of statistics from the
//! paper anchor the synthetic calibration:
//!
//! * **Table 1** (stops per day): Atlanta μ=10.37 σ=8.42 (827 vehicles),
//!   Chicago μ=12.49 σ=9.97 (408), California μ=9.37 σ=7.68 (291);
//! * **Section 5** fleet sizes for the per-vehicle CR study: California
//!   217, Chicago 312, Atlanta 653 (1182 total);
//!
//! plus the qualitative Figure-3/Figure-4 facts: heavy-tailed,
//! non-exponential stop lengths with similar shapes but different means —
//! Chicago's traffic being the worst (its mean CR is the highest of the
//! three in the paper).

use std::fmt;

/// One of the three NREL collection areas.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Area {
    /// Southern California fleet.
    California,
    /// Chicago metro fleet.
    Chicago,
    /// Atlanta metro fleet.
    Atlanta,
}

impl Area {
    /// All three areas, in the paper's presentation order.
    pub const ALL: [Area; 3] = [Area::California, Area::Chicago, Area::Atlanta];

    /// The calibrated parameter set for this area.
    #[must_use]
    pub fn params(&self) -> AreaParams {
        match self {
            Area::California => AreaParams {
                area: *self,
                fleet_vehicles: 217,
                table1_vehicles: 291,
                stops_per_day_mean: 9.37,
                stops_per_day_std: 7.68,
                light_log_mu: 2.35,
                light_log_sigma: 0.50,
                sign_log_mu: 1.35,
                sign_log_sigma: 0.60,
                congestion_scale: 45.0,
                congestion_alpha: 1.05,
                weight_light: 0.50,
                weight_sign: 0.46,
                weight_congestion: 0.04,
            },
            Area::Chicago => AreaParams {
                area: *self,
                fleet_vehicles: 312,
                table1_vehicles: 408,
                stops_per_day_mean: 12.49,
                stops_per_day_std: 9.97,
                light_log_mu: 2.55,
                light_log_sigma: 0.55,
                sign_log_mu: 1.40,
                sign_log_sigma: 0.60,
                congestion_scale: 45.0,
                congestion_alpha: 1.03,
                weight_light: 0.50,
                weight_sign: 0.42,
                weight_congestion: 0.08,
            },
            Area::Atlanta => AreaParams {
                area: *self,
                fleet_vehicles: 653,
                table1_vehicles: 827,
                stops_per_day_mean: 10.37,
                stops_per_day_std: 8.42,
                light_log_mu: 2.38,
                light_log_sigma: 0.50,
                sign_log_mu: 1.35,
                sign_log_sigma: 0.60,
                congestion_scale: 45.0,
                congestion_alpha: 1.05,
                weight_light: 0.50,
                weight_sign: 0.455,
                weight_congestion: 0.045,
            },
        }
    }

    /// Display name as used in the paper's figures.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Area::California => "California",
            Area::Chicago => "Chicago",
            Area::Atlanta => "Atlanta",
        }
    }
}

impl fmt::Display for Area {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Calibrated generation parameters for one area.
///
/// Stop lengths are a three-component mixture by cause:
/// traffic lights and stop signs are log-normal bodies; congestion /
/// parking idling is a Pareto tail (the source of the heavy tail that
/// defeats the exponential fit in Figure 3).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AreaParams {
    /// Which area this parameterizes.
    pub area: Area,
    /// Vehicles in the Section-5 CR study (217 / 312 / 653).
    pub fleet_vehicles: usize,
    /// Vehicles in the Table-1 stops-per-day statistics (291 / 408 / 827).
    pub table1_vehicles: usize,
    /// Table-1 mean stops per day.
    pub stops_per_day_mean: f64,
    /// Table-1 standard deviation of stops per day.
    pub stops_per_day_std: f64,
    /// Log-mean of traffic-light stop lengths.
    pub light_log_mu: f64,
    /// Log-std of traffic-light stop lengths.
    pub light_log_sigma: f64,
    /// Log-mean of stop-sign stop lengths.
    pub sign_log_mu: f64,
    /// Log-std of stop-sign stop lengths.
    pub sign_log_sigma: f64,
    /// Pareto scale (minimum) of congestion stops, seconds.
    pub congestion_scale: f64,
    /// Pareto tail exponent of congestion stops.
    pub congestion_alpha: f64,
    /// Mixture weight of traffic-light stops.
    pub weight_light: f64,
    /// Mixture weight of stop-sign stops.
    pub weight_sign: f64,
    /// Mixture weight of congestion stops.
    pub weight_congestion: f64,
}

impl AreaParams {
    /// Between-vehicle standard deviation of the per-vehicle mean
    /// stops/day rate, chosen so that (per-vehicle Poisson day counts
    /// averaged over a week) reproduce Table 1's across-vehicle std:
    /// `Var_total = Var(λ) + E[λ]/days`.
    ///
    /// # Panics
    ///
    /// Panics if `days` is zero.
    #[must_use]
    pub fn lambda_std(&self, days: u32) -> f64 {
        assert!(days > 0, "need at least one day");
        let var = self.stops_per_day_std.powi(2) - self.stops_per_day_mean / f64::from(days);
        var.max(0.01).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_areas_have_params() {
        for a in Area::ALL {
            let p = a.params();
            assert_eq!(p.area, a);
            assert!(p.fleet_vehicles > 0 && p.table1_vehicles > 0);
            let w = p.weight_light + p.weight_sign + p.weight_congestion;
            assert!((w - 1.0).abs() < 1e-12, "{a}: weights sum to {w}");
        }
    }

    #[test]
    fn fleet_sizes_match_paper() {
        assert_eq!(Area::California.params().fleet_vehicles, 217);
        assert_eq!(Area::Chicago.params().fleet_vehicles, 312);
        assert_eq!(Area::Atlanta.params().fleet_vehicles, 653);
        let total: usize = Area::ALL.iter().map(|a| a.params().fleet_vehicles).sum();
        assert_eq!(total, 1182);
    }

    #[test]
    fn table1_counts_match_paper() {
        assert_eq!(Area::California.params().table1_vehicles, 291);
        assert_eq!(Area::Chicago.params().table1_vehicles, 408);
        assert_eq!(Area::Atlanta.params().table1_vehicles, 827);
    }

    #[test]
    fn chicago_has_worst_traffic() {
        let chi = Area::Chicago.params();
        for a in [Area::California, Area::Atlanta] {
            let p = a.params();
            assert!(chi.weight_congestion > p.weight_congestion);
            assert!(chi.congestion_alpha < p.congestion_alpha); // heavier tail
            assert!(chi.stops_per_day_mean > p.stops_per_day_mean);
        }
    }

    #[test]
    fn lambda_std_decomposition() {
        let p = Area::Atlanta.params();
        let s = p.lambda_std(7);
        // Must be slightly below the across-vehicle std (Poisson noise
        // accounts for the rest).
        assert!(s < p.stops_per_day_std);
        assert!(s > 0.9 * p.stops_per_day_std);
    }

    #[test]
    fn display_names() {
        assert_eq!(Area::Chicago.to_string(), "Chicago");
        assert_eq!(Area::California.name(), "California");
    }
}
