//! Seedable sensor-fault injection over stop-event streams.
//!
//! The analysis crates assume every stop is observed exactly; a deployed
//! stop-start ECU reads a CAN bus, which drops frames, repeats them,
//! delivers them out of order, saturates counters, and occasionally emits
//! plain garbage. This module synthesizes those failure modes on top of a
//! clean trace so the sanitization boundary
//! ([`crate::sanitize::TraceSanitizer`]) and the degraded-mode controller
//! can be exercised under controlled, reproducible corruption.
//!
//! A [`FaultPlan`] is an ordered list of [`Fault`] injectors applied to a
//! `(start_s, duration_s)` event stream. Like everything else in
//! `drivesim`, injection is deterministic under a fixed seed: the same
//! plan, input, and seed produce bit-identical corrupted output.
//!
//! Two application modes cover the two consumers:
//!
//! * [`FaultPlan::apply`] corrupts an **event stream** — events may be
//!   dropped, duplicated, or delivered with skewed timestamps, so the
//!   output length can differ from the input.
//! * [`FaultPlan::corrupt_observations`] corrupts a **reading stream**
//!   aligned with the true stops (what an online estimator consumes):
//!   every input has exactly one output reading, with [`Fault::Dropout`]
//!   encoded as a `NaN` reading (the report for that stop never arrived)
//!   and the stream-shape faults ([`Fault::Duplicate`],
//!   [`Fault::ClockSkew`]) inert because alignment is fixed.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::fmt;
use stopmodel::sampling::standard_normal;
use stopmodel::uniform01;

/// One class of sensor/bus fault, applied independently per event with a
/// given rate.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Fault {
    /// The event is lost entirely (dropped CAN frame).
    Dropout {
        /// Per-event drop probability in `[0, 1]`.
        rate: f64,
    },
    /// The event is delivered twice (retransmission without dedup).
    Duplicate {
        /// Per-event duplication probability in `[0, 1]`.
        rate: f64,
    },
    /// The event's start timestamp is perturbed by up to `±max_skew_s`,
    /// which can reorder the stream (clock drift, late bus arbitration).
    ClockSkew {
        /// Per-event skew probability in `[0, 1]`.
        rate: f64,
        /// Maximum absolute timestamp perturbation, seconds.
        max_skew_s: f64,
    },
    /// The duration is censored at `cap_s` (a saturating or resetting
    /// duration counter under-reports long stops).
    Censor {
        /// Per-event censoring probability in `[0, 1]`.
        rate: f64,
        /// Censoring cap, seconds.
        cap_s: f64,
    },
    /// Zero-mean Gaussian noise of standard deviation `sigma_s` is added
    /// to the duration. Deliberately unclamped: a noisy sensor can and
    /// does report negative durations, and downstream code must cope.
    Noise {
        /// Per-event noise probability in `[0, 1]`.
        rate: f64,
        /// Noise standard deviation, seconds.
        sigma_s: f64,
    },
    /// The sensor freezes: runs of `run` consecutive readings all report
    /// the pegged value `value_s` (a stuck duration register). Runs start
    /// at a per-event probability of `rate / run`, so `rate` is the
    /// expected *fraction of readings* frozen.
    StuckAt {
        /// Expected fraction of readings frozen, in `[0, 1]`.
        rate: f64,
        /// Length of each frozen run, events.
        run: usize,
        /// The pegged reading, seconds.
        value_s: f64,
    },
    /// The duration is replaced by unambiguous garbage: `NaN`, `+∞`, or a
    /// negated value (sign-bit glitch).
    Corrupt {
        /// Per-event corruption probability in `[0, 1]`.
        rate: f64,
    },
}

/// A fault configuration that no sensor model realizes.
#[derive(Debug, Clone, PartialEq)]
pub struct InvalidFaultError {
    /// The offending injector.
    pub fault: Fault,
    /// Human-readable reason.
    pub reason: &'static str,
}

impl fmt::Display for InvalidFaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid fault {:?}: {}", self.fault, self.reason)
    }
}

impl std::error::Error for InvalidFaultError {}

impl Fault {
    /// The per-event rate of this fault.
    #[must_use]
    pub fn rate(&self) -> f64 {
        match *self {
            Self::Dropout { rate }
            | Self::Duplicate { rate }
            | Self::ClockSkew { rate, .. }
            | Self::Censor { rate, .. }
            | Self::Noise { rate, .. }
            | Self::StuckAt { rate, .. }
            | Self::Corrupt { rate } => rate,
        }
    }

    fn validate(self) -> Result<Self, InvalidFaultError> {
        let bad = |reason| Err(InvalidFaultError { fault: self, reason });
        if !(self.rate().is_finite() && (0.0..=1.0).contains(&self.rate())) {
            return bad("rate must be in [0, 1]");
        }
        match self {
            Self::ClockSkew { max_skew_s: p, .. } | Self::Censor { cap_s: p, .. } => {
                if !(p.is_finite() && p >= 0.0) {
                    return bad("parameter must be finite and non-negative");
                }
            }
            Self::Noise { sigma_s, .. } => {
                if !(sigma_s.is_finite() && sigma_s >= 0.0) {
                    return bad("sigma must be finite and non-negative");
                }
            }
            Self::StuckAt { run, value_s, .. } => {
                if run == 0 {
                    return bad("run length must be positive");
                }
                if value_s.is_nan() {
                    return bad("pegged value must not be NaN (use Corrupt for garbage)");
                }
            }
            Self::Dropout { .. } | Self::Duplicate { .. } | Self::Corrupt { .. } => {}
        }
        Ok(self)
    }
}

/// An ordered, validated list of fault injectors.
///
/// Faults are applied in sequence: the output of one injector is the
/// input of the next, so e.g. a duplicated event can subsequently be
/// corrupted.
#[derive(Debug, Clone, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// Builds a plan from injectors, validating each.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidFaultError`] for a rate outside `[0, 1]` or a
    /// malformed fault parameter.
    pub fn new(faults: Vec<Fault>) -> Result<Self, InvalidFaultError> {
        let faults = faults.into_iter().map(Fault::validate).collect::<Result<Vec<_>, _>>()?;
        Ok(Self { faults })
    }

    /// The no-fault plan: both application modes are the identity.
    #[must_use]
    pub fn clean() -> Self {
        Self::default()
    }

    /// The configured injectors, in application order.
    #[must_use]
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Whether the plan injects nothing (every mode is the identity).
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.faults.iter().all(|f| f.rate() == 0.0)
    }

    /// Applies the plan to a timestamped `(start_s, duration_s)` event
    /// stream. The output may be shorter (dropout), longer (duplication),
    /// out of order (clock skew), or contain non-finite/negative values
    /// (corruption) — it is deliberately *not* a valid
    /// [`crate::VehicleTrace`] and should be fed through
    /// [`crate::sanitize::TraceSanitizer`] or a fault-tolerant consumer.
    ///
    /// Deterministic: the same plan, events, and seed yield bit-identical
    /// output.
    #[must_use]
    pub fn apply(&self, events: &[(f64, f64)], seed: u64) -> Vec<(f64, f64)> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut stream: Vec<(f64, f64)> = events.to_vec();
        for fault in &self.faults {
            stream = apply_one(*fault, &stream, /* aligned = */ false, &mut rng);
        }
        stream
    }

    /// Applies the plan to the **readings** for a stop sequence, keeping
    /// one output per input: `out[i]` is what the sensor reported for
    /// `stops[i]`. [`Fault::Dropout`] becomes a `NaN` reading;
    /// [`Fault::Duplicate`] and [`Fault::ClockSkew`] are inert (there are
    /// no timestamps and alignment is fixed).
    ///
    /// Deterministic under a fixed seed, like [`FaultPlan::apply`].
    #[must_use]
    pub fn corrupt_observations(&self, stops: &[f64], seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let events: Vec<(f64, f64)> = stops.iter().map(|&y| (0.0, y)).collect();
        let mut stream = events;
        for fault in &self.faults {
            stream = apply_one(*fault, &stream, /* aligned = */ true, &mut rng);
        }
        stream.into_iter().map(|(_, d)| d).collect()
    }
}

/// Applies one injector over the stream. In aligned mode the event count
/// is preserved (dropout ⇒ NaN duration, duplicate/skew ⇒ no-op).
///
/// When the decision tracer is active, every event the injector actually
/// corrupts records a `FaultApplied` against its input index. Tracing
/// consumes no RNG — the draw pattern is identical with and without it.
fn apply_one(
    fault: Fault,
    stream: &[(f64, f64)],
    aligned: bool,
    rng: &mut StdRng,
) -> Vec<(f64, f64)> {
    let fired = |index: usize, name: &str| {
        if obsv::tracer::active() {
            obsv::tracer::record(obsv::TraceEvent::FaultApplied {
                event_index: index as u64,
                fault: name.to_string(),
            });
        }
    };
    let mut out = Vec::with_capacity(stream.len());
    // Stuck-at run state: remaining frozen readings.
    let mut frozen = 0usize;
    for (i, &(start, duration)) in stream.iter().enumerate() {
        match fault {
            Fault::Dropout { rate } => {
                if uniform01(rng) < rate {
                    fired(i, "dropout");
                    if aligned {
                        out.push((start, f64::NAN));
                    }
                } else {
                    out.push((start, duration));
                }
            }
            Fault::Duplicate { rate } => {
                out.push((start, duration));
                if uniform01(rng) < rate && !aligned {
                    fired(i, "duplicate");
                    out.push((start, duration));
                }
            }
            Fault::ClockSkew { rate, max_skew_s } => {
                let start = if uniform01(rng) < rate && !aligned {
                    fired(i, "clock_skew");
                    start + (2.0 * uniform01(rng) - 1.0) * max_skew_s
                } else {
                    start
                };
                out.push((start, duration));
            }
            Fault::Censor { rate, cap_s } => {
                let duration = if uniform01(rng) < rate {
                    fired(i, "censor");
                    duration.min(cap_s)
                } else {
                    duration
                };
                out.push((start, duration));
            }
            Fault::Noise { rate, sigma_s } => {
                let duration = if uniform01(rng) < rate {
                    fired(i, "noise");
                    duration + sigma_s * standard_normal(rng)
                } else {
                    duration
                };
                out.push((start, duration));
            }
            Fault::StuckAt { rate, run, value_s } => {
                if frozen > 0 {
                    frozen -= 1;
                    fired(i, "stuck_at");
                    out.push((start, value_s));
                } else if uniform01(rng) < rate / run as f64 {
                    frozen = run - 1;
                    fired(i, "stuck_at");
                    out.push((start, value_s));
                } else {
                    out.push((start, duration));
                }
            }
            Fault::Corrupt { rate } => {
                let duration = if uniform01(rng) < rate {
                    fired(i, "corrupt");
                    match rng.next_u64() % 3 {
                        0 => f64::NAN,
                        1 => f64::INFINITY,
                        _ => -duration.abs() - 1.0,
                    }
                } else {
                    duration
                };
                out.push((start, duration));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metronome(n: usize) -> Vec<(f64, f64)> {
        (0..n).map(|i| (i as f64 * 60.0, 10.0 + (i % 7) as f64)).collect()
    }

    #[test]
    fn clean_plan_is_identity() {
        let ev = metronome(50);
        let plan = FaultPlan::clean();
        assert!(plan.is_clean());
        assert_eq!(plan.apply(&ev, 1), ev);
        let durations: Vec<f64> = ev.iter().map(|&(_, d)| d).collect();
        assert_eq!(plan.corrupt_observations(&durations, 1), durations);
    }

    #[test]
    fn zero_rate_faults_are_identity() {
        let ev = metronome(80);
        let plan = FaultPlan::new(vec![
            Fault::Dropout { rate: 0.0 },
            Fault::Corrupt { rate: 0.0 },
            Fault::StuckAt { rate: 0.0, run: 10, value_s: 900.0 },
        ])
        .unwrap();
        assert!(plan.is_clean());
        assert_eq!(plan.apply(&ev, 7), ev);
    }

    #[test]
    fn deterministic_under_seed() {
        let ev = metronome(200);
        let plan = FaultPlan::new(vec![
            Fault::Dropout { rate: 0.1 },
            Fault::Duplicate { rate: 0.1 },
            Fault::ClockSkew { rate: 0.2, max_skew_s: 120.0 },
            Fault::Noise { rate: 0.5, sigma_s: 3.0 },
            Fault::Corrupt { rate: 0.05 },
        ])
        .unwrap();
        // Compare bit patterns: corruption injects NaN, and NaN != NaN
        // would fail a value comparison of identical streams.
        let bits = |v: &[(f64, f64)]| {
            v.iter().map(|&(s, d)| (s.to_bits(), d.to_bits())).collect::<Vec<_>>()
        };
        let a = plan.apply(&ev, 42);
        let b = plan.apply(&ev, 42);
        assert_eq!(bits(&a), bits(&b));
        let c = plan.apply(&ev, 43);
        assert_ne!(bits(&a), bits(&c), "different seeds should corrupt differently");
    }

    #[test]
    fn dropout_shortens_duplication_lengthens() {
        let ev = metronome(500);
        let dropped = FaultPlan::new(vec![Fault::Dropout { rate: 0.3 }]).unwrap().apply(&ev, 3);
        assert!(dropped.len() < ev.len());
        let duped = FaultPlan::new(vec![Fault::Duplicate { rate: 0.3 }]).unwrap().apply(&ev, 3);
        assert!(duped.len() > ev.len());
    }

    #[test]
    fn observations_stay_aligned() {
        let stops: Vec<f64> = (0..300).map(|i| 5.0 + (i % 11) as f64).collect();
        let plan = FaultPlan::new(vec![
            Fault::Dropout { rate: 0.2 },
            Fault::Duplicate { rate: 0.5 },
            Fault::ClockSkew { rate: 0.5, max_skew_s: 100.0 },
            Fault::Corrupt { rate: 0.1 },
        ])
        .unwrap();
        let obs = plan.corrupt_observations(&stops, 9);
        assert_eq!(obs.len(), stops.len(), "aligned mode must preserve length");
        assert!(obs.iter().any(|d| d.is_nan()), "dropout should appear as NaN readings");
    }

    #[test]
    fn stuck_at_freezes_runs() {
        let stops: Vec<f64> = (0..10_000).map(|i| 1.0 + (i % 5) as f64 * 0.1).collect();
        let plan =
            FaultPlan::new(vec![Fault::StuckAt { rate: 0.2, run: 50, value_s: 900.0 }]).unwrap();
        let obs = plan.corrupt_observations(&stops, 11);
        let frozen = obs.iter().filter(|&&d| d == 900.0).count();
        // Expected fraction ≈ rate; wide tolerance for burst granularity.
        let frac = frozen as f64 / obs.len() as f64;
        assert!((0.08..=0.4).contains(&frac), "frozen fraction {frac}");
        // Runs are contiguous: find one and check its length.
        let first = obs.iter().position(|&d| d == 900.0).unwrap();
        assert!(obs[first..first + 50].iter().all(|&d| d == 900.0));
    }

    #[test]
    fn censor_caps_durations() {
        let stops = vec![100.0; 200];
        let plan = FaultPlan::new(vec![Fault::Censor { rate: 0.5, cap_s: 20.0 }]).unwrap();
        let obs = plan.corrupt_observations(&stops, 13);
        assert!(obs.iter().all(|&d| d == 100.0 || d == 20.0));
        assert!(obs.contains(&20.0));
    }

    #[test]
    fn corrupt_produces_garbage_classes() {
        let stops = vec![15.0; 3000];
        let plan = FaultPlan::new(vec![Fault::Corrupt { rate: 1.0 }]).unwrap();
        let obs = plan.corrupt_observations(&stops, 17);
        assert!(obs.iter().any(|d| d.is_nan()));
        assert!(obs.iter().any(|d| d.is_infinite()));
        assert!(obs.iter().any(|&d| d < 0.0));
        assert!(obs.iter().all(|&d| !(d.is_finite() && d >= 0.0)));
    }

    #[test]
    fn skew_can_reorder() {
        let ev = metronome(300);
        let plan = FaultPlan::new(vec![Fault::ClockSkew { rate: 0.5, max_skew_s: 200.0 }]).unwrap();
        let skewed = plan.apply(&ev, 19);
        let monotone = skewed.windows(2).all(|w| w[0].0 <= w[1].0);
        assert!(!monotone, "large skew should break chronological order");
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        assert!(FaultPlan::new(vec![Fault::Dropout { rate: 1.5 }]).is_err());
        assert!(FaultPlan::new(vec![Fault::Dropout { rate: -0.1 }]).is_err());
        assert!(FaultPlan::new(vec![Fault::Dropout { rate: f64::NAN }]).is_err());
        assert!(FaultPlan::new(vec![Fault::Noise { rate: 0.5, sigma_s: -1.0 }]).is_err());
        assert!(FaultPlan::new(vec![Fault::StuckAt { rate: 0.5, run: 0, value_s: 1.0 }]).is_err());
        assert!(
            FaultPlan::new(vec![Fault::StuckAt { rate: 0.5, run: 5, value_s: f64::NAN }]).is_err()
        );
        assert!(FaultPlan::new(vec![Fault::Censor { rate: 0.5, cap_s: f64::INFINITY }]).is_err());
        let err = FaultPlan::new(vec![Fault::Corrupt { rate: 2.0 }]).unwrap_err();
        assert!(!err.to_string().is_empty());
    }
}
