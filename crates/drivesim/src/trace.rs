//! Timestamped stop-event traces.
//!
//! A [`VehicleTrace`] is one vehicle's week of driving reduced to its stop
//! events — which is all the idling-reduction analysis consumes. Events
//! carry start timestamps (so the engine controller can replay them in
//! order) and a [`StopCause`] tag (so workload composition can be
//! inspected and ablated).

use crate::area::Area;
use std::fmt;

/// Why the vehicle stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum StopCause {
    /// Waiting at a traffic light.
    TrafficLight,
    /// A stop sign / yield.
    StopSign,
    /// Congestion, queues, drive-through, parking idling — the heavy tail.
    Congestion,
}

impl StopCause {
    /// All causes.
    pub const ALL: [StopCause; 3] =
        [StopCause::TrafficLight, StopCause::StopSign, StopCause::Congestion];
}

impl fmt::Display for StopCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Self::TrafficLight => "traffic light",
            Self::StopSign => "stop sign",
            Self::Congestion => "congestion",
        };
        f.write_str(s)
    }
}

/// One stop event.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct StopEvent {
    /// Start time, seconds since the trace began.
    pub start_s: f64,
    /// Stop duration, seconds.
    pub duration_s: f64,
    /// Cause tag.
    pub cause: StopCause,
}

/// One vehicle's stop-event trace.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct VehicleTrace {
    /// Vehicle identifier (unique within a synthesized fleet).
    pub vehicle_id: u32,
    /// Area the vehicle drives in.
    pub area: Area,
    /// Number of days recorded.
    pub days: u32,
    /// Stop events in chronological order.
    pub events: Vec<StopEvent>,
}

impl VehicleTrace {
    /// Creates a trace, validating event ordering and durations.
    ///
    /// # Panics
    ///
    /// Panics if `days == 0`, if any event has a negative/non-finite start
    /// or duration, or if events are not sorted by start time.
    #[must_use]
    pub fn new(vehicle_id: u32, area: Area, days: u32, events: Vec<StopEvent>) -> Self {
        assert!(days > 0, "trace must cover at least one day");
        let mut prev = 0.0;
        for e in &events {
            assert!(
                e.start_s.is_finite() && e.start_s >= prev,
                "events must be chronological (start {} after {prev})",
                e.start_s
            );
            assert!(
                e.duration_s.is_finite() && e.duration_s >= 0.0,
                "durations must be non-negative, got {}",
                e.duration_s
            );
            prev = e.start_s;
        }
        Self { vehicle_id, area, days, events }
    }

    /// The stop lengths, in event order — the input to every ski-rental
    /// evaluation.
    #[must_use]
    pub fn stop_lengths(&self) -> Vec<f64> {
        self.events.iter().map(|e| e.duration_s).collect()
    }

    /// Total number of stops.
    #[must_use]
    pub fn num_stops(&self) -> usize {
        self.events.len()
    }

    /// Average stops per day — the Table-1 quantity.
    #[must_use]
    pub fn stops_per_day(&self) -> f64 {
        self.events.len() as f64 / f64::from(self.days)
    }

    /// Total stopped time, seconds.
    #[must_use]
    pub fn total_stopped_s(&self) -> f64 {
        self.events.iter().map(|e| e.duration_s).sum()
    }

    /// Number of stops with the given cause.
    #[must_use]
    pub fn count_cause(&self, cause: StopCause) -> usize {
        self.events.iter().filter(|e| e.cause == cause).count()
    }

    /// Iterates the events.
    pub fn iter(&self) -> std::slice::Iter<'_, StopEvent> {
        self.events.iter()
    }
}

impl<'a> IntoIterator for &'a VehicleTrace {
    type Item = &'a StopEvent;
    type IntoIter = std::slice::Iter<'a, StopEvent>;

    fn into_iter(self) -> Self::IntoIter {
        self.events.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(start: f64, dur: f64) -> StopEvent {
        StopEvent { start_s: start, duration_s: dur, cause: StopCause::TrafficLight }
    }

    #[test]
    fn basic_accessors() {
        let t = VehicleTrace::new(
            7,
            Area::Chicago,
            7,
            vec![ev(10.0, 5.0), ev(100.0, 30.0), ev(500.0, 12.0)],
        );
        assert_eq!(t.num_stops(), 3);
        assert_eq!(t.stop_lengths(), vec![5.0, 30.0, 12.0]);
        assert!((t.stops_per_day() - 3.0 / 7.0).abs() < 1e-12);
        assert_eq!(t.total_stopped_s(), 47.0);
        assert_eq!(t.count_cause(StopCause::TrafficLight), 3);
        assert_eq!(t.count_cause(StopCause::Congestion), 0);
    }

    #[test]
    fn iteration() {
        let t = VehicleTrace::new(1, Area::Atlanta, 1, vec![ev(0.0, 1.0), ev(5.0, 2.0)]);
        assert_eq!(t.iter().count(), 2);
        let durs: Vec<f64> = (&t).into_iter().map(|e| e.duration_s).collect();
        assert_eq!(durs, vec![1.0, 2.0]);
    }

    #[test]
    fn empty_trace_is_valid() {
        let t = VehicleTrace::new(1, Area::California, 7, vec![]);
        assert_eq!(t.num_stops(), 0);
        assert_eq!(t.stops_per_day(), 0.0);
    }

    #[test]
    #[should_panic(expected = "chronological")]
    fn rejects_unsorted_events() {
        let _ = VehicleTrace::new(1, Area::Chicago, 7, vec![ev(100.0, 5.0), ev(10.0, 5.0)]);
    }

    #[test]
    #[should_panic(expected = "durations must be non-negative")]
    fn rejects_negative_duration() {
        let _ = VehicleTrace::new(1, Area::Chicago, 7, vec![ev(10.0, -5.0)]);
    }

    #[test]
    #[should_panic(expected = "at least one day")]
    fn rejects_zero_days() {
        let _ = VehicleTrace::new(1, Area::Chicago, 0, vec![]);
    }

    #[test]
    fn cause_display() {
        assert_eq!(StopCause::Congestion.to_string(), "congestion");
        assert_eq!(StopCause::ALL.len(), 3);
    }
}
