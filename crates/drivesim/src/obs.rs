//! Crate-internal observability handles against [`obsv::global`].
//!
//! Only the sanitization boundary is instrumented: it is the single choke
//! point between raw sensor streams and the panic-on-garbage analysis
//! crates, so per-class drop counters here give a run-level view of input
//! quality without touching the synthesis hot paths.

use obsv::Counter;
use std::sync::OnceLock;

pub(crate) struct Metrics {
    pub sanitize_calls: Counter,
    pub events_in: Counter,
    pub events_clean: Counter,
    pub dropped_non_finite: Counter,
    pub dropped_negative: Counter,
    pub dropped_out_of_order: Counter,
    pub dropped_duplicate: Counter,
    pub dropped_implausible: Counter,
    pub dropped_stuck: Counter,
}

static METRICS: OnceLock<Metrics> = OnceLock::new();

pub(crate) fn metrics() -> &'static Metrics {
    METRICS.get_or_init(|| {
        let r = obsv::global();
        Metrics {
            sanitize_calls: r.counter("drivesim.sanitize.calls"),
            events_in: r.counter("drivesim.sanitize.events_in"),
            events_clean: r.counter("drivesim.sanitize.events_clean"),
            dropped_non_finite: r.counter("drivesim.sanitize.dropped.non_finite"),
            dropped_negative: r.counter("drivesim.sanitize.dropped.negative"),
            dropped_out_of_order: r.counter("drivesim.sanitize.dropped.out_of_order"),
            dropped_duplicate: r.counter("drivesim.sanitize.dropped.duplicate"),
            dropped_implausible: r.counter("drivesim.sanitize.dropped.implausible"),
            dropped_stuck: r.counter("drivesim.sanitize.dropped.stuck"),
        }
    })
}
