//! Diurnal (time-of-day) stop-arrival profiles.
//!
//! The default synthesis places a day's stops after exponential driving
//! gaps — adequate for ski-rental analysis, which only consumes durations.
//! For experiments that care about *when* stops happen (e.g. duty-cycling
//! a battery model across a day, or plotting congestion by hour), a
//! [`DiurnalProfile`] reshapes arrival times into a realistic two-peak
//! commuter pattern without touching stop counts or durations — so the
//! Table-1 and Figure-3/4 calibrations are unaffected.

use rand::RngCore;
use stopmodel::uniform01;

/// Relative stop intensity for each hour of the day.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DiurnalProfile {
    /// Normalized per-hour probabilities (sum = 1).
    hourly: [f64; 24],
}

impl DiurnalProfile {
    /// Builds a profile from 24 non-negative relative weights
    /// (normalized internally).
    ///
    /// # Panics
    ///
    /// Panics if any weight is negative or non-finite, or all are zero.
    #[must_use]
    pub fn new(weights: [f64; 24]) -> Self {
        let mut total = 0.0;
        for &w in &weights {
            assert!(w.is_finite() && w >= 0.0, "hourly weight must be non-negative, got {w}");
            total += w;
        }
        assert!(total > 0.0, "at least one hour must have positive weight");
        let mut hourly = weights;
        for w in &mut hourly {
            *w /= total;
        }
        Self { hourly }
    }

    /// A commuter profile: morning (7–9) and evening (16–19) peaks,
    /// daytime plateau, quiet nights.
    #[must_use]
    pub fn commuter() -> Self {
        let mut w = [0.0f64; 24];
        for (hour, weight) in w.iter_mut().enumerate() {
            *weight = match hour {
                0..=4 => 0.2,
                5..=6 => 1.0,
                7..=8 => 4.0,   // morning rush
                9..=15 => 2.0,  // daytime
                16..=18 => 4.5, // evening rush
                19..=21 => 1.5,
                _ => 0.5,
            };
        }
        Self::new(w)
    }

    /// A flat profile (uniform over the day).
    #[must_use]
    pub fn uniform() -> Self {
        Self::new([1.0; 24])
    }

    /// The normalized hourly probabilities.
    #[must_use]
    pub fn hourly(&self) -> &[f64; 24] {
        &self.hourly
    }

    /// Draws a time of day in seconds (`[0, 86 400)`): pick an hour by
    /// weight, uniform within the hour.
    #[must_use]
    pub fn sample_time_of_day(&self, rng: &mut dyn RngCore) -> f64 {
        let mut u = uniform01(rng);
        let mut hour = 23;
        for (h, &w) in self.hourly.iter().enumerate() {
            if u < w {
                hour = h;
                break;
            }
            u -= w;
        }
        (hour as f64 + uniform01(rng)) * 3600.0
    }

    /// Draws `n` arrival times within day `day` (0-based), sorted — ready
    /// to be zipped with stop durations.
    #[must_use]
    pub fn sample_day_arrivals(&self, day: u32, n: usize, rng: &mut dyn RngCore) -> Vec<f64> {
        let base = f64::from(day) * 86_400.0;
        let mut times: Vec<f64> = (0..n).map(|_| base + self.sample_time_of_day(rng)).collect();
        times.sort_by(f64::total_cmp);
        times
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn profiles_normalize() {
        for p in [DiurnalProfile::commuter(), DiurnalProfile::uniform()] {
            let sum: f64 = p.hourly().iter().sum();
            assert!((sum - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn commuter_peaks_dominate_night() {
        let p = DiurnalProfile::commuter();
        let h = p.hourly();
        assert!(h[8] > 5.0 * h[2], "rush hour vs 2am: {} vs {}", h[8], h[2]);
        assert!(h[17] >= h[8], "evening is the biggest peak");
    }

    #[test]
    fn sampling_follows_weights() {
        let p = DiurnalProfile::commuter();
        let mut rng = StdRng::seed_from_u64(1);
        let n = 200_000;
        let mut counts = [0u32; 24];
        for _ in 0..n {
            let t = p.sample_time_of_day(&mut rng);
            assert!((0.0..86_400.0).contains(&t));
            counts[(t / 3600.0) as usize] += 1;
        }
        for (h, &c) in counts.iter().enumerate() {
            let freq = f64::from(c) / n as f64;
            assert!(
                (freq - p.hourly()[h]).abs() < 0.01,
                "hour {h}: freq {freq} vs weight {}",
                p.hourly()[h]
            );
        }
    }

    #[test]
    fn day_arrivals_sorted_and_in_day() {
        let p = DiurnalProfile::uniform();
        let mut rng = StdRng::seed_from_u64(2);
        let times = p.sample_day_arrivals(3, 50, &mut rng);
        assert_eq!(times.len(), 50);
        let lo = 3.0 * 86_400.0;
        for w in times.windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert!(times.iter().all(|&t| (lo..lo + 86_400.0).contains(&t)));
    }

    #[test]
    fn zero_arrivals_ok() {
        let p = DiurnalProfile::uniform();
        let mut rng = StdRng::seed_from_u64(3);
        assert!(p.sample_day_arrivals(0, 0, &mut rng).is_empty());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_weight() {
        let mut w = [1.0; 24];
        w[3] = -1.0;
        let _ = DiurnalProfile::new(w);
    }

    #[test]
    #[should_panic(expected = "positive weight")]
    fn rejects_all_zero() {
        let _ = DiurnalProfile::new([0.0; 24]);
    }
}
