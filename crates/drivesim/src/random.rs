//! Random-variate samplers used by the simulator.
//!
//! These live in [`stopmodel::sampling`] (they also back the distribution
//! types there); this module re-exports them under the simulator's
//! historical path.

pub use stopmodel::sampling::{gamma, gamma_mean_std, poisson, standard_normal};
