//! Trace sanitization: the boundary between raw sensor streams and the
//! panic-on-garbage analysis crates.
//!
//! Everything downstream of this module — `VehicleTrace`,
//! `MomentEstimator`, the powertrain state machine — is allowed to assume
//! clean input: finite, non-negative durations and chronologically ordered
//! starts. Raw `(start_s, duration_s)` streams off a bus guarantee none of
//! that (see [`crate::faults`] for the failure modes). A
//! [`TraceSanitizer`] turns an arbitrary stream into a clean one and a
//! [`SanitizeReport`] saying exactly what was quarantined, per anomaly
//! class, so callers can alarm on anomaly *rates* rather than dying on
//! anomaly *instances*.
//!
//! Sanitization is conservative and deterministic (no RNG): anomalous
//! events are **dropped**, never repaired, so every surviving event is one
//! the sensor actually reported with a plausible value. It is also
//! idempotent — sanitizing already-clean output is the identity.

use std::fmt;

/// Per-class counts of what a sanitization pass dropped (and kept).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SanitizeReport {
    /// Events in the raw input stream.
    pub input_events: u64,
    /// Events that survived every check.
    pub clean_events: u64,
    /// Dropped: NaN or ±∞ in the start or duration field.
    pub non_finite: u64,
    /// Dropped: finite but negative duration, or negative start.
    pub negative: u64,
    /// Dropped: start timestamp earlier than an already-accepted event
    /// (out-of-order delivery / clock skew beyond repair).
    pub out_of_order: u64,
    /// Dropped: same start as the previously accepted event, within
    /// tolerance (retransmitted frame).
    pub duplicate: u64,
    /// Dropped: duration above the plausibility cap.
    pub implausible: u64,
    /// Dropped: excess readings in a stuck-at run (identical durations
    /// beyond the allowed run length).
    pub stuck: u64,
}

impl SanitizeReport {
    /// Total dropped events, over all anomaly classes.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.input_events - self.clean_events
    }

    /// Fraction of input events dropped (`0.0` for an empty input).
    #[must_use]
    pub fn anomaly_rate(&self) -> f64 {
        if self.input_events == 0 {
            0.0
        } else {
            self.dropped() as f64 / self.input_events as f64
        }
    }

    /// Whether the pass dropped nothing.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.dropped() == 0
    }
}

impl fmt::Display for SanitizeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} events clean ({} non-finite, {} negative, {} out-of-order, \
             {} duplicate, {} implausible, {} stuck)",
            self.clean_events,
            self.input_events,
            self.non_finite,
            self.negative,
            self.out_of_order,
            self.duplicate,
            self.implausible,
            self.stuck
        )
    }
}

/// Configurable sanitization boundary for `(start_s, duration_s)` streams.
///
/// The default configuration enforces only the *structural* invariants the
/// analysis crates assume (finite, non-negative, chronological, deduped);
/// the plausibility cap and stuck-run detection are opt-in knobs because
/// their correct values depend on the sensor.
///
/// ```
/// use drivesim::sanitize::TraceSanitizer;
///
/// let raw = [(0.0, 10.0), (60.0, f64::NAN), (90.0, 7.0), (30.0, 5.0), (120.0, 8.0)];
/// let (clean, report) = TraceSanitizer::default().sanitize(&raw);
/// assert_eq!(clean, vec![(0.0, 10.0), (90.0, 7.0), (120.0, 8.0)]);
/// assert_eq!(report.non_finite, 1);
/// assert_eq!(report.out_of_order, 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TraceSanitizer {
    /// Durations above this are dropped as implausible. Default `+∞`
    /// (disabled): synthesized heavy-tail traces legitimately contain
    /// hour-long stops, so a finite default would quarantine real data.
    pub max_duration_s: f64,
    /// More than this many *consecutive identical* durations are treated
    /// as a stuck sensor; the first `max_stuck_run` of each run are kept,
    /// the rest dropped. `None` (default) disables the check.
    pub max_stuck_run: Option<usize>,
    /// Two accepted events whose starts differ by at most this are
    /// considered duplicates (the later one is dropped). Default `0.0`:
    /// only exact retransmissions are deduped.
    pub duplicate_eps_s: f64,
}

impl Default for TraceSanitizer {
    fn default() -> Self {
        Self { max_duration_s: f64::INFINITY, max_stuck_run: None, duplicate_eps_s: 0.0 }
    }
}

impl TraceSanitizer {
    /// A sanitizer with only the structural checks enabled.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the duration plausibility cap.
    #[must_use]
    pub fn max_duration_s(mut self, cap: f64) -> Self {
        self.max_duration_s = cap;
        self
    }

    /// Enables stuck-run detection with the given maximum run length.
    #[must_use]
    pub fn max_stuck_run(mut self, run: usize) -> Self {
        self.max_stuck_run = Some(run.max(1));
        self
    }

    /// Sets the duplicate-start tolerance, seconds.
    #[must_use]
    pub fn duplicate_eps_s(mut self, eps: f64) -> Self {
        self.duplicate_eps_s = eps;
        self
    }

    /// Sanitizes a raw `(start_s, duration_s)` stream into clean events
    /// plus a per-class report.
    ///
    /// Guarantees on the output, for **arbitrary** input (any `f64`,
    /// including NaN/±∞):
    ///
    /// * every duration is finite and `>= 0`;
    /// * every start is finite and `>= 0`;
    /// * starts are non-decreasing;
    /// * output length ≤ input length, and
    ///   `report.input_events - report.clean_events` equals the sum of the
    ///   per-class drop counts;
    /// * re-sanitizing the output is the identity (idempotence).
    #[must_use]
    pub fn sanitize(&self, events: &[(f64, f64)]) -> (Vec<(f64, f64)>, SanitizeReport) {
        let mut report = SanitizeReport { input_events: events.len() as u64, ..Default::default() };
        let mut clean: Vec<(f64, f64)> = Vec::with_capacity(events.len());
        // Start of the last accepted event; input starts are required to
        // be >= 0, so -∞ makes the first comparison behave.
        let mut prev_start = f64::NEG_INFINITY;
        // Current run of identical accepted durations (for stuck-at).
        let mut run_len = 0usize;
        // Trace only the *dropped* events (absence of a verdict means the
        // event passed), so a clean stream stays trace-silent.
        let drop_verdict = |index: usize, class: &str, start: f64, duration: f64| {
            if obsv::tracer::active() {
                obsv::tracer::record(obsv::TraceEvent::SanitizeVerdict {
                    event_index: index as u64,
                    class: class.to_string(),
                    start_s: start,
                    duration_s: duration,
                });
            }
        };
        for (i, &(start, duration)) in events.iter().enumerate() {
            if !start.is_finite() || !duration.is_finite() {
                report.non_finite += 1;
                drop_verdict(i, "non_finite", start, duration);
                continue;
            }
            if start < 0.0 || duration < 0.0 {
                report.negative += 1;
                drop_verdict(i, "negative", start, duration);
                continue;
            }
            if duration > self.max_duration_s {
                report.implausible += 1;
                drop_verdict(i, "implausible", start, duration);
                continue;
            }
            if start < prev_start {
                report.out_of_order += 1;
                drop_verdict(i, "out_of_order", start, duration);
                continue;
            }
            if !clean.is_empty() && (start - prev_start) <= self.duplicate_eps_s {
                report.duplicate += 1;
                drop_verdict(i, "duplicate", start, duration);
                continue;
            }
            if let Some(max_run) = self.max_stuck_run {
                // `total_cmp` so the run comparison is a total order even
                // though the accepted values are always finite here.
                if run_len > 0 && clean[clean.len() - 1].1.total_cmp(&duration).is_eq() {
                    if run_len >= max_run {
                        report.stuck += 1;
                        drop_verdict(i, "stuck", start, duration);
                        continue;
                    }
                    run_len += 1;
                } else {
                    run_len = 1;
                }
            }
            prev_start = start;
            clean.push((start, duration));
        }
        report.clean_events = clean.len() as u64;
        let m = crate::obs::metrics();
        m.sanitize_calls.inc();
        m.events_in.add(report.input_events);
        m.events_clean.add(report.clean_events);
        m.dropped_non_finite.add(report.non_finite);
        m.dropped_negative.add(report.negative);
        m.dropped_out_of_order.add(report.out_of_order);
        m.dropped_duplicate.add(report.duplicate);
        m.dropped_implausible.add(report.implausible);
        m.dropped_stuck.add(report.stuck);
        (clean, report)
    }

    /// Sanitizes a bare duration stream (no timestamps): the reading-level
    /// variant for estimator feeds. Only the finite/negative/implausible/
    /// stuck checks apply.
    #[must_use]
    pub fn sanitize_durations(&self, durations: &[f64]) -> (Vec<f64>, SanitizeReport) {
        // Reuse the event path with synthetic strictly-increasing starts
        // so the order/duplicate checks never fire.
        let events: Vec<(f64, f64)> =
            durations.iter().enumerate().map(|(i, &d)| (i as f64, d)).collect();
        let (clean, mut report) = self.sanitize(&events);
        debug_assert_eq!(report.out_of_order + report.duplicate, 0);
        // Synthetic starts can't trip the start checks, but a NaN duration
        // still lands in `non_finite`, so the report carries over as-is.
        report.clean_events = clean.len() as u64;
        (clean.into_iter().map(|(_, d)| d).collect(), report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_stream_is_identity() {
        let ev = vec![(0.0, 5.0), (60.0, 12.0), (120.0, 3.0)];
        let (clean, report) = TraceSanitizer::default().sanitize(&ev);
        assert_eq!(clean, ev);
        assert!(report.is_clean());
        assert_eq!(report.anomaly_rate(), 0.0);
    }

    #[test]
    fn drops_non_finite_and_negative() {
        let ev = vec![
            (0.0, 5.0),
            (10.0, f64::NAN),
            (20.0, f64::INFINITY),
            (f64::NAN, 4.0),
            (30.0, -2.0),
            (-5.0, 4.0),
            (40.0, 6.0),
        ];
        let (clean, report) = TraceSanitizer::default().sanitize(&ev);
        assert_eq!(clean, vec![(0.0, 5.0), (40.0, 6.0)]);
        assert_eq!(report.non_finite, 3);
        assert_eq!(report.negative, 2);
        assert_eq!(report.dropped(), 5);
    }

    #[test]
    fn drops_out_of_order_and_duplicates() {
        let ev = vec![(0.0, 5.0), (60.0, 3.0), (30.0, 9.0), (60.0, 3.0), (90.0, 1.0)];
        let (clean, report) = TraceSanitizer::default().sanitize(&ev);
        assert_eq!(clean, vec![(0.0, 5.0), (60.0, 3.0), (90.0, 1.0)]);
        assert_eq!(report.out_of_order, 1);
        assert_eq!(report.duplicate, 1);
    }

    #[test]
    fn duplicate_eps_dedupes_nearby_starts() {
        let ev = vec![(0.0, 5.0), (0.4, 5.0), (10.0, 2.0)];
        let (clean, report) = TraceSanitizer::default().duplicate_eps_s(0.5).sanitize(&ev);
        assert_eq!(clean, vec![(0.0, 5.0), (10.0, 2.0)]);
        assert_eq!(report.duplicate, 1);
    }

    #[test]
    fn implausible_cap() {
        let ev = vec![(0.0, 5.0), (10.0, 4000.0), (20.0, 30.0)];
        let (clean, report) = TraceSanitizer::default().max_duration_s(3600.0).sanitize(&ev);
        assert_eq!(clean, vec![(0.0, 5.0), (20.0, 30.0)]);
        assert_eq!(report.implausible, 1);
    }

    #[test]
    fn stuck_runs_truncated() {
        let mut ev: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 900.0)).collect();
        ev.push((20.0, 5.0));
        let (clean, report) = TraceSanitizer::default().max_stuck_run(3).sanitize(&ev);
        assert_eq!(clean.len(), 4);
        assert_eq!(report.stuck, 7);
        assert!(clean[..3].iter().all(|&(_, d)| d == 900.0));
        assert_eq!(clean[3], (20.0, 5.0));
        // A new value resets the run counter.
        let ev2 = vec![(0.0, 1.0), (1.0, 1.0), (2.0, 2.0), (3.0, 1.0), (4.0, 1.0)];
        let (clean2, report2) = TraceSanitizer::default().max_stuck_run(2).sanitize(&ev2);
        assert_eq!(clean2.len(), 5);
        assert!(report2.is_clean());
    }

    #[test]
    fn idempotent() {
        let ev = vec![
            (0.0, 5.0),
            (10.0, f64::NAN),
            (5.0, 9.0),
            (20.0, 900.0),
            (21.0, 900.0),
            (22.0, 900.0),
            (30.0, 1.0),
        ];
        let s = TraceSanitizer::default().max_stuck_run(2).max_duration_s(1000.0);
        let (once, _) = s.sanitize(&ev);
        let (twice, report) = s.sanitize(&once);
        assert_eq!(once, twice);
        assert!(report.is_clean());
    }

    #[test]
    fn duration_stream_variant() {
        let durs = vec![5.0, f64::NAN, -1.0, 12.0, f64::INFINITY, 3.0];
        let (clean, report) = TraceSanitizer::default().sanitize_durations(&durs);
        assert_eq!(clean, vec![5.0, 12.0, 3.0]);
        assert_eq!(report.non_finite, 2);
        assert_eq!(report.negative, 1);
        assert_eq!(report.out_of_order, 0);
    }

    #[test]
    fn empty_input() {
        let (clean, report) = TraceSanitizer::default().sanitize(&[]);
        assert!(clean.is_empty());
        assert!(report.is_clean());
        assert_eq!(report.anomaly_rate(), 0.0);
    }

    #[test]
    fn report_display() {
        let ev = vec![(0.0, 5.0), (10.0, f64::NAN)];
        let (_, report) = TraceSanitizer::default().sanitize(&ev);
        let text = report.to_string();
        assert!(text.contains("1/2"), "{text}");
        assert!(text.contains("1 non-finite"), "{text}");
    }

    #[test]
    fn faulted_stream_comes_back_clean() {
        use crate::faults::{Fault, FaultPlan};
        let ev: Vec<(f64, f64)> = (0..500).map(|i| (i as f64 * 30.0, 8.0)).collect();
        let plan = FaultPlan::new(vec![
            Fault::Duplicate { rate: 0.2 },
            Fault::ClockSkew { rate: 0.2, max_skew_s: 100.0 },
            Fault::Corrupt { rate: 0.2 },
            Fault::Noise { rate: 0.3, sigma_s: 20.0 },
        ])
        .unwrap();
        let raw = plan.apply(&ev, 23);
        let (clean, report) = TraceSanitizer::default().sanitize(&raw);
        assert!(!clean.is_empty());
        assert!(!report.is_clean());
        assert!(clean.iter().all(|&(s, d)| s.is_finite() && d.is_finite() && s >= 0.0 && d >= 0.0));
        assert!(clean.windows(2).all(|w| w[0].0 <= w[1].0));
    }
}
