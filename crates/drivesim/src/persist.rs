//! Plain-CSV persistence for vehicle traces.
//!
//! Synthesized fleets are cheap to regenerate from a seed, but exporting
//! traces lets external tools (plotting, other simulators) consume them
//! and lets experiments pin an exact dataset. The format is deliberately
//! trivial — a metadata line, a header, one row per stop event:
//!
//! ```text
//! vehicle,17,Chicago,7
//! start_s,duration_s,cause
//! 371.2041,12.5000,traffic_light
//! ...
//! ```
//!
//! [`to_csv_checked`] / [`save_csv_checked`] append an optional
//! integrity footer — the last line, covering every byte before it:
//!
//! ```text
//! footer,<rows>,crc32,<8 hex digits>
//! ```
//!
//! The row count catches truncation (the classic tail-loss failure a
//! plain CSV silently absorbs) and the CRC-32 catches bit rot, using
//! the same polynomial as the crash-safe snapshot/journal frames
//! ([`numeric::crc32`]). [`from_csv`] verifies the footer when present
//! and still accepts footer-less files, so existing exports keep
//! loading.

use crate::area::Area;
use crate::trace::{StopCause, StopEvent, VehicleTrace};
use std::fmt;
use std::fs;
use std::path::Path;

/// Errors when parsing a trace CSV.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseTraceError {
    /// The metadata line (`vehicle,<id>,<area>,<days>`) is missing or
    /// malformed.
    BadMetadata,
    /// An unknown area name in the metadata.
    UnknownArea(String),
    /// The column header line is missing or wrong.
    BadHeader,
    /// A data row has the wrong number of fields or an unparsable value.
    BadRow {
        /// 1-based line number in the input.
        line: usize,
    },
    /// An unknown stop-cause tag.
    UnknownCause(String),
    /// A start or duration field parsed but is NaN or ±∞.
    NonFiniteField {
        /// 1-based line number in the input.
        line: usize,
    },
    /// A duration field is finite but negative.
    NegativeDuration {
        /// 1-based line number in the input.
        line: usize,
    },
    /// A start timestamp is earlier than the previous event's.
    OutOfOrder {
        /// 1-based line number in the input.
        line: usize,
    },
    /// A `footer,...` line is malformed, or rows follow it (the footer
    /// must be the last non-empty line).
    BadFooter {
        /// 1-based line number of the offending footer line.
        line: usize,
    },
    /// The footer's row count disagrees with the rows actually present —
    /// the file was truncated (or rows were inserted).
    Truncated {
        /// 1-based line number of the footer.
        line: usize,
        /// Rows the footer says the file holds.
        expected_rows: usize,
        /// Rows actually parsed.
        found_rows: usize,
    },
    /// The footer's CRC-32 does not match the bytes before it.
    FooterChecksum {
        /// 1-based line number of the footer.
        line: usize,
        /// Checksum recorded in the footer.
        expected: u32,
        /// Checksum of the bytes actually present.
        found: u32,
    },
}

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadMetadata => {
                write!(f, "missing or malformed 'vehicle,<id>,<area>,<days>' line")
            }
            Self::UnknownArea(a) => write!(f, "unknown area {a:?}"),
            Self::BadHeader => write!(f, "missing 'start_s,duration_s,cause' header"),
            Self::BadRow { line } => write!(f, "malformed event row at line {line}"),
            Self::UnknownCause(c) => write!(f, "unknown stop cause {c:?}"),
            Self::NonFiniteField { line } => {
                write!(f, "non-finite start or duration at line {line}")
            }
            Self::NegativeDuration { line } => write!(f, "negative duration at line {line}"),
            Self::OutOfOrder { line } => {
                write!(f, "start timestamp at line {line} decreases (events must be chronological)")
            }
            Self::BadFooter { line } => {
                write!(
                    f,
                    "malformed integrity footer at line {line} (want \
                     'footer,<rows>,crc32,<8 hex digits>' as the last non-empty line)"
                )
            }
            Self::Truncated { line, expected_rows, found_rows } => {
                write!(
                    f,
                    "footer at line {line} declares {expected_rows} row(s) but {found_rows} \
                     are present — file truncated?"
                )
            }
            Self::FooterChecksum { line, expected, found } => {
                write!(
                    f,
                    "footer at line {line} carries CRC-32 {expected:#010x} but the preceding \
                     bytes hash to {found:#010x} — file corrupted"
                )
            }
        }
    }
}

impl std::error::Error for ParseTraceError {}

fn cause_tag(cause: StopCause) -> &'static str {
    match cause {
        StopCause::TrafficLight => "traffic_light",
        StopCause::StopSign => "stop_sign",
        StopCause::Congestion => "congestion",
    }
}

fn parse_cause(tag: &str) -> Result<StopCause, ParseTraceError> {
    match tag {
        "traffic_light" => Ok(StopCause::TrafficLight),
        "stop_sign" => Ok(StopCause::StopSign),
        "congestion" => Ok(StopCause::Congestion),
        other => Err(ParseTraceError::UnknownCause(other.to_string())),
    }
}

fn parse_area(name: &str) -> Result<Area, ParseTraceError> {
    Area::ALL
        .iter()
        .find(|a| a.name() == name)
        .copied()
        .ok_or_else(|| ParseTraceError::UnknownArea(name.to_string()))
}

/// Serializes a trace to the CSV format described in the module docs.
#[must_use]
pub fn to_csv(trace: &VehicleTrace) -> String {
    let mut out = String::with_capacity(64 + trace.events.len() * 32);
    out.push_str(&format!(
        "vehicle,{},{},{}\nstart_s,duration_s,cause\n",
        trace.vehicle_id,
        trace.area.name(),
        trace.days
    ));
    for e in &trace.events {
        out.push_str(&format!("{:.4},{:.4},{}\n", e.start_s, e.duration_s, cause_tag(e.cause)));
    }
    out
}

/// Serializes a trace like [`to_csv`] and appends the integrity footer
/// (row count + CRC-32 of every preceding byte).
#[must_use]
pub fn to_csv_checked(trace: &VehicleTrace) -> String {
    let mut out = to_csv(trace);
    let crc = numeric::crc32::crc32(out.as_bytes());
    out.push_str(&format!("footer,{},crc32,{crc:08x}\n", trace.events.len()));
    out
}

/// A parsed-but-unverified integrity footer.
struct Footer {
    /// 1-based line number of the footer line.
    line: usize,
    expected_rows: usize,
    expected_crc: u32,
}

/// Splits a trailing `footer,...` line off `input`, returning the body
/// (every byte before the footer line) and the parsed footer. Inputs
/// without a footer come back unchanged. The footer must be the last
/// non-empty line; only blank lines may follow it.
fn split_footer(input: &str) -> Result<(&str, Option<Footer>), ParseTraceError> {
    let mut footer: Option<(usize, Footer)> = None;
    let mut offset = 0usize;
    for (i, raw) in input.split_inclusive('\n').enumerate() {
        let line = raw.trim_end_matches(['\n', '\r']);
        if let Some((at, _)) = &footer {
            if !line.trim().is_empty() {
                // Rows after the footer: it cannot vouch for them.
                return Err(ParseTraceError::BadFooter { line: *at });
            }
        } else if line.starts_with("footer,") {
            let bad = ParseTraceError::BadFooter { line: i + 1 };
            let fields: Vec<&str> = line.split(',').collect();
            if fields.len() != 4 || fields[2] != "crc32" || fields[3].len() != 8 {
                return Err(bad);
            }
            let expected_rows = fields[1].parse().map_err(|_| bad.clone())?;
            let expected_crc = u32::from_str_radix(fields[3], 16).map_err(|_| bad)?;
            footer = Some((i + 1, Footer { line: i + 1, expected_rows, expected_crc }));
        }
        if footer.is_none() {
            offset += raw.len();
        }
    }
    match footer {
        Some((_, f)) => Ok((&input[..offset], Some(f))),
        None => Ok((input, None)),
    }
}

/// Parses a trace from the CSV format produced by [`to_csv`] or
/// [`to_csv_checked`]. When the integrity footer is present it is
/// verified: a row-count mismatch is [`ParseTraceError::Truncated`], a
/// checksum mismatch [`ParseTraceError::FooterChecksum`].
///
/// # Errors
///
/// Returns [`ParseTraceError`] describing the first problem encountered.
pub fn from_csv(input: &str) -> Result<VehicleTrace, ParseTraceError> {
    let (body, footer) = split_footer(input)?;
    let trace = parse_body(body)?;
    if let Some(f) = footer {
        // Row count first: a truncated body fails both checks, and
        // "rows are missing" is the actionable diagnosis.
        if trace.events.len() != f.expected_rows {
            return Err(ParseTraceError::Truncated {
                line: f.line,
                expected_rows: f.expected_rows,
                found_rows: trace.events.len(),
            });
        }
        let found = numeric::crc32::crc32(body.as_bytes());
        if found != f.expected_crc {
            return Err(ParseTraceError::FooterChecksum {
                line: f.line,
                expected: f.expected_crc,
                found,
            });
        }
    }
    Ok(trace)
}

/// The footer-less parser: metadata line, header, data rows.
fn parse_body(input: &str) -> Result<VehicleTrace, ParseTraceError> {
    let mut lines = input.lines().enumerate();
    let (_, meta) = lines.next().ok_or(ParseTraceError::BadMetadata)?;
    let fields: Vec<&str> = meta.split(',').collect();
    if fields.len() != 4 || fields[0] != "vehicle" {
        return Err(ParseTraceError::BadMetadata);
    }
    let vehicle_id: u32 = fields[1].parse().map_err(|_| ParseTraceError::BadMetadata)?;
    let area = parse_area(fields[2])?;
    let days: u32 = fields[3].parse().map_err(|_| ParseTraceError::BadMetadata)?;
    if days == 0 {
        return Err(ParseTraceError::BadMetadata);
    }

    let (_, header) = lines.next().ok_or(ParseTraceError::BadHeader)?;
    if header.trim() != "start_s,duration_s,cause" {
        return Err(ParseTraceError::BadHeader);
    }

    let mut events = Vec::new();
    let mut prev_start = 0.0f64;
    for (i, line) in lines {
        if line.trim().is_empty() {
            continue;
        }
        let cols: Vec<&str> = line.split(',').collect();
        if cols.len() != 3 {
            return Err(ParseTraceError::BadRow { line: i + 1 });
        }
        let start_s: f64 = cols[0].parse().map_err(|_| ParseTraceError::BadRow { line: i + 1 })?;
        let duration_s: f64 =
            cols[1].parse().map_err(|_| ParseTraceError::BadRow { line: i + 1 })?;
        let cause = parse_cause(cols[2].trim())?;
        if !start_s.is_finite() || !duration_s.is_finite() {
            return Err(ParseTraceError::NonFiniteField { line: i + 1 });
        }
        if duration_s < 0.0 {
            return Err(ParseTraceError::NegativeDuration { line: i + 1 });
        }
        if start_s < prev_start {
            return Err(ParseTraceError::OutOfOrder { line: i + 1 });
        }
        prev_start = start_s;
        events.push(StopEvent { start_s, duration_s, cause });
    }
    Ok(VehicleTrace::new(vehicle_id, area, days, events))
}

/// Writes a trace to `path` as CSV.
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn save_csv(trace: &VehicleTrace, path: &Path) -> std::io::Result<()> {
    fs::write(path, to_csv(trace))
}

/// Writes a trace to `path` as CSV with the integrity footer.
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn save_csv_checked(trace: &VehicleTrace, path: &Path) -> std::io::Result<()> {
    fs::write(path, to_csv_checked(trace))
}

/// Reads a trace from a CSV file.
///
/// # Errors
///
/// Returns an I/O error wrapped as `InvalidData` when parsing fails.
pub fn load_csv(path: &Path) -> std::io::Result<VehicleTrace> {
    let content = fs::read_to_string(path)?;
    from_csv(&content)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::FleetConfig;

    fn sample_trace() -> VehicleTrace {
        FleetConfig::new(Area::Chicago).vehicles(1).days(3).synthesize(5).remove(0)
    }

    #[test]
    fn roundtrip_preserves_everything_within_precision() {
        let t = sample_trace();
        let csv = to_csv(&t);
        let back = from_csv(&csv).unwrap();
        assert_eq!(back.vehicle_id, t.vehicle_id);
        assert_eq!(back.area, t.area);
        assert_eq!(back.days, t.days);
        assert_eq!(back.num_stops(), t.num_stops());
        for (a, b) in back.iter().zip(t.iter()) {
            assert!((a.start_s - b.start_s).abs() < 1e-3);
            assert!((a.duration_s - b.duration_s).abs() < 1e-3);
            assert_eq!(a.cause, b.cause);
        }
    }

    #[test]
    fn file_roundtrip() {
        let t = sample_trace();
        let dir = std::env::temp_dir().join("drivesim_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.csv");
        save_csv(&t, &path).unwrap();
        let back = load_csv(&path).unwrap();
        assert_eq!(back.num_stops(), t.num_stops());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_event_list_roundtrips() {
        let t = VehicleTrace::new(9, Area::Atlanta, 7, vec![]);
        let back = from_csv(&to_csv(&t)).unwrap();
        assert_eq!(back.num_stops(), 0);
        assert_eq!(back.vehicle_id, 9);
    }

    #[test]
    fn rejects_malformed_metadata() {
        assert_eq!(from_csv(""), Err(ParseTraceError::BadMetadata));
        assert_eq!(from_csv("car,1,Chicago,7\n"), Err(ParseTraceError::BadMetadata));
        assert_eq!(from_csv("vehicle,x,Chicago,7\n"), Err(ParseTraceError::BadMetadata));
        assert_eq!(from_csv("vehicle,1,Chicago,0\n"), Err(ParseTraceError::BadMetadata));
        assert_eq!(
            from_csv("vehicle,1,Springfield,7\n"),
            Err(ParseTraceError::UnknownArea("Springfield".into()))
        );
    }

    #[test]
    fn rejects_bad_header_and_rows() {
        assert_eq!(from_csv("vehicle,1,Chicago,7\n"), Err(ParseTraceError::BadHeader));
        assert_eq!(
            from_csv("vehicle,1,Chicago,7\nwrong,header,here\n"),
            Err(ParseTraceError::BadHeader)
        );
        let base = "vehicle,1,Chicago,7\nstart_s,duration_s,cause\n";
        assert_eq!(from_csv(&format!("{base}1.0,2.0\n")), Err(ParseTraceError::BadRow { line: 3 }));
        assert_eq!(
            from_csv(&format!("{base}abc,2.0,stop_sign\n")),
            Err(ParseTraceError::BadRow { line: 3 })
        );
        assert_eq!(
            from_csv(&format!("{base}1.0,2.0,warp_drive\n")),
            Err(ParseTraceError::UnknownCause("warp_drive".into()))
        );
    }

    #[test]
    fn rejects_out_of_order_and_negative_with_line_numbers() {
        let base = "vehicle,1,Chicago,7\nstart_s,duration_s,cause\n";
        assert_eq!(
            from_csv(&format!("{base}10.0,1.0,stop_sign\n5.0,1.0,stop_sign\n")),
            Err(ParseTraceError::OutOfOrder { line: 4 })
        );
        assert_eq!(
            from_csv(&format!("{base}10.0,-1.0,stop_sign\n")),
            Err(ParseTraceError::NegativeDuration { line: 3 })
        );
    }

    #[test]
    fn rejects_non_finite_fields_with_line_numbers() {
        // Rust's f64 parser happily accepts "NaN" and "inf", so these
        // must be caught semantically, not lexically.
        let base = "vehicle,1,Chicago,7\nstart_s,duration_s,cause\n";
        for bad in ["NaN", "inf", "-inf", "infinity"] {
            assert_eq!(
                from_csv(&format!("{base}1.0,2.0,stop_sign\n5.0,{bad},stop_sign\n")),
                Err(ParseTraceError::NonFiniteField { line: 4 }),
                "duration {bad}"
            );
            assert_eq!(
                from_csv(&format!("{base}{bad},2.0,stop_sign\n")),
                Err(ParseTraceError::NonFiniteField { line: 3 }),
                "start {bad}"
            );
        }
    }

    #[test]
    fn corrupted_file_roundtrip_fails_cleanly() {
        // A valid exported trace corrupted in specific ways must come
        // back as the matching typed error naming the right line — and
        // repairing the corruption must restore the round-trip.
        let t = sample_trace();
        let good = to_csv(&t);
        assert!(t.num_stops() >= 3, "fixture needs a few events");
        let lines: Vec<&str> = good.lines().collect();

        // Corrupt one duration to NaN.
        let mut bad = lines.clone();
        let victim = 4; // first data row is line 3 (1-based)
        let start = bad[victim - 1].split(',').next().unwrap();
        let nan_row = format!("{start},NaN,congestion");
        bad[victim - 1] = &nan_row;
        let joined = bad.join("\n");
        assert_eq!(from_csv(&joined), Err(ParseTraceError::NonFiniteField { line: victim }));

        // Swap two data rows to break chronology.
        let mut swapped = lines.clone();
        swapped.swap(2, 3);
        let joined = swapped.join("\n");
        assert_eq!(from_csv(&joined), Err(ParseTraceError::OutOfOrder { line: 4 }));

        // Truncate a row mid-field.
        let mut truncated = lines.clone();
        let cut = &truncated[2][..truncated[2].rfind(',').unwrap()];
        truncated[2] = cut;
        let joined = truncated.join("\n");
        assert_eq!(from_csv(&joined), Err(ParseTraceError::BadRow { line: 3 }));

        // The untouched original still round-trips.
        let back = from_csv(&good).unwrap();
        assert_eq!(back.num_stops(), t.num_stops());
    }

    #[test]
    fn skips_blank_lines() {
        let base = "vehicle,1,Chicago,7\nstart_s,duration_s,cause\n1.0,2.0,congestion\n\n";
        let t = from_csv(base).unwrap();
        assert_eq!(t.num_stops(), 1);
    }

    #[test]
    fn checked_roundtrip_preserves_everything() {
        let t = sample_trace();
        let csv = to_csv_checked(&t);
        let last = csv.lines().last().unwrap();
        assert!(last.starts_with(&format!("footer,{},crc32,", t.num_stops())), "{last}");
        let back = from_csv(&csv).unwrap();
        assert_eq!(back.num_stops(), t.num_stops());
        assert_eq!(back.vehicle_id, t.vehicle_id);

        // Footer-less output still loads (backward compatibility), and
        // an empty trace carries a valid footer too.
        assert_eq!(from_csv(&to_csv(&t)).unwrap().num_stops(), t.num_stops());
        let empty = VehicleTrace::new(3, Area::Atlanta, 2, vec![]);
        assert_eq!(from_csv(&to_csv_checked(&empty)).unwrap().num_stops(), 0);
    }

    #[test]
    fn checked_file_roundtrip() {
        let t = sample_trace();
        let dir = std::env::temp_dir().join("drivesim_persist_checked_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.csv");
        save_csv_checked(&t, &path).unwrap();
        assert_eq!(load_csv(&path).unwrap().num_stops(), t.num_stops());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn footer_detects_truncation_with_typed_error() {
        let t = sample_trace();
        assert!(t.num_stops() >= 3, "fixture needs a few events");
        let csv = to_csv_checked(&t);
        let mut lines: Vec<&str> = csv.lines().collect();
        let footer_line = lines.len(); // 1-based position after removal below
                                       // Drop one data row; the surviving footer must call it out.
        lines.remove(lines.len() - 2);
        let truncated = lines.join("\n") + "\n";
        assert_eq!(
            from_csv(&truncated),
            Err(ParseTraceError::Truncated {
                line: footer_line - 1,
                expected_rows: t.num_stops(),
                found_rows: t.num_stops() - 1,
            })
        );
    }

    #[test]
    fn footer_detects_bit_rot() {
        let t = sample_trace();
        let csv = to_csv_checked(&t);
        // Same shape, one digit changed: row count passes, CRC must not.
        let rotted = csv.replacen(".5", ".6", 1);
        if rotted == csv {
            // Fixture had no ".5"; flip a different digit.
            let rotted = csv.replacen('1', "2", 1);
            assert!(matches!(
                from_csv(&rotted),
                Err(ParseTraceError::FooterChecksum { .. } | ParseTraceError::BadMetadata)
            ));
            return;
        }
        assert!(matches!(from_csv(&rotted), Err(ParseTraceError::FooterChecksum { .. })));
    }

    #[test]
    fn malformed_or_misplaced_footer_rejected() {
        let base = "vehicle,1,Chicago,7\nstart_s,duration_s,cause\n1.0,2.0,congestion\n";
        for bad in [
            "footer,1\n",                // too few fields
            "footer,x,crc32,00000000\n", // unparsable row count
            "footer,1,md5,00000000\n",   // wrong algorithm tag
            "footer,1,crc32,zzzzzzzz\n", // non-hex digest
            "footer,1,crc32,1234\n",     // wrong digest width
        ] {
            assert_eq!(
                from_csv(&format!("{base}{bad}")),
                Err(ParseTraceError::BadFooter { line: 4 }),
                "footer {bad:?}"
            );
        }
        // Rows after the footer: it cannot vouch for them.
        let crc = numeric::crc32::crc32(base.as_bytes());
        let misplaced = format!("{base}footer,1,crc32,{crc:08x}\n3.0,1.0,congestion\n");
        assert_eq!(from_csv(&misplaced), Err(ParseTraceError::BadFooter { line: 4 }));
        // Blank lines after the footer are fine.
        let ok = format!("{base}footer,1,crc32,{crc:08x}\n\n");
        assert_eq!(from_csv(&ok).unwrap().num_stops(), 1);
    }

    #[test]
    fn error_display_nonempty() {
        let errs: Vec<ParseTraceError> = vec![
            ParseTraceError::BadMetadata,
            ParseTraceError::UnknownArea("X".into()),
            ParseTraceError::BadHeader,
            ParseTraceError::BadRow { line: 3 },
            ParseTraceError::UnknownCause("X".into()),
            ParseTraceError::NonFiniteField { line: 4 },
            ParseTraceError::NegativeDuration { line: 5 },
            ParseTraceError::OutOfOrder { line: 6 },
            ParseTraceError::BadFooter { line: 7 },
            ParseTraceError::Truncated { line: 8, expected_rows: 9, found_rows: 4 },
            ParseTraceError::FooterChecksum { line: 9, expected: 1, found: 2 },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
