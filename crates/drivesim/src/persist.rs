//! Plain-CSV persistence for vehicle traces.
//!
//! Synthesized fleets are cheap to regenerate from a seed, but exporting
//! traces lets external tools (plotting, other simulators) consume them
//! and lets experiments pin an exact dataset. The format is deliberately
//! trivial — a metadata line, a header, one row per stop event:
//!
//! ```text
//! vehicle,17,Chicago,7
//! start_s,duration_s,cause
//! 371.2041,12.5000,traffic_light
//! ...
//! ```

use crate::area::Area;
use crate::trace::{StopCause, StopEvent, VehicleTrace};
use std::fmt;
use std::fs;
use std::path::Path;

/// Errors when parsing a trace CSV.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseTraceError {
    /// The metadata line (`vehicle,<id>,<area>,<days>`) is missing or
    /// malformed.
    BadMetadata,
    /// An unknown area name in the metadata.
    UnknownArea(String),
    /// The column header line is missing or wrong.
    BadHeader,
    /// A data row has the wrong number of fields or an unparsable value.
    BadRow {
        /// 1-based line number in the input.
        line: usize,
    },
    /// An unknown stop-cause tag.
    UnknownCause(String),
    /// A start or duration field parsed but is NaN or ±∞.
    NonFiniteField {
        /// 1-based line number in the input.
        line: usize,
    },
    /// A duration field is finite but negative.
    NegativeDuration {
        /// 1-based line number in the input.
        line: usize,
    },
    /// A start timestamp is earlier than the previous event's.
    OutOfOrder {
        /// 1-based line number in the input.
        line: usize,
    },
}

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadMetadata => {
                write!(f, "missing or malformed 'vehicle,<id>,<area>,<days>' line")
            }
            Self::UnknownArea(a) => write!(f, "unknown area {a:?}"),
            Self::BadHeader => write!(f, "missing 'start_s,duration_s,cause' header"),
            Self::BadRow { line } => write!(f, "malformed event row at line {line}"),
            Self::UnknownCause(c) => write!(f, "unknown stop cause {c:?}"),
            Self::NonFiniteField { line } => {
                write!(f, "non-finite start or duration at line {line}")
            }
            Self::NegativeDuration { line } => write!(f, "negative duration at line {line}"),
            Self::OutOfOrder { line } => {
                write!(f, "start timestamp at line {line} decreases (events must be chronological)")
            }
        }
    }
}

impl std::error::Error for ParseTraceError {}

fn cause_tag(cause: StopCause) -> &'static str {
    match cause {
        StopCause::TrafficLight => "traffic_light",
        StopCause::StopSign => "stop_sign",
        StopCause::Congestion => "congestion",
    }
}

fn parse_cause(tag: &str) -> Result<StopCause, ParseTraceError> {
    match tag {
        "traffic_light" => Ok(StopCause::TrafficLight),
        "stop_sign" => Ok(StopCause::StopSign),
        "congestion" => Ok(StopCause::Congestion),
        other => Err(ParseTraceError::UnknownCause(other.to_string())),
    }
}

fn parse_area(name: &str) -> Result<Area, ParseTraceError> {
    Area::ALL
        .iter()
        .find(|a| a.name() == name)
        .copied()
        .ok_or_else(|| ParseTraceError::UnknownArea(name.to_string()))
}

/// Serializes a trace to the CSV format described in the module docs.
#[must_use]
pub fn to_csv(trace: &VehicleTrace) -> String {
    let mut out = String::with_capacity(64 + trace.events.len() * 32);
    out.push_str(&format!(
        "vehicle,{},{},{}\nstart_s,duration_s,cause\n",
        trace.vehicle_id,
        trace.area.name(),
        trace.days
    ));
    for e in &trace.events {
        out.push_str(&format!("{:.4},{:.4},{}\n", e.start_s, e.duration_s, cause_tag(e.cause)));
    }
    out
}

/// Parses a trace from the CSV format produced by [`to_csv`].
///
/// # Errors
///
/// Returns [`ParseTraceError`] describing the first problem encountered.
pub fn from_csv(input: &str) -> Result<VehicleTrace, ParseTraceError> {
    let mut lines = input.lines().enumerate();
    let (_, meta) = lines.next().ok_or(ParseTraceError::BadMetadata)?;
    let fields: Vec<&str> = meta.split(',').collect();
    if fields.len() != 4 || fields[0] != "vehicle" {
        return Err(ParseTraceError::BadMetadata);
    }
    let vehicle_id: u32 = fields[1].parse().map_err(|_| ParseTraceError::BadMetadata)?;
    let area = parse_area(fields[2])?;
    let days: u32 = fields[3].parse().map_err(|_| ParseTraceError::BadMetadata)?;
    if days == 0 {
        return Err(ParseTraceError::BadMetadata);
    }

    let (_, header) = lines.next().ok_or(ParseTraceError::BadHeader)?;
    if header.trim() != "start_s,duration_s,cause" {
        return Err(ParseTraceError::BadHeader);
    }

    let mut events = Vec::new();
    let mut prev_start = 0.0f64;
    for (i, line) in lines {
        if line.trim().is_empty() {
            continue;
        }
        let cols: Vec<&str> = line.split(',').collect();
        if cols.len() != 3 {
            return Err(ParseTraceError::BadRow { line: i + 1 });
        }
        let start_s: f64 = cols[0].parse().map_err(|_| ParseTraceError::BadRow { line: i + 1 })?;
        let duration_s: f64 =
            cols[1].parse().map_err(|_| ParseTraceError::BadRow { line: i + 1 })?;
        let cause = parse_cause(cols[2].trim())?;
        if !start_s.is_finite() || !duration_s.is_finite() {
            return Err(ParseTraceError::NonFiniteField { line: i + 1 });
        }
        if duration_s < 0.0 {
            return Err(ParseTraceError::NegativeDuration { line: i + 1 });
        }
        if start_s < prev_start {
            return Err(ParseTraceError::OutOfOrder { line: i + 1 });
        }
        prev_start = start_s;
        events.push(StopEvent { start_s, duration_s, cause });
    }
    Ok(VehicleTrace::new(vehicle_id, area, days, events))
}

/// Writes a trace to `path` as CSV.
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn save_csv(trace: &VehicleTrace, path: &Path) -> std::io::Result<()> {
    fs::write(path, to_csv(trace))
}

/// Reads a trace from a CSV file.
///
/// # Errors
///
/// Returns an I/O error wrapped as `InvalidData` when parsing fails.
pub fn load_csv(path: &Path) -> std::io::Result<VehicleTrace> {
    let content = fs::read_to_string(path)?;
    from_csv(&content)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::FleetConfig;

    fn sample_trace() -> VehicleTrace {
        FleetConfig::new(Area::Chicago).vehicles(1).days(3).synthesize(5).remove(0)
    }

    #[test]
    fn roundtrip_preserves_everything_within_precision() {
        let t = sample_trace();
        let csv = to_csv(&t);
        let back = from_csv(&csv).unwrap();
        assert_eq!(back.vehicle_id, t.vehicle_id);
        assert_eq!(back.area, t.area);
        assert_eq!(back.days, t.days);
        assert_eq!(back.num_stops(), t.num_stops());
        for (a, b) in back.iter().zip(t.iter()) {
            assert!((a.start_s - b.start_s).abs() < 1e-3);
            assert!((a.duration_s - b.duration_s).abs() < 1e-3);
            assert_eq!(a.cause, b.cause);
        }
    }

    #[test]
    fn file_roundtrip() {
        let t = sample_trace();
        let dir = std::env::temp_dir().join("drivesim_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.csv");
        save_csv(&t, &path).unwrap();
        let back = load_csv(&path).unwrap();
        assert_eq!(back.num_stops(), t.num_stops());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_event_list_roundtrips() {
        let t = VehicleTrace::new(9, Area::Atlanta, 7, vec![]);
        let back = from_csv(&to_csv(&t)).unwrap();
        assert_eq!(back.num_stops(), 0);
        assert_eq!(back.vehicle_id, 9);
    }

    #[test]
    fn rejects_malformed_metadata() {
        assert_eq!(from_csv(""), Err(ParseTraceError::BadMetadata));
        assert_eq!(from_csv("car,1,Chicago,7\n"), Err(ParseTraceError::BadMetadata));
        assert_eq!(from_csv("vehicle,x,Chicago,7\n"), Err(ParseTraceError::BadMetadata));
        assert_eq!(from_csv("vehicle,1,Chicago,0\n"), Err(ParseTraceError::BadMetadata));
        assert_eq!(
            from_csv("vehicle,1,Springfield,7\n"),
            Err(ParseTraceError::UnknownArea("Springfield".into()))
        );
    }

    #[test]
    fn rejects_bad_header_and_rows() {
        assert_eq!(from_csv("vehicle,1,Chicago,7\n"), Err(ParseTraceError::BadHeader));
        assert_eq!(
            from_csv("vehicle,1,Chicago,7\nwrong,header,here\n"),
            Err(ParseTraceError::BadHeader)
        );
        let base = "vehicle,1,Chicago,7\nstart_s,duration_s,cause\n";
        assert_eq!(from_csv(&format!("{base}1.0,2.0\n")), Err(ParseTraceError::BadRow { line: 3 }));
        assert_eq!(
            from_csv(&format!("{base}abc,2.0,stop_sign\n")),
            Err(ParseTraceError::BadRow { line: 3 })
        );
        assert_eq!(
            from_csv(&format!("{base}1.0,2.0,warp_drive\n")),
            Err(ParseTraceError::UnknownCause("warp_drive".into()))
        );
    }

    #[test]
    fn rejects_out_of_order_and_negative_with_line_numbers() {
        let base = "vehicle,1,Chicago,7\nstart_s,duration_s,cause\n";
        assert_eq!(
            from_csv(&format!("{base}10.0,1.0,stop_sign\n5.0,1.0,stop_sign\n")),
            Err(ParseTraceError::OutOfOrder { line: 4 })
        );
        assert_eq!(
            from_csv(&format!("{base}10.0,-1.0,stop_sign\n")),
            Err(ParseTraceError::NegativeDuration { line: 3 })
        );
    }

    #[test]
    fn rejects_non_finite_fields_with_line_numbers() {
        // Rust's f64 parser happily accepts "NaN" and "inf", so these
        // must be caught semantically, not lexically.
        let base = "vehicle,1,Chicago,7\nstart_s,duration_s,cause\n";
        for bad in ["NaN", "inf", "-inf", "infinity"] {
            assert_eq!(
                from_csv(&format!("{base}1.0,2.0,stop_sign\n5.0,{bad},stop_sign\n")),
                Err(ParseTraceError::NonFiniteField { line: 4 }),
                "duration {bad}"
            );
            assert_eq!(
                from_csv(&format!("{base}{bad},2.0,stop_sign\n")),
                Err(ParseTraceError::NonFiniteField { line: 3 }),
                "start {bad}"
            );
        }
    }

    #[test]
    fn corrupted_file_roundtrip_fails_cleanly() {
        // A valid exported trace corrupted in specific ways must come
        // back as the matching typed error naming the right line — and
        // repairing the corruption must restore the round-trip.
        let t = sample_trace();
        let good = to_csv(&t);
        assert!(t.num_stops() >= 3, "fixture needs a few events");
        let lines: Vec<&str> = good.lines().collect();

        // Corrupt one duration to NaN.
        let mut bad = lines.clone();
        let victim = 4; // first data row is line 3 (1-based)
        let start = bad[victim - 1].split(',').next().unwrap();
        let nan_row = format!("{start},NaN,congestion");
        bad[victim - 1] = &nan_row;
        let joined = bad.join("\n");
        assert_eq!(from_csv(&joined), Err(ParseTraceError::NonFiniteField { line: victim }));

        // Swap two data rows to break chronology.
        let mut swapped = lines.clone();
        swapped.swap(2, 3);
        let joined = swapped.join("\n");
        assert_eq!(from_csv(&joined), Err(ParseTraceError::OutOfOrder { line: 4 }));

        // Truncate a row mid-field.
        let mut truncated = lines.clone();
        let cut = &truncated[2][..truncated[2].rfind(',').unwrap()];
        truncated[2] = cut;
        let joined = truncated.join("\n");
        assert_eq!(from_csv(&joined), Err(ParseTraceError::BadRow { line: 3 }));

        // The untouched original still round-trips.
        let back = from_csv(&good).unwrap();
        assert_eq!(back.num_stops(), t.num_stops());
    }

    #[test]
    fn skips_blank_lines() {
        let base = "vehicle,1,Chicago,7\nstart_s,duration_s,cause\n1.0,2.0,congestion\n\n";
        let t = from_csv(base).unwrap();
        assert_eq!(t.num_stops(), 1);
    }

    #[test]
    fn error_display_nonempty() {
        let errs: Vec<ParseTraceError> = vec![
            ParseTraceError::BadMetadata,
            ParseTraceError::UnknownArea("X".into()),
            ParseTraceError::BadHeader,
            ParseTraceError::BadRow { line: 3 },
            ParseTraceError::UnknownCause("X".into()),
            ParseTraceError::NonFiniteField { line: 4 },
            ParseTraceError::NegativeDuration { line: 5 },
            ParseTraceError::OutOfOrder { line: 6 },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
