//! Sufficient statistics of a stop trace for O(log n) cost queries.
//!
//! Every Figure-4 style evaluation in this crate reduces to a handful of
//! order-statistics queries on the same trace: "how much stop time lies
//! below a threshold?", "how many stops are at least this long?". The
//! naive implementations rescan the trace per policy and per candidate
//! threshold — an O(n·k) pattern that dominates fleet sweeps. A
//! [`StopSummary`] sorts the trace **once** and keeps prefix sums (and
//! prefix sums of squares), after which each query is a binary search
//! plus O(1) arithmetic:
//!
//! * [`StopSummary::threshold_total_cost`] — exact total online cost of
//!   any deterministic threshold policy on the trace;
//! * [`StopSummary::offline_total`] — the offline optimum `Σ min(yᵢ, B)`;
//! * [`StopSummary::constrained_stats`] — the paper's `(μ_B⁻, q_B⁺)`
//!   plug-in pair for **any** break-even `B`, not just the one the trace
//!   was collected under;
//! * [`StopSummary::hindsight`] — the in-sample optimal fixed threshold
//!   via one exact O(n) sweep over the pre-sorted data.
//!
//! The summary is deliberately break-even-agnostic: a fleet experiment
//! builds one summary per vehicle and shares it across all six strategies
//! and every candidate `B`. Policies exploit it through
//! [`Policy::total_cost_on`](crate::policy::Policy::total_cost_on), whose
//! per-policy closed forms turn an O(n) trace scan into O(log n).
//!
//! Numerical note: sums here accumulate in *sorted* order (ascending), so
//! they can differ from input-order scans by a few ulps. All public
//! invariants hold to 1e-9 relative accuracy against the naive scans (see
//! `tests/summary_property.rs`); [`StopSummary::hindsight`] is
//! bit-identical to the historical `BayesOpt::for_samples` sweep because
//! that sweep also accumulated in sorted order.

use crate::constrained::ConstrainedStats;
use crate::cost::BreakEven;
use crate::Error;

/// Sorted stop-length trace with prefix sums: the sufficient statistics
/// for every per-trace cost query in this crate.
///
/// Construction is O(n log n); all queries are O(log n) (or O(1) given a
/// precomputed rank). The summary is never empty — [`StopSummary::new`]
/// rejects empty traces — so totals and means are always well defined.
#[derive(Debug, Clone, PartialEq)]
pub struct StopSummary {
    /// Stop lengths in ascending order.
    sorted: Vec<f64>,
    /// `prefix[i] = Σ sorted[..i]`; length `n + 1`.
    prefix: Vec<f64>,
    /// `prefix_sq[i] = Σ sorted[..i]²`; length `n + 1`.
    prefix_sq: Vec<f64>,
    /// Number of strictly positive stops.
    positive: usize,
}

impl StopSummary {
    /// Sorts `stops` and precomputes prefix sums.
    ///
    /// # Errors
    ///
    /// Returns [`Error::EmptyTrace`] if `stops` is empty.
    ///
    /// # Panics
    ///
    /// Panics if any stop is negative or non-finite.
    pub fn new(stops: &[f64]) -> Result<Self, Error> {
        if stops.is_empty() {
            return Err(Error::EmptyTrace);
        }
        assert!(
            stops.iter().all(|y| y.is_finite() && *y >= 0.0),
            "stop lengths must be finite and non-negative"
        );
        let mut sorted = stops.to_vec();
        sorted.sort_by(f64::total_cmp);
        let mut prefix = Vec::with_capacity(sorted.len() + 1);
        let mut prefix_sq = Vec::with_capacity(sorted.len() + 1);
        let (mut acc, mut acc_sq) = (0.0f64, 0.0f64);
        prefix.push(0.0);
        prefix_sq.push(0.0);
        for &y in &sorted {
            acc += y;
            acc_sq += y * y;
            prefix.push(acc);
            prefix_sq.push(acc_sq);
        }
        let positive = sorted.iter().filter(|&&y| y > 0.0).count();
        Ok(Self { sorted, prefix, prefix_sq, positive })
    }

    /// Number of stops in the trace.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Always `false`: construction rejects empty traces.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The stop lengths in ascending order.
    #[must_use]
    pub fn sorted(&self) -> &[f64] {
        &self.sorted
    }

    /// Number of strictly positive stops (TOI pays a restart on exactly
    /// these).
    #[must_use]
    pub fn positive_count(&self) -> usize {
        self.positive
    }

    /// Sum of all stop lengths.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.prefix[self.sorted.len()]
    }

    /// Mean stop length.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.total() / self.sorted.len() as f64
    }

    /// The longest stop.
    #[must_use]
    pub fn max(&self) -> f64 {
        *self.sorted.last().unwrap_or_else(|| unreachable!("non-empty by construction"))
    }

    /// Number of stops with `y < x`.
    #[must_use]
    pub fn count_below(&self, x: f64) -> usize {
        self.sorted.partition_point(|&y| y < x)
    }

    /// Number of stops with `y ≤ x`.
    #[must_use]
    pub fn count_at_most(&self, x: f64) -> usize {
        self.sorted.partition_point(|&y| y <= x)
    }

    /// Number of stops with `y ≥ x`.
    #[must_use]
    pub fn count_at_least(&self, x: f64) -> usize {
        self.sorted.len() - self.count_below(x)
    }

    /// `Σ yᵢ` over stops with `yᵢ < x`.
    #[must_use]
    pub fn sum_below(&self, x: f64) -> f64 {
        self.prefix[self.count_below(x)]
    }

    /// `Σ yᵢ` over stops with `yᵢ ≤ x`.
    #[must_use]
    pub fn sum_at_most(&self, x: f64) -> f64 {
        self.prefix[self.count_at_most(x)]
    }

    /// `Σ yᵢ²` over stops with `yᵢ ≤ x`.
    #[must_use]
    pub fn sum_sq_at_most(&self, x: f64) -> f64 {
        self.prefix_sq[self.count_at_most(x)]
    }

    /// Empirical partial mean `(1/n)·Σ_{yᵢ < x} yᵢ` — the plug-in `μ_x⁻`.
    #[must_use]
    pub fn partial_mean(&self, x: f64) -> f64 {
        self.sum_below(x) / self.sorted.len() as f64
    }

    /// Empirical tail probability `(1/n)·#{yᵢ ≥ x}` — the plug-in `q_x⁺`.
    #[must_use]
    pub fn tail_prob(&self, x: f64) -> f64 {
        self.count_at_least(x) as f64 / self.sorted.len() as f64
    }

    /// Total offline-optimal cost `Σ min(yᵢ, B)` for break-even `B`.
    #[must_use]
    pub fn offline_total(&self, break_even: BreakEven) -> f64 {
        let b = break_even.seconds();
        self.sum_below(b) + self.count_at_least(b) as f64 * b
    }

    /// Exact total online cost of the fixed threshold `x` on the trace:
    /// `Σ cost_online(x, yᵢ)` with `cost_online(x, y) = y` if `y < x`,
    /// else `x + B`. An infinite `x` (never turn off) costs
    /// [`StopSummary::total`].
    ///
    /// # Panics
    ///
    /// Panics if `x` is negative or NaN.
    #[must_use]
    pub fn threshold_total_cost(&self, x: f64, break_even: BreakEven) -> f64 {
        assert!(x >= 0.0, "threshold must be non-negative, got {x}");
        if x.is_infinite() {
            return self.total();
        }
        self.sum_below(x) + self.count_at_least(x) as f64 * (x + break_even.seconds())
    }

    /// Plug-in constrained statistics `(μ_B⁻, q_B⁺)` for **any**
    /// break-even `B` — equivalent to
    /// [`ConstrainedStats::from_samples`] up to floating-point summation
    /// order, but O(log n) once the summary exists.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidMoments`] if the pair falls outside the
    /// feasible region by more than the 1e-12 relative slack (cannot
    /// happen for exact arithmetic; guards against pathological rounding).
    pub fn constrained_stats(&self, break_even: BreakEven) -> Result<ConstrainedStats, Error> {
        let b = break_even.seconds();
        ConstrainedStats::new(break_even, self.partial_mean(b), self.tail_prob(b))
    }

    /// The in-sample optimal fixed threshold and its exact total cost:
    /// one O(n) sweep over the pre-sorted trace.
    ///
    /// The total cost of threshold `x` is piecewise linear and increasing
    /// between sample values, so the optimum is `0` (TOI), just above one
    /// of the observed stop lengths, or `∞` (NEV); all candidates are
    /// evaluated exactly from the prefix sums. Returns `(x*, cost(x*))`
    /// with `x* = ∞` encoding "never turn off". Finite optima are nudged
    /// just above the winning sample so `y < x*` includes it.
    #[must_use]
    pub fn hindsight(&self, break_even: BreakEven) -> (f64, f64) {
        let b = break_even.seconds();
        let n = self.sorted.len();
        // x = 0 (TOI): every positive stop pays B.
        let mut best_cost = self.positive as f64 * b;
        let mut best_x = 0.0;
        // x = ∞ (NEV): pay every stop in full.
        let total = self.total();
        if total < best_cost {
            best_cost = total;
            best_x = f64::INFINITY;
        }
        // x just above sorted[i]: stops ≤ sorted[i] are idled through,
        // the rest pay (sorted[i] + B) each (the infimum over the open
        // interval (sorted[i], next)).
        for (i, &y) in self.sorted.iter().enumerate() {
            if i + 1 < n && self.sorted[i + 1] == y {
                continue; // same candidate; take the last duplicate
            }
            let longer = (n - i - 1) as f64;
            let cost = self.prefix[i + 1] + longer * (y + b);
            if cost < best_cost {
                best_cost = cost;
                // Nudge above y so `stop < threshold` includes it.
                best_x = y + 1e-9 * y.max(1.0);
            }
        }
        (best_x, best_cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{BDet, Det, MixedThreshold, MomRand, NRand, Nev, Policy, Toi};
    use numeric::approx_eq;

    fn b28() -> BreakEven {
        BreakEven::new(28.0).unwrap()
    }

    fn fixture() -> Vec<f64> {
        vec![12.0, 0.0, 45.0, 28.0, 3.0, 90.0, 28.0, 7.5, 0.0, 15.0]
    }

    #[test]
    fn empty_trace_rejected() {
        assert!(matches!(StopSummary::new(&[]), Err(Error::EmptyTrace)));
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_stop_rejected() {
        let _ = StopSummary::new(&[1.0, -2.0]);
    }

    #[test]
    fn counts_and_sums_match_naive() {
        let stops = fixture();
        let s = StopSummary::new(&stops).unwrap();
        assert_eq!(s.len(), stops.len());
        assert!(!s.is_empty());
        assert_eq!(s.positive_count(), 8);
        assert!(approx_eq(s.total(), stops.iter().sum::<f64>(), 1e-12));
        assert_eq!(s.max(), 90.0);
        for x in [0.0, 3.0, 7.5, 28.0, 28.5, 90.0, 1e9] {
            assert_eq!(s.count_below(x), stops.iter().filter(|&&y| y < x).count(), "x={x}");
            assert_eq!(s.count_at_most(x), stops.iter().filter(|&&y| y <= x).count(), "x={x}");
            assert_eq!(s.count_at_least(x), stops.iter().filter(|&&y| y >= x).count(), "x={x}");
            let below: f64 = stops.iter().filter(|&&y| y < x).sum();
            assert!(approx_eq(s.sum_below(x), below, 1e-9), "x={x}");
            let sq: f64 = stops.iter().filter(|&&y| y <= x).map(|&y| y * y).sum();
            assert!(approx_eq(s.sum_sq_at_most(x), sq, 1e-9), "x={x}");
        }
    }

    #[test]
    fn offline_total_matches_break_even() {
        let stops = fixture();
        let s = StopSummary::new(&stops).unwrap();
        let naive: f64 = stops.iter().map(|&y| b28().offline_cost(y)).sum();
        assert!(approx_eq(s.offline_total(b28()), naive, 1e-9));
    }

    #[test]
    fn threshold_total_cost_matches_online_cost_sum() {
        let stops = fixture();
        let s = StopSummary::new(&stops).unwrap();
        for x in [0.0, 3.0, 12.0, 28.0, 60.0, 90.0, 200.0] {
            let naive: f64 = stops.iter().map(|&y| b28().online_cost(x, y)).sum();
            assert!(
                approx_eq(s.threshold_total_cost(x, b28()), naive, 1e-9),
                "x={x}: {} vs {naive}",
                s.threshold_total_cost(x, b28())
            );
        }
        assert!(approx_eq(
            s.threshold_total_cost(f64::INFINITY, b28()),
            stops.iter().sum::<f64>(),
            1e-12
        ));
    }

    #[test]
    fn constrained_stats_match_from_samples() {
        let stops = fixture();
        let s = StopSummary::new(&stops).unwrap();
        let via_summary = s.constrained_stats(b28()).unwrap();
        let via_scan = ConstrainedStats::from_samples(&stops, b28()).unwrap();
        assert!(approx_eq(via_summary.moments().mu_b_minus, via_scan.moments().mu_b_minus, 1e-12));
        assert!(approx_eq(via_summary.moments().q_b_plus, via_scan.moments().q_b_plus, 1e-12));
        // The summary is B-agnostic: any other break-even works too.
        let b47 = BreakEven::CONVENTIONAL;
        let alt = s.constrained_stats(b47).unwrap();
        let alt_scan = ConstrainedStats::from_samples(&stops, b47).unwrap();
        assert!(approx_eq(alt.moments().mu_b_minus, alt_scan.moments().mu_b_minus, 1e-12));
    }

    #[test]
    fn hindsight_matches_bayes_for_samples() {
        let stops = fixture();
        let s = StopSummary::new(&stops).unwrap();
        let (x, cost) = s.hindsight(b28());
        let bayes = crate::bayes::BayesOpt::for_samples(&stops, b28()).unwrap();
        assert_eq!(x, bayes.threshold());
        assert!(approx_eq(cost, s.threshold_total_cost(x, b28()), 1e-9));
        // And no fixed threshold beats it.
        for i in 0..=1000 {
            let alt = i as f64 * 0.1;
            assert!(cost <= s.threshold_total_cost(alt, b28()) + 1e-9, "beaten by {alt}");
        }
        assert!(cost <= s.total() + 1e-9);
    }

    #[test]
    fn hindsight_all_short_picks_nev() {
        let s = StopSummary::new(&[1.0, 2.0, 3.0]).unwrap();
        let (x, cost) = s.hindsight(b28());
        assert!(x.is_infinite() || x > 3.0, "x={x}");
        assert!(approx_eq(cost, 6.0, 1e-9));
    }

    #[test]
    fn total_cost_on_defaults_and_overrides_agree() {
        let stops = fixture();
        let s = StopSummary::new(&stops).unwrap();
        let b = b28();
        let policies: Vec<Box<dyn Policy>> = vec![
            Box::new(Nev::new(b)),
            Box::new(Toi::new(b)),
            Box::new(Det::new(b)),
            Box::new(BDet::new(b, 10.0).unwrap()),
            Box::new(NRand::new(b)),
            Box::new(MomRand::new(b, 8.0).unwrap()),
            Box::new(MomRand::new(b, 27.0).unwrap()),
            Box::new(MixedThreshold::new(b, vec![(0.0, 1.0), (14.0, 2.0), (28.0, 1.0)]).unwrap()),
        ];
        for p in &policies {
            let naive: f64 = stops.iter().map(|&y| p.expected_cost(y)).sum();
            let fast = p.total_cost_on(&s);
            assert!(approx_eq(fast, naive, 1e-9), "{}: fast {fast} vs naive {naive}", p.name());
        }
    }
}
