//! Cost functions of the idling-reduction ski-rental problem (Section 2).
//!
//! A stop of (initially unknown) length `y` can be handled by idling until
//! some threshold `x` and then shutting the engine off:
//!
//! * offline (knows `y`): `cost = min(y, B)` (eq. (2));
//! * online with threshold `x`: `cost = y` if the stop ends first
//!   (`y < x`), else `x + B` (eq. (3));
//! * competitive ratio `cr(x, y) = cost_online / cost_offline` (eq. (4)).
//!
//! The break-even interval `B` is the amount of idling whose cost equals
//! one restart; the paper estimates 28 s for stop-start vehicles and 47 s
//! for conventional vehicles (Appendix C, implemented in the `powertrain`
//! crate).

use crate::Error;
use std::fmt;

/// The break-even interval `B = cost_restart / cost_idling_per_second`, in
/// seconds of idling (newtype so it cannot be confused with a stop length
/// or a threshold).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BreakEven(f64);

impl BreakEven {
    /// The paper's estimate for a stop-start vehicle (strengthened starter,
    /// improved battery): 28 seconds.
    pub const SSV: BreakEven = BreakEven(28.0);

    /// The paper's estimate for a conventional vehicle without a stop-start
    /// system: 47 seconds.
    pub const CONVENTIONAL: BreakEven = BreakEven(47.0);

    /// Creates a break-even interval of `seconds`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidBreakEven`] unless `seconds` is positive and
    /// finite.
    pub fn new(seconds: f64) -> Result<Self, Error> {
        if seconds.is_finite() && seconds > 0.0 {
            Ok(Self(seconds))
        } else {
            Err(Error::InvalidBreakEven(seconds))
        }
    }

    /// The interval in seconds.
    #[must_use]
    pub fn seconds(&self) -> f64 {
        self.0
    }

    /// Offline (clairvoyant) cost of a stop of length `y` — eq. (2):
    /// idle through short stops, restart immediately for long ones.
    ///
    /// # Panics
    ///
    /// Panics if `y` is negative or NaN.
    #[must_use]
    pub fn offline_cost(&self, y: f64) -> f64 {
        assert!(y >= 0.0, "stop length must be non-negative, got {y}");
        y.min(self.0)
    }

    /// Online cost of handling a stop of length `y` with idle threshold
    /// `x` — eq. (3): pay `y` if the stop ends before the threshold,
    /// otherwise idle for `x` and pay one restart (`B`).
    ///
    /// An infinite `x` encodes "never turn off" and always costs `y`.
    ///
    /// # Panics
    ///
    /// Panics if `y` or `x` is negative or NaN.
    #[must_use]
    pub fn online_cost(&self, x: f64, y: f64) -> f64 {
        assert!(y >= 0.0, "stop length must be non-negative, got {y}");
        assert!(x >= 0.0, "threshold must be non-negative, got {x}");
        if y < x {
            y
        } else {
            x + self.0
        }
    }

    /// Pointwise competitive ratio `cr(x, y)` — eq. (4). Defined as `1`
    /// when `y = 0` (both costs vanish: with `x > 0` both are `0`; the
    /// limit of `x = 0` is immaterial for distributions without an atom at
    /// zero).
    ///
    /// # Panics
    ///
    /// Panics if `y` or `x` is negative or NaN.
    #[must_use]
    pub fn competitive_ratio(&self, x: f64, y: f64) -> f64 {
        let off = self.offline_cost(y);
        if off == 0.0 {
            return 1.0;
        }
        self.online_cost(x, y) / off
    }
}

impl fmt::Display for BreakEven {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B = {} s", self.0)
    }
}

impl From<BreakEven> for f64 {
    fn from(b: BreakEven) -> f64 {
        b.seconds()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numeric::approx_eq;

    #[test]
    fn constants_match_paper() {
        assert_eq!(BreakEven::SSV.seconds(), 28.0);
        assert_eq!(BreakEven::CONVENTIONAL.seconds(), 47.0);
    }

    #[test]
    fn construction_validates() {
        assert!(BreakEven::new(28.0).is_ok());
        assert_eq!(BreakEven::new(0.0), Err(Error::InvalidBreakEven(0.0)));
        assert_eq!(BreakEven::new(-5.0), Err(Error::InvalidBreakEven(-5.0)));
        assert!(BreakEven::new(f64::INFINITY).is_err());
        assert!(BreakEven::new(f64::NAN).is_err());
    }

    #[test]
    fn offline_cost_eq2() {
        let b = BreakEven::new(28.0).unwrap();
        assert_eq!(b.offline_cost(10.0), 10.0);
        assert_eq!(b.offline_cost(28.0), 28.0);
        assert_eq!(b.offline_cost(100.0), 28.0);
        assert_eq!(b.offline_cost(0.0), 0.0);
    }

    #[test]
    fn online_cost_eq3() {
        let b = BreakEven::new(28.0).unwrap();
        // Stop ends before the threshold: pay the idle time.
        assert_eq!(b.online_cost(20.0, 10.0), 10.0);
        // Stop outlasts the threshold: pay threshold + restart.
        assert_eq!(b.online_cost(20.0, 25.0), 48.0);
        // Boundary y == x turns off (y >= x branch).
        assert_eq!(b.online_cost(20.0, 20.0), 48.0);
        // Never-turn-off (x = ∞): always pay the stop length.
        assert_eq!(b.online_cost(f64::INFINITY, 500.0), 500.0);
        // Turn-off-immediately (x = 0) pays B for any positive stop.
        assert_eq!(b.online_cost(0.0, 5.0), 28.0);
    }

    #[test]
    fn online_never_beats_offline() {
        let b = BreakEven::new(28.0).unwrap();
        for xi in 0..60 {
            for yi in 0..60 {
                let (x, y) = (xi as f64, yi as f64);
                assert!(
                    b.online_cost(x, y) >= b.offline_cost(y) - 1e-12,
                    "online < offline at x={x}, y={y}"
                );
            }
        }
    }

    #[test]
    fn det_worst_case_cr_is_two() {
        // Karlin et al.: threshold x = B has worst-case cr = 2, achieved at
        // y = B (pay B idling + B restart vs. offline B).
        let b = BreakEven::new(28.0).unwrap();
        let mut worst: f64 = 0.0;
        let mut y = 0.1;
        while y < 500.0 {
            worst = worst.max(b.competitive_ratio(28.0, y));
            y += 0.1;
        }
        assert!(approx_eq(worst, 2.0, 1e-9), "worst = {worst}");
    }

    #[test]
    fn cr_of_zero_length_stop_is_one() {
        let b = BreakEven::new(28.0).unwrap();
        assert_eq!(b.competitive_ratio(10.0, 0.0), 1.0);
    }

    #[test]
    fn cr_nev_unbounded() {
        let b = BreakEven::new(28.0).unwrap();
        // Never turning off on a very long stop: cr = y / B grows without
        // bound.
        let cr = b.competitive_ratio(f64::INFINITY, 28_000.0);
        assert!(approx_eq(cr, 1000.0, 1e-9));
    }

    #[test]
    fn display_and_from() {
        let b = BreakEven::new(47.0).unwrap();
        assert_eq!(b.to_string(), "B = 47 s");
        let f: f64 = b.into();
        assert_eq!(f, 47.0);
    }

    #[test]
    #[should_panic(expected = "must be non-negative")]
    fn offline_rejects_negative() {
        let _ = BreakEven::new(28.0).unwrap().offline_cost(-1.0);
    }

    #[test]
    #[should_panic(expected = "threshold must be non-negative")]
    fn online_rejects_negative_threshold() {
        let _ = BreakEven::new(28.0).unwrap().online_cost(-1.0, 1.0);
    }
}
