//! Trust-gated graceful degradation for the adaptive controller.
//!
//! The proposed policy's guarantee is only as good as its `(μ_B⁻, q_B⁺)`
//! estimate, and the estimate is only as good as the sensor stream feeding
//! it. [`DegradedController`] wraps [`AdaptiveController`] with a
//! three-rung trust ladder, trading expected-case optimality for
//! worst-case safety as the stream deteriorates:
//!
//! * [`TrustLevel::Full`] — healthy input: delegate to the wrapped
//!   adaptive controller (the estimated proposed policy). On a clean
//!   stream the wrapper is **bit-identical** to running
//!   [`AdaptiveController`] directly: same RNG draws, same floating-point
//!   operation order, same costs.
//! * [`TrustLevel::Degraded`] — recent anomalies or a stale estimate:
//!   fall back to DET (threshold `B`). DET needs no statistics, is
//!   deterministic, and its competitive ratio never exceeds 2; crucially
//!   it never *shuts off early* on the strength of a contaminated
//!   estimate.
//! * [`TrustLevel::Untrusted`] — the anomaly rate crossed the demotion
//!   threshold: fall back to N-Rand, whose `e/(e−1) ≈ 1.582` expected
//!   guarantee is distribution-free, so no amount of sensor garbage can
//!   degrade it. Demotion optionally clears the wrapped estimator, so
//!   statistics accumulated from the untrustworthy stream are forgotten.
//!
//! Promotion back to [`TrustLevel::Full`] is hysteretic: it requires a
//! run of [`DegradationConfig::promote_after`] consecutive valid readings,
//! by which point the (cleared) estimator has been refilled entirely with
//! post-fault data.
//!
//! Readings are classified *online*, before they can touch the estimator:
//! non-finite, negative, implausibly long (above
//! [`DegradationConfig::max_plausible_s`]), and stuck-at (more than
//! [`DegradationConfig::stuck_run`] consecutive bit-identical readings)
//! anomalies are quarantined and counted, never observed.

use crate::cost::BreakEven;
use crate::estimator::{realized_cr, AdaptiveController, ControllerState, MomentEstimator};
use crate::obs;
use crate::policy::{NRand, Policy};
use crate::Error;
use rand::RngCore;
use std::collections::VecDeque;

/// How much the controller currently trusts its sensor stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum TrustLevel {
    /// Healthy: run the estimated proposed policy.
    Full,
    /// Suspicious: run DET (threshold `B`, worst-case CR ≤ 2).
    Degraded,
    /// Compromised: run N-Rand (distribution-free `e/(e−1)` guarantee).
    Untrusted,
}

impl TrustLevel {
    /// The level's name as it appears in decision traces and reports.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Self::Full => "Full",
            Self::Degraded => "Degraded",
            Self::Untrusted => "Untrusted",
        }
    }
}

/// Per-class counts of quarantined sensor readings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AnomalyCounts {
    /// NaN or ±∞ readings.
    pub non_finite: u64,
    /// Finite but negative readings.
    pub negative: u64,
    /// Readings above the plausibility cap.
    pub implausible: u64,
    /// Excess readings in a stuck-at run.
    pub stuck: u64,
}

impl AnomalyCounts {
    /// Total quarantined readings across all classes.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.non_finite + self.negative + self.implausible + self.stuck
    }

    fn minus(&self, earlier: &Self) -> Self {
        Self {
            non_finite: self.non_finite - earlier.non_finite,
            negative: self.negative - earlier.negative,
            implausible: self.implausible - earlier.implausible,
            stuck: self.stuck - earlier.stuck,
        }
    }
}

/// Tuning knobs for the degradation ladder.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DegradationConfig {
    /// Sliding window (in readings) over which anomalies are counted.
    pub window: usize,
    /// Anomalies in the window at which trust drops to
    /// [`TrustLevel::Degraded`].
    pub degrade_at: usize,
    /// Anomalies in the window at which trust drops to
    /// [`TrustLevel::Untrusted`].
    pub demote_at: usize,
    /// Consecutive valid readings required to climb from
    /// [`TrustLevel::Untrusted`] back to [`TrustLevel::Full`].
    pub promote_after: usize,
    /// Consecutive invalid readings after which the estimate is
    /// considered stale (trust drops to at least
    /// [`TrustLevel::Degraded`] even if windowed anomaly counts have not
    /// crossed `degrade_at`).
    pub stale_after: usize,
    /// More than this many consecutive bit-identical readings are treated
    /// as a stuck sensor (the excess readings are quarantined).
    pub stuck_run: usize,
    /// Readings above this are quarantined as implausible. Default `+∞`
    /// (disabled): heavy-tailed traces legitimately contain very long
    /// stops.
    pub max_plausible_s: f64,
    /// Whether demotion to [`TrustLevel::Untrusted`] clears the wrapped
    /// estimator, forgetting statistics learned from the bad stream.
    pub reset_on_demote: bool,
    /// Whether a `drift` alarm from the streaming monitor
    /// (`obsv::monitor`) also forces at least [`TrustLevel::Degraded`]
    /// for the next [`DegradationConfig::window`] readings. Off by
    /// default, and inert unless the monitor is enabled, so clean runs
    /// stay bit-identical to the unwrapped controller.
    pub drift_degrades: bool,
}

impl Default for DegradationConfig {
    fn default() -> Self {
        Self {
            window: 200,
            degrade_at: 1,
            demote_at: 8,
            promote_after: 200,
            stale_after: 200,
            stuck_run: 8,
            max_plausible_s: f64::INFINITY,
            reset_on_demote: true,
            drift_degrades: false,
        }
    }
}

impl DegradationConfig {
    fn validate(self) -> Self {
        assert!(self.window > 0, "anomaly window must be non-empty");
        assert!(self.degrade_at > 0, "degrade_at must be positive");
        assert!(self.demote_at >= self.degrade_at, "demote_at must be >= degrade_at");
        assert!(self.promote_after > 0, "promote_after must be positive");
        assert!(self.stuck_run > 0, "stuck_run must be positive");
        assert!(
            self.max_plausible_s > 0.0 && !self.max_plausible_s.is_nan(),
            "max_plausible_s must be positive"
        );
        self
    }
}

/// Summary of a degraded-mode run over a trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegradedOutcome {
    /// Total realized online cost (idle-equivalent seconds), on the
    /// **true** stop lengths.
    pub online_cost: f64,
    /// Total offline-optimal cost, on the true stop lengths.
    pub offline_cost: f64,
    /// Realized competitive ratio (same convention as
    /// [`crate::estimator::AdaptiveOutcome::cr`]).
    pub cr: f64,
    /// Stops processed.
    pub stops: usize,
    /// Readings quarantined during the run, by class.
    pub anomalies: AnomalyCounts,
    /// Decisions made at [`TrustLevel::Full`].
    pub decisions_full: usize,
    /// Decisions made at [`TrustLevel::Degraded`].
    pub decisions_degraded: usize,
    /// Decisions made at [`TrustLevel::Untrusted`].
    pub decisions_untrusted: usize,
    /// Demotions to [`TrustLevel::Untrusted`] during the run.
    pub demotions: u64,
}

/// A full copy of a [`DegradedController`]'s mutable state — ladder
/// position, hysteresis counters, anomaly window, stuck-at tracker, and
/// the wrapped controller's state — as exported by
/// [`DegradedController::export_state`] and re-installed by
/// [`DegradedController::from_state`]. The configuration itself is not
/// carried: the restoring caller supplies it (and the restore validates
/// the state against it), matching how the batched engine re-derives
/// per-lane configuration from its own construction parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct LadderState {
    /// The wrapped adaptive controller's state.
    pub controller: ControllerState,
    /// Current trust level.
    pub level: TrustLevel,
    /// The anomaly window's classifications, oldest first
    /// (`true` = anomaly).
    pub recent: Vec<bool>,
    /// Consecutive valid readings ending at the present.
    pub clean_streak: usize,
    /// Consecutive invalid readings ending at the present.
    pub since_valid: usize,
    /// Bit pattern of the last structurally-valid reading, for stuck-at
    /// detection.
    pub last_bits: Option<u64>,
    /// Length of the current bit-identical run.
    pub run_len: usize,
    /// Cumulative quarantine counts.
    pub counts: AnomalyCounts,
    /// Demotions to [`TrustLevel::Untrusted`] since construction.
    pub demotions: u64,
    /// Readings left on a monitor-drift degradation hold.
    pub drift_holdoff: usize,
}

enum ReadingClass {
    Valid,
    NonFinite,
    Negative,
    Implausible,
    Stuck,
}

/// [`AdaptiveController`] wrapped in the trust ladder.
#[derive(Debug, Clone)]
pub struct DegradedController {
    inner: AdaptiveController,
    fallback: NRand,
    break_even: BreakEven,
    config: DegradationConfig,
    level: TrustLevel,
    /// Last `config.window` classifications (`true` = anomaly).
    recent: VecDeque<bool>,
    anomalies_in_window: usize,
    clean_streak: usize,
    since_valid: usize,
    /// Bit pattern of the last reading, for stuck-at detection.
    last_bits: Option<u64>,
    run_len: usize,
    counts: AnomalyCounts,
    demotions: u64,
    /// Readings left on a monitor-drift degradation hold
    /// ([`DegradationConfig::drift_degrades`]); `0` when clear.
    drift_holdoff: usize,
}

impl DegradedController {
    /// A degraded-mode controller whose inner estimator uses the full
    /// history, with the default [`DegradationConfig`].
    #[must_use]
    pub fn new(break_even: BreakEven) -> Self {
        Self::wrap(AdaptiveController::new(break_even), break_even)
    }

    /// Uses an inner estimator over a sliding window of the last
    /// `window` stops.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    #[must_use]
    pub fn with_estimator_window(break_even: BreakEven, window: usize) -> Self {
        Self::wrap(AdaptiveController::with_window(break_even, window), break_even)
    }

    fn wrap(inner: AdaptiveController, break_even: BreakEven) -> Self {
        Self {
            inner,
            fallback: NRand::new(break_even),
            break_even,
            config: DegradationConfig::default(),
            level: TrustLevel::Full,
            recent: VecDeque::new(),
            anomalies_in_window: 0,
            clean_streak: 0,
            since_valid: 0,
            last_bits: None,
            run_len: 0,
            counts: AnomalyCounts::default(),
            demotions: 0,
            drift_holdoff: 0,
        }
    }

    /// Requires `n` observed stops before the inner controller trusts its
    /// estimate (see [`AdaptiveController::min_history`]); returns `self`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn min_history(mut self, n: usize) -> Self {
        self.inner = self.inner.min_history(n);
        self
    }

    /// Replaces the ladder configuration; returns `self`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (empty window,
    /// `demote_at < degrade_at`, zero thresholds, non-positive
    /// plausibility cap).
    #[must_use]
    pub fn config(mut self, config: DegradationConfig) -> Self {
        self.config = config.validate();
        self
    }

    /// The current trust level.
    #[must_use]
    pub fn trust(&self) -> TrustLevel {
        self.level
    }

    /// Cumulative quarantine counts since construction.
    #[must_use]
    pub fn anomaly_counts(&self) -> AnomalyCounts {
        self.counts
    }

    /// The wrapped estimator's state.
    #[must_use]
    pub fn estimator(&self) -> &MomentEstimator {
        self.inner.estimator()
    }

    /// Exports the ladder's complete mutable state for persistence (the
    /// inverse of [`DegradedController::from_state`]).
    #[must_use]
    pub fn export_state(&self) -> LadderState {
        LadderState {
            controller: self.inner.export_state(),
            level: self.level,
            recent: self.recent.iter().copied().collect(),
            clean_streak: self.clean_streak,
            since_valid: self.since_valid,
            last_bits: self.last_bits,
            run_len: self.run_len,
            counts: self.counts,
            demotions: self.demotions,
            drift_holdoff: self.drift_holdoff,
        }
    }

    /// Reconstructs a controller from a persisted [`LadderState`] under
    /// the given configuration, validating the state against it. The
    /// windowed anomaly count is re-derived from the persisted window
    /// contents rather than stored separately, so it can never disagree.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidPersistedState`] if the anomaly window is longer
    /// than the configured window, the stuck-at tracker is inconsistent
    /// (a run length without a last reading, or vice versa), or the
    /// wrapped controller state fails
    /// [`AdaptiveController::from_state`] validation.
    ///
    /// # Panics
    ///
    /// Panics if `config` itself is inconsistent (same contract as
    /// [`DegradedController::config`]).
    pub fn from_state(
        break_even: BreakEven,
        config: DegradationConfig,
        state: &LadderState,
    ) -> Result<Self, Error> {
        let config = config.validate();
        if state.recent.len() > config.window {
            return Err(Error::InvalidPersistedState {
                reason: "anomaly window longer than configured",
            });
        }
        if state.last_bits.is_none() != (state.run_len == 0) {
            return Err(Error::InvalidPersistedState { reason: "stuck-at tracker inconsistent" });
        }
        let inner = AdaptiveController::from_state(break_even, &state.controller)?;
        let anomalies_in_window = state.recent.iter().filter(|&&a| a).count();
        Ok(Self {
            inner,
            fallback: NRand::new(break_even),
            break_even,
            config,
            level: state.level,
            recent: state.recent.iter().copied().collect(),
            anomalies_in_window,
            clean_streak: state.clean_streak,
            since_valid: state.since_valid,
            last_bits: state.last_bits,
            run_len: state.run_len,
            counts: state.counts,
            demotions: state.demotions,
            drift_holdoff: state.drift_holdoff,
        })
    }

    /// Chooses the idle threshold for the next stop according to the
    /// current trust level. At [`TrustLevel::Full`] this consumes exactly
    /// the RNG draws the wrapped [`AdaptiveController::decide`] would; at
    /// [`TrustLevel::Degraded`] it consumes none (DET is deterministic).
    pub fn decide(&self, rng: &mut dyn RngCore) -> f64 {
        match self.level {
            TrustLevel::Full => self.inner.decide(rng),
            TrustLevel::Degraded => {
                let x = self.break_even.seconds();
                // Statistics are untrusted here, so the decision event
                // carries none (DET's distribution-free guarantee is
                // CR ≤ 2; `chosen_cost_bound` is reserved for the
                // statistics-derived expected-cost bound).
                if obsv::tracer::observing() {
                    obsv::tracer::emit(obsv::TraceEvent::StopDecision {
                        vertex: "DET".into(),
                        threshold_b: x,
                        mu_b_minus: None,
                        q_b_plus: None,
                        chosen_cost_bound: None,
                    });
                }
                x
            }
            TrustLevel::Untrusted => {
                let x = self.fallback.sample_threshold(rng);
                if obsv::tracer::observing() {
                    obsv::tracer::emit(obsv::TraceEvent::StopDecision {
                        vertex: self.fallback.name().into(),
                        threshold_b: x,
                        mu_b_minus: None,
                        q_b_plus: None,
                        chosen_cost_bound: None,
                    });
                }
                x
            }
        }
    }

    /// Feeds one sensor reading through classification: a valid reading
    /// reaches the wrapped estimator, an anomalous one is quarantined and
    /// counted. Never panics, for any `f64`. Trust transitions happen
    /// here.
    pub fn observe(&mut self, reading: f64) {
        let m = obs::metrics();
        m.degraded_readings.inc();
        let class = self.classify(reading);
        match class {
            ReadingClass::Valid => {
                self.since_valid = 0;
                self.clean_streak += 1;
                self.push_recent(false);
                self.inner.observe(reading);
            }
            anomaly => {
                match anomaly {
                    ReadingClass::NonFinite => {
                        self.counts.non_finite += 1;
                        m.anomaly_non_finite.inc();
                    }
                    ReadingClass::Negative => {
                        self.counts.negative += 1;
                        m.anomaly_negative.inc();
                    }
                    ReadingClass::Implausible => {
                        self.counts.implausible += 1;
                        m.anomaly_implausible.inc();
                    }
                    ReadingClass::Stuck => {
                        self.counts.stuck += 1;
                        m.anomaly_stuck.inc();
                    }
                    ReadingClass::Valid => unreachable!("valid handled above"),
                }
                self.since_valid += 1;
                self.clean_streak = 0;
                self.push_recent(true);
            }
        }
        // Poll the streaming monitor *after* the estimator saw the reading
        // (a drift alarm raised by this very update is caught immediately)
        // and *before* the trust decision. Behind the config flag and a
        // relaxed load, so the default path is untouched.
        if self.config.drift_degrades && obsv::monitor::take_drift_pending() {
            self.drift_holdoff = self.config.window;
        }
        self.update_trust();
        self.drift_holdoff = self.drift_holdoff.saturating_sub(1);
    }

    fn classify(&mut self, reading: f64) -> ReadingClass {
        if !reading.is_finite() {
            return ReadingClass::NonFinite;
        }
        if reading < 0.0 {
            return ReadingClass::Negative;
        }
        if reading > self.config.max_plausible_s {
            return ReadingClass::Implausible;
        }
        // Stuck-at: compare exact bit patterns across structurally-valid
        // readings. A genuinely continuous sensor essentially never
        // repeats bits; a frozen register always does.
        let bits = reading.to_bits();
        if self.last_bits == Some(bits) {
            self.run_len += 1;
        } else {
            self.last_bits = Some(bits);
            self.run_len = 1;
        }
        if self.run_len > self.config.stuck_run {
            return ReadingClass::Stuck;
        }
        ReadingClass::Valid
    }

    fn push_recent(&mut self, anomaly: bool) {
        if self.recent.len() == self.config.window {
            if let Some(true) = self.recent.pop_front() {
                self.anomalies_in_window -= 1;
            }
        }
        self.recent.push_back(anomaly);
        if anomaly {
            self.anomalies_in_window += 1;
        }
    }

    fn update_trust(&mut self) {
        let before = self.level;
        let wants_untrusted = self.anomalies_in_window >= self.config.demote_at;
        let wants_degraded = self.anomalies_in_window >= self.config.degrade_at
            || self.since_valid > self.config.stale_after
            || self.drift_holdoff > 0;
        match self.level {
            TrustLevel::Untrusted => {
                // Hysteresis: only a sustained clean run re-promotes, and
                // it jumps straight to Full with the anomaly window wiped
                // (everything in it predates the clean run).
                if !wants_untrusted && self.clean_streak >= self.config.promote_after {
                    self.level = TrustLevel::Full;
                    self.recent.clear();
                    self.anomalies_in_window = 0;
                }
            }
            TrustLevel::Full | TrustLevel::Degraded => {
                if wants_untrusted {
                    self.level = TrustLevel::Untrusted;
                    self.demotions += 1;
                    self.clean_streak = 0;
                    if self.config.reset_on_demote {
                        self.inner.reset_estimator();
                    }
                } else if wants_degraded {
                    self.level = TrustLevel::Degraded;
                } else {
                    self.level = TrustLevel::Full;
                }
            }
        }
        if before != self.level {
            let m = obs::metrics();
            match (before, self.level) {
                (TrustLevel::Full, TrustLevel::Degraded) => m.trans_full_to_degraded.inc(),
                (TrustLevel::Degraded, TrustLevel::Full) => m.trans_degraded_to_full.inc(),
                (_, TrustLevel::Untrusted) => m.trans_demotions.inc(),
                (TrustLevel::Untrusted, _) => m.trans_promotions.inc(),
                _ => unreachable!("no other transition exists in the ladder"),
            }
            if obsv::tracer::observing() {
                obsv::tracer::emit(obsv::TraceEvent::LadderTransition {
                    from: before.name().to_string(),
                    to: self.level.name().to_string(),
                    anomalies_in_window: self.anomalies_in_window as u64,
                    clean_streak: self.clean_streak as u64,
                });
            }
        }
    }

    /// Runs the online loop with a perfect sensor (`observed == stops`).
    /// On clean input this is bit-identical to
    /// [`AdaptiveController::run`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::EmptyTrace`] if `stops` is empty, or
    /// [`Error::InvalidStop`] if a *true* stop length is negative or
    /// non-finite.
    pub fn run(&mut self, stops: &[f64], rng: &mut dyn RngCore) -> Result<DegradedOutcome, Error> {
        self.run_observed(stops, stops, rng)
    }

    /// Runs the online loop: for each stop, decide a threshold, pay the
    /// cost on the **true** length `stops[i]`, then feed the **sensor
    /// reading** `observed[i]` through classification into the estimator.
    ///
    /// `stops` is ground truth (what the vehicle physically did) and must
    /// be clean; `observed` is what the sensor claimed and may be
    /// arbitrary garbage.
    ///
    /// # Errors
    ///
    /// Returns [`Error::EmptyTrace`] if `stops` is empty,
    /// [`Error::MismatchedLengths`] if the slices differ in length, or
    /// [`Error::InvalidStop`] if a *true* stop length is negative or
    /// non-finite.
    pub fn run_observed(
        &mut self,
        stops: &[f64],
        observed: &[f64],
        rng: &mut dyn RngCore,
    ) -> Result<DegradedOutcome, Error> {
        if stops.is_empty() {
            return Err(Error::EmptyTrace);
        }
        if stops.len() != observed.len() {
            return Err(Error::MismatchedLengths {
                stops: stops.len(),
                observations: observed.len(),
            });
        }
        if let Some(&bad) = stops.iter().find(|y| !(y.is_finite() && **y >= 0.0)) {
            return Err(Error::InvalidStop { bits: bad.to_bits() });
        }
        let counts_before = self.counts;
        let demotions_before = self.demotions;
        let b = self.break_even;
        let mut online = 0.0;
        let mut offline = 0.0;
        let mut decisions = [0usize; 3];
        for (i, (&y, &reading)) in stops.iter().zip(observed).enumerate() {
            obsv::tracer::begin_stop(i as u64);
            let x = self.decide(rng);
            decisions[match self.level {
                TrustLevel::Full => 0,
                TrustLevel::Degraded => 1,
                TrustLevel::Untrusted => 2,
            }] += 1;
            let cost = if x.is_infinite() { y } else { b.online_cost(x, y) };
            online += cost;
            let off = b.offline_cost(y);
            offline += off;
            if obsv::tracer::observing() {
                obsv::tracer::emit(obsv::TraceEvent::StopCost {
                    threshold_b: x,
                    stop_s: y,
                    online_s: cost,
                    offline_s: off,
                    restarted: !x.is_infinite() && y >= x,
                });
            }
            obsv::risk::record_current(cost, off);
            self.observe(reading);
        }
        let cr = realized_cr(online, offline);
        obs::metrics().record_cr(cr);
        Ok(DegradedOutcome {
            online_cost: online,
            offline_cost: offline,
            cr,
            stops: stops.len(),
            anomalies: self.counts.minus(&counts_before),
            decisions_full: decisions[0],
            decisions_degraded: decisions[1],
            decisions_untrusted: decisions[2],
            demotions: self.demotions - demotions_before,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::e_ratio;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use stopmodel::uniform01;

    fn b28() -> BreakEven {
        BreakEven::new(28.0).unwrap()
    }

    /// Jittered tiny stops: continuous values, so stuck detection never
    /// fires on clean data.
    fn tiny_stops(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| 0.2 + 0.1 * uniform01(&mut rng)).collect()
    }

    fn mixed_stops(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let u = uniform01(&mut rng);
                if u < 0.8 {
                    40.0 * uniform01(&mut rng)
                } else {
                    30.0 + 300.0 * uniform01(&mut rng)
                }
            })
            .collect()
    }

    #[test]
    fn clean_run_is_bit_identical_to_adaptive() {
        let stops = mixed_stops(4000, 1);
        let mut plain = AdaptiveController::with_window(b28(), 100);
        let mut wrapped = DegradedController::with_estimator_window(b28(), 100);
        let mut rng_a = StdRng::seed_from_u64(99);
        let mut rng_b = StdRng::seed_from_u64(99);
        let a = plain.run(&stops, &mut rng_a).unwrap();
        let d = wrapped.run(&stops, &mut rng_b).unwrap();
        assert_eq!(a.online_cost.to_bits(), d.online_cost.to_bits());
        assert_eq!(a.offline_cost.to_bits(), d.offline_cost.to_bits());
        assert_eq!(a.cr.to_bits(), d.cr.to_bits());
        assert_eq!(d.decisions_full, stops.len());
        assert_eq!(d.decisions_degraded + d.decisions_untrusted, 0);
        assert_eq!(d.anomalies.total(), 0);
        assert_eq!(wrapped.trust(), TrustLevel::Full);
    }

    #[test]
    fn clean_run_is_bit_identical_with_drift_flag_off() {
        let stops = mixed_stops(3000, 7);
        let mut plain = AdaptiveController::with_window(b28(), 100);
        let mut off = DegradedController::with_estimator_window(b28(), 100)
            .config(DegradationConfig { drift_degrades: false, ..DegradationConfig::default() });
        // The flag is also inert while the monitor is disabled (the
        // default process state): no poll, no holdoff, no divergence.
        let mut on = DegradedController::with_estimator_window(b28(), 100)
            .config(DegradationConfig { drift_degrades: true, ..DegradationConfig::default() });
        let mut rng_a = StdRng::seed_from_u64(41);
        let mut rng_b = StdRng::seed_from_u64(41);
        let mut rng_c = StdRng::seed_from_u64(41);
        let a = plain.run(&stops, &mut rng_a).unwrap();
        let b = off.run(&stops, &mut rng_b).unwrap();
        let c = on.run(&stops, &mut rng_c).unwrap();
        assert_eq!(a.online_cost.to_bits(), b.online_cost.to_bits());
        assert_eq!(a.cr.to_bits(), b.cr.to_bits());
        assert_eq!(a.online_cost.to_bits(), c.online_cost.to_bits());
        assert_eq!(a.cr.to_bits(), c.cr.to_bits());
        assert_eq!(b.decisions_full, stops.len());
        assert_eq!(c.decisions_full, stops.len());
    }

    #[test]
    fn drift_holdoff_forces_degraded_until_it_expires() {
        // Exercise the holdoff path directly (the monitor-driven set is
        // integration-tested with the process-global monitor): a pending
        // holdoff forces Degraded on otherwise clean readings, then
        // expires after `window` readings.
        let mut ctl = DegradedController::new(b28()).config(DegradationConfig {
            window: 5,
            drift_degrades: true,
            ..DegradationConfig::default()
        });
        for y in [5.0, 9.0, 3.5] {
            ctl.observe(y);
        }
        assert_eq!(ctl.trust(), TrustLevel::Full);
        ctl.drift_holdoff = 3;
        for i in 0..3 {
            ctl.observe(4.0 + 0.1 * f64::from(i));
            assert_eq!(ctl.trust(), TrustLevel::Degraded, "holdoff reading {i}");
        }
        ctl.observe(6.5);
        assert_eq!(ctl.trust(), TrustLevel::Full, "holdoff expired");
    }

    #[test]
    fn single_anomaly_degrades_then_recovers() {
        let mut ctl = DegradedController::new(b28())
            .config(DegradationConfig { window: 10, ..DegradationConfig::default() });
        for y in [5.0, 9.0, 3.5] {
            ctl.observe(y);
        }
        assert_eq!(ctl.trust(), TrustLevel::Full);
        ctl.observe(f64::NAN);
        assert_eq!(ctl.trust(), TrustLevel::Degraded);
        // DET while degraded: the threshold is exactly B, no RNG draws.
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(ctl.decide(&mut rng), 28.0);
        // The anomaly ages out of the 10-reading window.
        for i in 0..10 {
            ctl.observe(4.0 + i as f64 * 0.1);
        }
        assert_eq!(ctl.trust(), TrustLevel::Full);
        assert_eq!(ctl.anomaly_counts().non_finite, 1);
    }

    #[test]
    fn fault_burst_demotes_and_hysteresis_repromotes() {
        let cfg = DegradationConfig {
            window: 50,
            degrade_at: 1,
            demote_at: 4,
            promote_after: 60,
            ..DegradationConfig::default()
        };
        let mut ctl = DegradedController::new(b28()).config(cfg);
        for y in [5.0, 9.0, 3.5, 7.0, 2.0] {
            ctl.observe(y);
        }
        assert!(!ctl.estimator().is_empty());
        // Burst of garbage → Untrusted, estimator wiped.
        for _ in 0..4 {
            ctl.observe(f64::NAN);
        }
        assert_eq!(ctl.trust(), TrustLevel::Untrusted);
        assert!(ctl.estimator().is_empty(), "demotion must forget the estimate");
        // Untrusted decisions are N-Rand samples: randomized in (0, B].
        let mut rng = StdRng::seed_from_u64(2);
        let draws: Vec<f64> = (0..20).map(|_| ctl.decide(&mut rng)).collect();
        assert!(draws.iter().all(|&x| (0.0..=28.0).contains(&x)));
        assert!(draws.windows(2).any(|w| w[0] != w[1]), "DET would be constant");
        // 59 clean readings: still below the promotion threshold.
        for i in 0..59 {
            ctl.observe(4.0 + i as f64 * 0.01);
        }
        assert_eq!(ctl.trust(), TrustLevel::Untrusted, "hysteresis holds");
        ctl.observe(3.0);
        assert_eq!(ctl.trust(), TrustLevel::Full, "sustained clean run re-promotes");
        // The refilled estimator contains exactly the post-fault readings.
        assert_eq!(ctl.estimator().len(), 60);
    }

    #[test]
    fn stuck_and_implausible_classes_quarantined() {
        let cfg = DegradationConfig {
            stuck_run: 3,
            max_plausible_s: 3600.0,
            // Keep the ladder out of the way: only classification is
            // under test, and a demotion would wipe the estimator.
            demote_at: 100,
            ..DegradationConfig::default()
        };
        let mut ctl = DegradedController::new(b28()).config(cfg);
        for _ in 0..10 {
            ctl.observe(900.0);
        }
        ctl.observe(40_000.0);
        ctl.observe(-5.0);
        let counts = ctl.anomaly_counts();
        assert_eq!(counts.stuck, 7, "first 3 of the frozen run pass, the rest quarantine");
        assert_eq!(counts.implausible, 1);
        assert_eq!(counts.negative, 1);
        assert_eq!(counts.total(), 9);
        assert_eq!(ctl.estimator().len(), 3);
    }

    #[test]
    fn hundred_percent_dropout_stays_within_nrand_bound() {
        // Every reading lost (NaN): the ladder must pin Untrusted and the
        // realized CR on an adversarial tiny-stop trace must stay within
        // the distribution-free N-Rand guarantee.
        let stops = tiny_stops(150_000, 7);
        let observed = vec![f64::NAN; stops.len()];
        let mut ctl = DegradedController::new(b28());
        let mut rng = StdRng::seed_from_u64(11);
        let out = ctl.run_observed(&stops, &observed, &mut rng).unwrap();
        assert_eq!(out.anomalies.non_finite as usize, stops.len());
        assert!(out.decisions_untrusted > stops.len() - 300, "ladder should pin Untrusted");
        assert!(out.cr <= e_ratio() + 0.05, "realized CR {} vs bound {}", out.cr, e_ratio() + 0.05);
        assert_eq!(ctl.trust(), TrustLevel::Untrusted);
    }

    #[test]
    fn run_observed_validates_inputs() {
        let mut ctl = DegradedController::new(b28());
        let mut rng = StdRng::seed_from_u64(3);
        assert!(matches!(ctl.run_observed(&[], &[], &mut rng), Err(Error::EmptyTrace)));
        assert!(matches!(
            ctl.run_observed(&[1.0, 2.0], &[1.0], &mut rng),
            Err(Error::MismatchedLengths { stops: 2, observations: 1 })
        ));
        assert!(matches!(
            ctl.run_observed(&[1.0, f64::NAN], &[1.0, 2.0], &mut rng),
            Err(Error::InvalidStop { .. })
        ));
        // Garbage *readings* are fine — that is the whole point.
        let out = ctl.run_observed(&[1.0, 2.0], &[f64::NAN, -3.0], &mut rng).unwrap();
        assert_eq!(out.anomalies.non_finite, 1);
        assert_eq!(out.anomalies.negative, 1);
    }

    #[test]
    fn ladder_state_roundtrip_mid_handoff() {
        // Freeze the ladder mid-demotion-recovery: Untrusted with a
        // partial clean streak, then check a restored controller evolves
        // identically to the original.
        let cfg = DegradationConfig {
            window: 20,
            degrade_at: 1,
            demote_at: 3,
            promote_after: 10,
            ..DegradationConfig::default()
        };
        let mut ctl = DegradedController::new(b28()).config(cfg);
        for y in [5.0, 9.0, 3.5] {
            ctl.observe(y);
        }
        for _ in 0..3 {
            ctl.observe(f64::NAN);
        }
        for i in 0..6 {
            ctl.observe(4.0 + 0.01 * f64::from(i));
        }
        assert_eq!(ctl.trust(), TrustLevel::Untrusted, "mid-hysteresis");
        let state = ctl.export_state();
        let mut restored = DegradedController::from_state(b28(), cfg, &state).unwrap();
        assert_eq!(restored.export_state(), state);
        assert_eq!(restored.trust(), ctl.trust());
        // Identical evolution from the cut: same promotions, decisions,
        // and counters.
        let mut rng_a = StdRng::seed_from_u64(17);
        let mut rng_b = StdRng::seed_from_u64(17);
        for i in 0..30 {
            let y = 4.0 + 0.02 * f64::from(i);
            assert_eq!(ctl.decide(&mut rng_a).to_bits(), restored.decide(&mut rng_b).to_bits());
            ctl.observe(y);
            restored.observe(y);
        }
        assert_eq!(ctl.export_state(), restored.export_state());
        assert_eq!(ctl.trust(), TrustLevel::Full, "both re-promoted in lockstep");
    }

    #[test]
    fn ladder_from_state_rejects_inconsistencies() {
        let cfg = DegradationConfig { window: 5, ..DegradationConfig::default() };
        let mut ctl = DegradedController::new(b28()).config(cfg);
        for y in [5.0, 9.0] {
            ctl.observe(y);
        }
        let good = ctl.export_state();
        assert!(matches!(
            DegradedController::from_state(
                b28(),
                cfg,
                &LadderState { recent: vec![false; 6], ..good.clone() }
            ),
            Err(Error::InvalidPersistedState { .. })
        ));
        assert!(matches!(
            DegradedController::from_state(
                b28(),
                cfg,
                &LadderState { last_bits: None, run_len: 2, ..good.clone() }
            ),
            Err(Error::InvalidPersistedState { .. })
        ));
        assert!(DegradedController::from_state(b28(), cfg, &good).is_ok());
    }

    #[test]
    fn config_validation_panics_on_nonsense() {
        let bad = DegradationConfig { demote_at: 1, degrade_at: 5, ..DegradationConfig::default() };
        let result = std::panic::catch_unwind(|| DegradedController::new(b28()).config(bad));
        assert!(result.is_err());
    }
}
