//! Crate-internal observability handles, registered once against the
//! process-wide [`obsv::global`] registry.
//!
//! Instrumentation is free unless a harness binary enables the registry:
//! every recording call on the disabled global registry is one relaxed
//! atomic load (plus one `OnceLock` acquire for the handle bundle), which
//! the criterion naive-vs-summary groups confirm is below noise.

use crate::constrained::StrategyChoice;
use obsv::{Counter, Gauge, Histogram, Timer};
use std::sync::OnceLock;

/// Bucket bounds (seconds) for decision thresholds: `[0, B]` with the
/// paper's break-evens at 28 s and 47 s.
const THRESHOLD_BOUNDS_S: [f64; 9] = [0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 30.0, 50.0, 100.0];

/// Bucket bounds for realized competitive ratios: 1 is perfect, e/(e−1) ≈
/// 1.582 is the distribution-free guarantee, 2 is DET's worst case.
const CR_BOUNDS: [f64; 9] = [1.0, 1.1, 1.25, 1.5, 1.582, 1.7, 2.0, 3.0, 5.0];

pub(crate) struct Metrics {
    // parallel runtime
    pub parallel_calls: Counter,
    pub parallel_serial_calls: Counter,
    pub parallel_items: Counter,
    pub parallel_chunks: Counter,
    pub parallel_busy_micros: Counter,
    pub parallel_chunk_seconds: Timer,
    pub parallel_threads: Gauge,
    pub parallel_utilization: Gauge,
    // adaptive estimator / controller
    pub observations_accepted: Counter,
    pub observations_rejected: Counter,
    pub decisions_cold_start: Counter,
    pub decide_seconds: Timer,
    pub threshold_s: Histogram,
    pub realized_cr: Histogram,
    policy_det: Counter,
    policy_toi: Counter,
    policy_b_det: Counter,
    policy_n_rand: Counter,
    // batched decision engine (per-shard amortized flushes)
    pub batch_shards: Counter,
    pub batch_vehicles: Counter,
    pub batch_decisions: Counter,
    // degradation ladder
    pub degraded_readings: Counter,
    pub anomaly_non_finite: Counter,
    pub anomaly_negative: Counter,
    pub anomaly_implausible: Counter,
    pub anomaly_stuck: Counter,
    pub trans_full_to_degraded: Counter,
    pub trans_degraded_to_full: Counter,
    pub trans_demotions: Counter,
    pub trans_promotions: Counter,
}

impl Metrics {
    /// Counts which of the four-vertex policies the adaptive controller
    /// selected for a decision.
    pub fn count_choice(&self, choice: StrategyChoice) {
        match choice {
            StrategyChoice::Det => self.policy_det.inc(),
            StrategyChoice::Toi => self.policy_toi.inc(),
            StrategyChoice::BDet { .. } => self.policy_b_det.inc(),
            StrategyChoice::NRand => self.policy_n_rand.inc(),
        }
    }

    /// Records a realized competitive ratio (skipping the degenerate `+∞`
    /// convention, which would pin the histogram's fixed-point sum).
    pub fn record_cr(&self, cr: f64) {
        if cr.is_finite() {
            self.realized_cr.record(cr);
        }
    }

    /// Bulk flush of one batched shard's worth of decisions: shard/lane
    /// counters plus the same `skirental.policy.*` /
    /// `skirental.estimator.*` tallies the scalar path increments one
    /// stop at a time — so dashboards see identical totals whichever
    /// engine served the fleet.
    pub fn flush_batch_shard(
        &self,
        vehicles: u64,
        decisions: u64,
        observations: u64,
        tally: &crate::batch::VertexTally,
    ) {
        self.batch_shards.inc();
        self.batch_vehicles.add(vehicles);
        self.batch_decisions.add(decisions);
        self.observations_accepted.add(observations);
        self.decisions_cold_start.add(tally.cold_start);
        self.policy_det.add(tally.det);
        self.policy_toi.add(tally.toi);
        self.policy_b_det.add(tally.b_det);
        self.policy_n_rand.add(tally.n_rand);
    }
}

static METRICS: OnceLock<Metrics> = OnceLock::new();

pub(crate) fn metrics() -> &'static Metrics {
    METRICS.get_or_init(|| {
        let r = obsv::global();
        Metrics {
            parallel_calls: r.counter("skirental.parallel.calls"),
            parallel_serial_calls: r.counter("skirental.parallel.serial_calls"),
            parallel_items: r.counter("skirental.parallel.items"),
            parallel_chunks: r.counter("skirental.parallel.chunks"),
            parallel_busy_micros: r.counter("skirental.parallel.busy_micros"),
            parallel_chunk_seconds: r.timer("skirental.parallel.chunk_seconds"),
            parallel_threads: r.gauge("skirental.parallel.threads"),
            parallel_utilization: r.gauge("skirental.parallel.utilization"),
            observations_accepted: r.counter("skirental.estimator.observations_accepted"),
            observations_rejected: r.counter("skirental.estimator.observations_rejected"),
            decisions_cold_start: r.counter("skirental.estimator.decisions_cold_start"),
            decide_seconds: r.timer("skirental.estimator.decide_seconds"),
            threshold_s: r.histogram("skirental.estimator.threshold_s", &THRESHOLD_BOUNDS_S),
            realized_cr: r.histogram("skirental.realized_cr", &CR_BOUNDS),
            policy_det: r.counter("skirental.policy.det"),
            policy_toi: r.counter("skirental.policy.toi"),
            policy_b_det: r.counter("skirental.policy.b_det"),
            policy_n_rand: r.counter("skirental.policy.n_rand"),
            batch_shards: r.counter("skirental.batch.shards"),
            batch_vehicles: r.counter("skirental.batch.vehicles"),
            batch_decisions: r.counter("skirental.batch.decisions"),
            degraded_readings: r.counter("skirental.degraded.readings"),
            anomaly_non_finite: r.counter("skirental.degraded.anomalies.non_finite"),
            anomaly_negative: r.counter("skirental.degraded.anomalies.negative"),
            anomaly_implausible: r.counter("skirental.degraded.anomalies.implausible"),
            anomaly_stuck: r.counter("skirental.degraded.anomalies.stuck"),
            trans_full_to_degraded: r.counter("skirental.degraded.transitions.full_to_degraded"),
            trans_degraded_to_full: r.counter("skirental.degraded.transitions.degraded_to_full"),
            trans_demotions: r.counter("skirental.degraded.transitions.demotions"),
            trans_promotions: r.counter("skirental.degraded.transitions.promotions"),
        }
    })
}
