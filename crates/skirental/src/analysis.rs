//! Evaluating policies on stop traces and distributions.
//!
//! The paper's experimental metric (eq. (5)) is the *expected* competitive
//! ratio: the ratio of the policy's expected total cost to the offline
//! optimum's total cost over a vehicle's stops. This module provides that
//! empirical CR, plus Monte-Carlo simulation (drawing an actual threshold
//! per stop, as a real controller would) and analytic expectations under a
//! continuous or atomic stop-length distribution.

use crate::policy::Policy;
use crate::summary::StopSummary;
use crate::Error;
use numeric::quadrature::integrate;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use stopmodel::dist::{Discrete, StopDistribution};

/// Sum of the policy's per-stop expected costs over a trace.
///
/// # Errors
///
/// Returns [`Error::EmptyTrace`] if `stops` is empty.
///
/// # Panics
///
/// Panics if a stop is negative or NaN.
pub fn total_expected_cost(policy: &dyn Policy, stops: &[f64]) -> Result<f64, Error> {
    if stops.is_empty() {
        return Err(Error::EmptyTrace);
    }
    Ok(stops.iter().map(|&y| policy.expected_cost(y)).sum())
}

/// Sum of offline-optimal costs over a trace.
///
/// # Errors
///
/// Returns [`Error::EmptyTrace`] if `stops` is empty.
pub fn total_offline_cost(policy: &dyn Policy, stops: &[f64]) -> Result<f64, Error> {
    if stops.is_empty() {
        return Err(Error::EmptyTrace);
    }
    let b = policy.break_even();
    Ok(stops.iter().map(|&y| b.offline_cost(y)).sum())
}

/// Empirical expected competitive ratio of eq. (5):
/// `Σᵢ E_x[cost_online(x, yᵢ)] / Σᵢ cost_offline(yᵢ)`.
///
/// Returns `1` when the offline total is zero (every stop has zero
/// length — neither algorithm pays anything).
///
/// # Errors
///
/// Returns [`Error::EmptyTrace`] if `stops` is empty.
///
/// # Example
///
/// ```
/// use skirental::{analysis::empirical_cr, policy::Det, BreakEven};
///
/// let det = Det::new(BreakEven::new(28.0)?);
/// // One short stop (idled through, cost = offline) and one long stop
/// // (costs 2B vs offline B).
/// let cr = empirical_cr(&det, &[10.0, 100.0])?;
/// assert!((cr - (10.0 + 56.0) / (10.0 + 28.0)).abs() < 1e-12);
/// # Ok::<(), skirental::Error>(())
/// ```
pub fn empirical_cr(policy: &dyn Policy, stops: &[f64]) -> Result<f64, Error> {
    Ok(empirical_cr_with(policy, &StopSummary::new(stops)?))
}

/// [`empirical_cr`] on a precomputed [`StopSummary`] — the fast path the
/// fleet machinery uses: the trace is sorted once per vehicle and every
/// strategy's CR is then closed-form arithmetic on the prefix sums
/// (via [`Policy::total_cost_on`]), O(log n) per policy instead of O(n).
///
/// Returns `1` when the offline total is zero (every stop has zero
/// length — neither algorithm pays anything).
#[must_use]
pub fn empirical_cr_with(policy: &dyn Policy, summary: &StopSummary) -> f64 {
    let offline = summary.offline_total(policy.break_even());
    if offline == 0.0 {
        return 1.0;
    }
    policy.total_cost_on(summary) / offline
}

/// Simulates the policy on a trace by drawing one concrete threshold per
/// stop (what a deployed stop-start controller does) and returns the total
/// realized cost.
///
/// For deterministic policies this equals [`total_expected_cost`]; for
/// randomized policies it converges to it over many stops.
///
/// # Errors
///
/// Returns [`Error::EmptyTrace`] if `stops` is empty.
pub fn simulate_total_cost(
    policy: &dyn Policy,
    stops: &[f64],
    rng: &mut dyn RngCore,
) -> Result<f64, Error> {
    if stops.is_empty() {
        return Err(Error::EmptyTrace);
    }
    let b = policy.break_even();
    let mut total = 0.0;
    for &y in stops {
        let x = policy.sample_threshold(rng);
        total += if x.is_infinite() { y } else { b.online_cost(x, y) };
    }
    Ok(total)
}

/// Simulated competitive ratio: realized total cost over offline total.
/// Returns `1` when the offline total is zero.
///
/// # Errors
///
/// Returns [`Error::EmptyTrace`] if `stops` is empty.
pub fn simulate_cr(
    policy: &dyn Policy,
    stops: &[f64],
    rng: &mut dyn RngCore,
) -> Result<f64, Error> {
    let online = simulate_total_cost(policy, stops, rng)?;
    let offline = total_offline_cost(policy, stops)?;
    if offline == 0.0 {
        return Ok(1.0);
    }
    Ok(online / offline)
}

/// Analytic expected cost of a policy under a *continuous* stop-length
/// distribution: `∫ E_x[cost(x, y)] q(y) dy`.
///
/// Exploits that every policy in this crate draws thresholds from `[0, B]`
/// (so its expected cost is constant for `y ≥ B`), except NEV whose cost is
/// the identity (handled via the distribution's mean). The integral over
/// `[0, B]` uses adaptive quadrature with the distribution's density.
///
/// For atomic distributions use [`expected_cost_under_discrete`].
#[must_use]
pub fn expected_cost_under<D: StopDistribution + ?Sized>(policy: &dyn Policy, dist: &D) -> f64 {
    let b = policy.break_even().seconds();
    if policy.threshold_cdf(b) < 1.0 - 1e-12 {
        // Unbounded threshold ⇒ NEV: cost equals the stop length.
        return dist.mean();
    }
    let body = integrate(|y| policy.expected_cost(y) * dist.pdf(y), 0.0, b, 1e-10);
    // For y ≥ B every threshold in [0, B] has fired: cost is constant.
    body + policy.expected_cost(b) * dist.tail_prob(b)
}

/// Analytic expected cost of a policy under an atomic distribution:
/// `Σ p·E_x[cost(x, v)]`.
#[must_use]
pub fn expected_cost_under_discrete(policy: &dyn Policy, dist: &Discrete) -> f64 {
    dist.atoms().iter().map(|&(v, p)| p * policy.expected_cost(v)).sum()
}

/// A percentile-bootstrap confidence interval for the empirical CR.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrConfidenceInterval {
    /// The point estimate ([`empirical_cr`] on the full trace).
    pub point: f64,
    /// Lower bound at the requested confidence.
    pub lo: f64,
    /// Upper bound at the requested confidence.
    pub hi: f64,
    /// Confidence level used (e.g. `0.95`).
    pub confidence: f64,
}

/// Percentile-bootstrap confidence interval for a policy's empirical CR
/// on a stop trace: resample the stops with replacement `resamples`
/// times, recompute the CR of each pseudo-trace, and take the matching
/// quantiles.
///
/// This quantifies how much a week of data pins down a vehicle's CR —
/// the spread the paper's per-vehicle Figure-4 points carry implicitly.
///
/// # Errors
///
/// Returns [`Error::EmptyTrace`] if `stops` is empty.
///
/// # Panics
///
/// Panics if `resamples == 0` or `confidence` is outside `(0, 1)`.
pub fn bootstrap_cr_ci(
    policy: &dyn Policy,
    stops: &[f64],
    resamples: usize,
    confidence: f64,
    rng: &mut dyn RngCore,
) -> Result<CrConfidenceInterval, Error> {
    assert!(resamples > 0, "need at least one resample");
    assert!(confidence > 0.0 && confidence < 1.0, "confidence must be in (0,1), got {confidence}");
    let point = empirical_cr(policy, stops)?;
    // Each stop's (online, offline) contribution is the same in every
    // resample, so compute the pair once per stop and let each resample
    // sum n table lookups instead of n policy evaluations.
    let pairs = cost_pairs(policy, stops);
    let mut crs = Vec::with_capacity(resamples);
    for _ in 0..resamples {
        crs.push(resample_cr(&pairs, rng));
    }
    crs.sort_by(f64::total_cmp);
    let alpha = (1.0 - confidence) / 2.0;
    Ok(CrConfidenceInterval {
        point,
        lo: numeric::stats::quantile_sorted(&crs, alpha),
        hi: numeric::stats::quantile_sorted(&crs, 1.0 - alpha),
        confidence,
    })
}

/// Multithreaded percentile bootstrap: identical statistics to
/// [`bootstrap_cr_ci`] but resamples are distributed over `threads`
/// scoped threads via [`crate::parallel::chunked_map`].
///
/// A per-resample seed is drawn from `rng` up front, so the result is
/// **bit-identical for every thread count** (including `threads = 1`);
/// the resample stream differs from the serial [`bootstrap_cr_ci`], which
/// draws indices directly from `rng`.
///
/// # Errors
///
/// Returns [`Error::EmptyTrace`] if `stops` is empty.
///
/// # Panics
///
/// Panics if `resamples == 0`, `threads == 0`, or `confidence` is
/// outside `(0, 1)`.
pub fn bootstrap_cr_ci_parallel(
    policy: &dyn Policy,
    stops: &[f64],
    resamples: usize,
    confidence: f64,
    rng: &mut dyn RngCore,
    threads: usize,
) -> Result<CrConfidenceInterval, Error> {
    assert!(resamples > 0, "need at least one resample");
    assert!(confidence > 0.0 && confidence < 1.0, "confidence must be in (0,1), got {confidence}");
    let point = empirical_cr(policy, stops)?;
    let pairs = cost_pairs(policy, stops);
    // Seeds are drawn serially so each resample's randomness depends only
    // on its index, never on which thread runs it.
    let seeds: Vec<u64> = (0..resamples).map(|_| rng.next_u64()).collect();
    let mut crs = crate::parallel::chunked_map(&seeds, threads, |_, &seed| {
        let mut local = StdRng::seed_from_u64(seed);
        resample_cr(&pairs, &mut local)
    });
    crs.sort_by(f64::total_cmp);
    let alpha = (1.0 - confidence) / 2.0;
    Ok(CrConfidenceInterval {
        point,
        lo: numeric::stats::quantile_sorted(&crs, alpha),
        hi: numeric::stats::quantile_sorted(&crs, 1.0 - alpha),
        confidence,
    })
}

/// Per-stop `(expected online, offline)` cost pairs in input order.
fn cost_pairs(policy: &dyn Policy, stops: &[f64]) -> Vec<(f64, f64)> {
    let b = policy.break_even();
    stops.iter().map(|&y| (policy.expected_cost(y), b.offline_cost(y))).collect()
}

/// One bootstrap resample: draw `n` stops with replacement and return the
/// pseudo-trace's CR from the precomputed cost pairs.
fn resample_cr(pairs: &[(f64, f64)], rng: &mut dyn RngCore) -> f64 {
    let n = pairs.len();
    let (mut online, mut offline) = (0.0f64, 0.0f64);
    for _ in 0..n {
        let idx = (stopmodel::uniform01(rng) * n as f64) as usize;
        let (on, off) = pairs[idx.min(n - 1)];
        online += on;
        offline += off;
    }
    if offline == 0.0 {
        1.0
    } else {
        online / offline
    }
}

/// Expected competitive ratio of a policy under a distribution (the
/// numerator analytic, the denominator `μ_B⁻ + q_B⁺·B` from eq. (13)).
/// Returns `1` when the expected offline cost is zero.
#[must_use]
pub fn expected_cr_under<D: StopDistribution + ?Sized>(policy: &dyn Policy, dist: &D) -> f64 {
    let b = policy.break_even().seconds();
    let offline = dist.partial_mean(b) + dist.tail_prob(b) * b;
    if offline == 0.0 {
        return 1.0;
    }
    expected_cost_under(policy, dist) / offline
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{BDet, Det, MomRand, NRand, Nev, Toi};
    use crate::{e_ratio, BreakEven};
    use numeric::approx_eq;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use stopmodel::dist::{Exponential, LogNormal};

    fn b28() -> BreakEven {
        BreakEven::new(28.0).unwrap()
    }

    #[test]
    fn totals_and_cr() {
        let det = Det::new(b28());
        let stops = [10.0, 100.0];
        assert_eq!(total_expected_cost(&det, &stops).unwrap(), 66.0);
        assert_eq!(total_offline_cost(&det, &stops).unwrap(), 38.0);
        assert!(approx_eq(empirical_cr(&det, &stops).unwrap(), 66.0 / 38.0, 1e-12));
    }

    #[test]
    fn empty_trace_errors() {
        let det = Det::new(b28());
        assert_eq!(total_expected_cost(&det, &[]), Err(Error::EmptyTrace));
        assert_eq!(empirical_cr(&det, &[]), Err(Error::EmptyTrace));
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(simulate_total_cost(&det, &[], &mut rng), Err(Error::EmptyTrace));
    }

    #[test]
    fn zero_length_trace_cr_is_one() {
        let det = Det::new(b28());
        assert_eq!(empirical_cr(&det, &[0.0, 0.0]).unwrap(), 1.0);
    }

    #[test]
    fn nev_cr_equals_mean_over_offline() {
        let nev = Nev::new(b28());
        let stops = [10.0, 100.0];
        // NEV pays 110 total; offline pays 38.
        assert!(approx_eq(empirical_cr(&nev, &stops).unwrap(), 110.0 / 38.0, 1e-12));
    }

    #[test]
    fn simulation_matches_expectation_for_deterministic() {
        let p = BDet::new(b28(), 12.0).unwrap();
        let stops = [3.0, 15.0, 40.0, 11.9, 12.0];
        let mut rng = StdRng::seed_from_u64(1);
        let sim = simulate_total_cost(&p, &stops, &mut rng).unwrap();
        let exp = total_expected_cost(&p, &stops).unwrap();
        assert!(approx_eq(sim, exp, 1e-12));
    }

    #[test]
    fn simulation_converges_for_randomized() {
        let p = NRand::new(b28());
        let stops: Vec<f64> = (0..20_000).map(|i| (i % 80) as f64).collect();
        let mut rng = StdRng::seed_from_u64(2);
        let sim = simulate_cr(&p, &stops, &mut rng).unwrap();
        let exp = empirical_cr(&p, &stops).unwrap();
        assert!((sim - exp).abs() < 0.01, "sim {sim} vs expected {exp}");
        // And the N-Rand CR on any trace is exactly e/(e−1).
        assert!(approx_eq(exp, e_ratio(), 1e-12));
    }

    #[test]
    fn nev_simulation_handles_infinite_threshold() {
        let p = Nev::new(b28());
        let mut rng = StdRng::seed_from_u64(3);
        let sim = simulate_total_cost(&p, &[50.0, 10.0], &mut rng).unwrap();
        assert_eq!(sim, 60.0);
    }

    #[test]
    fn expected_cost_under_exponential_matches_vertex_formulas() {
        // Under any distribution, E[cost_TOI] = B·P(y>0), E[cost_DET] =
        // μ_B⁻ + 2·q_B⁺·B, E[cost_NRand] = e/(e−1)(μ_B⁻ + q_B⁺·B).
        let d = Exponential::with_mean(35.0).unwrap();
        let b = b28();
        let mu = d.partial_mean(28.0);
        let q = d.tail_prob(28.0);

        let toi = expected_cost_under(&Toi::new(b), &d);
        assert!(approx_eq(toi, 28.0, 1e-7), "TOI {toi}");

        let det = expected_cost_under(&Det::new(b), &d);
        assert!(approx_eq(det, mu + 2.0 * q * 28.0, 1e-7), "DET {det}");

        let nr = expected_cost_under(&NRand::new(b), &d);
        assert!(approx_eq(nr, e_ratio() * (mu + q * 28.0), 1e-7), "NRand {nr}");

        let nev = expected_cost_under(&Nev::new(b), &d);
        assert!(approx_eq(nev, 35.0, 1e-9), "NEV {nev}");
    }

    #[test]
    fn expected_cost_under_discrete_exact() {
        let d = Discrete::new(vec![(5.0, 0.5), (50.0, 0.5)]).unwrap();
        let det = Det::new(b28());
        // 0.5·5 + 0.5·56.
        assert!(approx_eq(expected_cost_under_discrete(&det, &d), 30.5, 1e-12));
    }

    #[test]
    fn expected_cr_under_lognormal_sane() {
        let d = LogNormal::new(2.8, 1.0).unwrap();
        let b = b28();
        // N-Rand's CR is exactly e/(e−1) under any distribution.
        let cr = expected_cr_under(&NRand::new(b), &d);
        assert!(approx_eq(cr, e_ratio(), 1e-6), "cr = {cr}");
        // DET's CR is between 1 and 2.
        let cr_det = expected_cr_under(&Det::new(b), &d);
        assert!((1.0..=2.0).contains(&cr_det));
        // MOM-Rand is a valid policy too.
        let mr = MomRand::new(b, d.mean()).unwrap();
        let cr_mr = expected_cr_under(&mr, &d);
        assert!((1.0..2.0).contains(&cr_mr));
    }

    #[test]
    fn bootstrap_ci_brackets_point_estimate() {
        let d = LogNormal::new(2.5, 1.0).unwrap();
        let b = b28();
        let mut rng = StdRng::seed_from_u64(8);
        let stops: Vec<f64> = (0..400).map(|_| d.sample(&mut rng)).collect();
        let p = Det::new(b);
        let ci = bootstrap_cr_ci(&p, &stops, 500, 0.95, &mut rng).unwrap();
        assert!(ci.lo <= ci.point && ci.point <= ci.hi, "{ci:?}");
        assert!(ci.lo >= 1.0 - 1e-9);
        assert!(ci.hi - ci.lo < 0.5, "CI suspiciously wide: {ci:?}");
    }

    #[test]
    fn bootstrap_ci_narrows_with_more_data() {
        let d = LogNormal::new(2.5, 1.0).unwrap();
        let b = b28();
        let mut rng = StdRng::seed_from_u64(9);
        let big: Vec<f64> = (0..4000).map(|_| d.sample(&mut rng)).collect();
        let small = &big[..100];
        let p = Det::new(b);
        let ci_small = bootstrap_cr_ci(&p, small, 400, 0.9, &mut rng).unwrap();
        let ci_big = bootstrap_cr_ci(&p, &big, 400, 0.9, &mut rng).unwrap();
        assert!(
            ci_big.hi - ci_big.lo < ci_small.hi - ci_small.lo,
            "big {:?} vs small {:?}",
            ci_big,
            ci_small
        );
    }

    #[test]
    fn bootstrap_ci_nrand_is_degenerate() {
        // N-Rand's CR is e/(e−1) on every trace, so the CI collapses.
        let b = b28();
        let mut rng = StdRng::seed_from_u64(10);
        let stops = [5.0, 40.0, 12.0, 90.0];
        let ci = bootstrap_cr_ci(&NRand::new(b), &stops, 200, 0.95, &mut rng).unwrap();
        assert!((ci.hi - ci.lo).abs() < 1e-9);
        assert!((ci.point - e_ratio()).abs() < 1e-9);
    }

    #[test]
    fn parallel_bootstrap_bit_identical_across_threads() {
        let d = LogNormal::new(2.5, 1.0).unwrap();
        let b = b28();
        let mut rng = StdRng::seed_from_u64(21);
        let stops: Vec<f64> = (0..300).map(|_| d.sample(&mut rng)).collect();
        let p = Det::new(b);
        let reference = {
            let mut r = StdRng::seed_from_u64(77);
            bootstrap_cr_ci_parallel(&p, &stops, 200, 0.95, &mut r, 1).unwrap()
        };
        for threads in [2, 4, 7, 64] {
            let mut r = StdRng::seed_from_u64(77);
            let ci = bootstrap_cr_ci_parallel(&p, &stops, 200, 0.95, &mut r, threads).unwrap();
            assert_eq!(ci, reference, "threads = {threads}");
        }
        assert!(reference.lo <= reference.point && reference.point <= reference.hi);
    }

    #[test]
    fn empirical_cr_with_matches_empirical_cr() {
        let stops = [10.0, 100.0, 0.0, 28.0, 3.5];
        let summary = StopSummary::new(&stops).unwrap();
        for p in [
            Box::new(Det::new(b28())) as Box<dyn Policy>,
            Box::new(Nev::new(b28())),
            Box::new(Toi::new(b28())),
            Box::new(NRand::new(b28())),
        ] {
            let fast = empirical_cr_with(&p, &summary);
            let slow = empirical_cr(&p, &stops).unwrap();
            assert!(approx_eq(fast, slow, 1e-12), "{}: {fast} vs {slow}", p.name());
        }
    }

    #[test]
    #[should_panic(expected = "confidence must be in (0,1)")]
    fn bootstrap_ci_validates_confidence() {
        let b = b28();
        let mut rng = StdRng::seed_from_u64(11);
        let _ = bootstrap_cr_ci(&Det::new(b), &[1.0], 10, 1.0, &mut rng);
    }

    #[test]
    fn empirical_cr_matches_distribution_cr_in_the_limit() {
        let d = LogNormal::new(2.5, 0.9).unwrap();
        let b = b28();
        let mut rng = StdRng::seed_from_u64(4);
        let stops: Vec<f64> = (0..200_000).map(|_| d.sample(&mut rng)).collect();
        let p = Det::new(b);
        let emp = empirical_cr(&p, &stops).unwrap();
        let ana = expected_cr_under(&p, &d);
        assert!((emp - ana).abs() < 0.01, "empirical {emp} vs analytic {ana}");
    }
}
