//! Fleet-level evaluation — the machinery behind Figure 4 and the
//! Section-5 vehicle counts.
//!
//! For each vehicle, every strategy is instantiated *from that vehicle's
//! own stop statistics* (MOM-Rand gets the vehicle's mean stop length, the
//! proposed algorithm its `(μ_B⁻, q_B⁺)`), then scored by the empirical
//! expected competitive ratio of eq. (5). The report aggregates, per
//! strategy: the mean CR across vehicles, the worst (largest) CR, and the
//! number of vehicles on which the strategy was the best performer.
//!
//! Each vehicle's trace is summarized **once** into a
//! [`StopSummary`] (one sort + prefix sums) which is then shared by all
//! strategies: fitting MOM-Rand, the proposed algorithm, and the
//! hindsight baseline, as well as scoring every strategy's CR, are all
//! O(log n) queries against the same summary. Fleets are sharded across
//! threads with [`crate::parallel`].

use crate::analysis::empirical_cr_with;
use crate::cost::BreakEven;
use crate::policy::{Det, MomRand, NRand, Nev, Policy, Toi};
use crate::summary::StopSummary;
use crate::Error;
use std::fmt;

/// The strategies compared in the paper's experiments (Figure 4 legend).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Strategy {
    /// Never turn the engine off.
    Nev,
    /// Turn off immediately.
    Toi,
    /// Deterministic threshold at `B`.
    Det,
    /// Randomized e/(e−1) algorithm.
    NRand,
    /// First-moment randomized algorithm.
    MomRand,
    /// The paper's proposed constrained algorithm.
    Proposed,
    /// The hindsight-optimal fixed threshold (in-sample Bayes baseline;
    /// not in the paper's Figure 4 — see [`crate::bayes`]).
    BayesOpt,
}

impl Strategy {
    /// The six strategies of the paper's Figure 4, in presentation order.
    pub const ALL: [Strategy; 6] = [
        Strategy::Nev,
        Strategy::Toi,
        Strategy::Det,
        Strategy::NRand,
        Strategy::MomRand,
        Strategy::Proposed,
    ];

    /// The paper's six strategies plus the hindsight fixed-threshold
    /// baseline (for the `ablation_bayes` harness).
    pub const WITH_HINDSIGHT: [Strategy; 7] = [
        Strategy::Nev,
        Strategy::Toi,
        Strategy::Det,
        Strategy::NRand,
        Strategy::MomRand,
        Strategy::Proposed,
        Strategy::BayesOpt,
    ];

    /// Display name matching the paper's legends.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Self::Nev => "NEV",
            Self::Toi => "TOI",
            Self::Det => "DET",
            Self::NRand => "N-Rand",
            Self::MomRand => "MOM-Rand",
            Self::Proposed => "Proposed",
            Self::BayesOpt => "Bayes-OPT",
        }
    }

    /// Instantiates the strategy for one vehicle from its observed stops.
    ///
    /// # Errors
    ///
    /// Returns [`Error::EmptyTrace`] if `stops` is empty (the data-driven
    /// strategies have nothing to estimate from).
    ///
    /// # Panics
    ///
    /// Panics if a stop is negative or non-finite.
    pub fn build(
        &self,
        stops: &[f64],
        break_even: BreakEven,
    ) -> Result<Box<dyn Policy + Send + Sync>, Error> {
        self.build_with(&StopSummary::new(stops)?, break_even)
    }

    /// [`Strategy::build`] from a precomputed [`StopSummary`] — the
    /// data-driven strategies (MOM-Rand, Proposed, Bayes-OPT) read their
    /// statistics straight off the summary's prefix sums instead of
    /// rescanning (and, for Bayes-OPT, re-sorting) the trace.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidMoments`] / [`Error::InvalidMean`] if the
    /// summary statistics fall outside a strategy's feasible region
    /// (cannot happen for finite non-negative traces).
    pub fn build_with(
        &self,
        summary: &StopSummary,
        break_even: BreakEven,
    ) -> Result<Box<dyn Policy + Send + Sync>, Error> {
        Ok(match self {
            Self::Nev => Box::new(Nev::new(break_even)),
            Self::Toi => Box::new(Toi::new(break_even)),
            Self::Det => Box::new(Det::new(break_even)),
            Self::NRand => Box::new(NRand::new(break_even)),
            Self::MomRand => Box::new(MomRand::new(break_even, summary.mean())?),
            Self::Proposed => Box::new(summary.constrained_stats(break_even)?.optimal_policy()),
            Self::BayesOpt => Box::new(crate::bayes::BayesOpt::for_summary(summary, break_even)),
        })
    }
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-vehicle evaluation: the CR of every strategy on that vehicle's
/// stops.
#[derive(Debug, Clone, PartialEq)]
pub struct VehicleResult {
    /// Index of the vehicle in the input slice.
    pub vehicle: usize,
    /// Empirical CRs, parallel to the strategy list of the report.
    pub crs: Vec<f64>,
    /// Index (into the strategy list) of the best strategy; ties go to the
    /// earliest-listed strategy.
    pub best: usize,
}

/// Per-strategy aggregate over a fleet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StrategySummary {
    /// The strategy being summarized.
    pub strategy: Strategy,
    /// Mean empirical CR across vehicles (the bar heights in Figure 4).
    pub mean_cr: f64,
    /// Largest empirical CR across vehicles ("worst case CR" in Figure 4).
    pub worst_cr: f64,
    /// Number of vehicles on which this strategy achieved the lowest CR.
    /// Ties (within 1e-9 relative) count for every tied strategy — the
    /// proposed algorithm often *coincides* with its selected vertex
    /// strategy, and both are then "best" on that vehicle.
    pub wins: usize,
}

/// The full fleet evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// Strategies evaluated, in column order.
    pub strategies: Vec<Strategy>,
    /// Per-vehicle results.
    pub vehicles: Vec<VehicleResult>,
    /// Per-strategy aggregates, parallel to `strategies`.
    pub summaries: Vec<StrategySummary>,
}

impl FleetReport {
    /// The summary row for one strategy, if it was evaluated.
    #[must_use]
    pub fn summary_of(&self, strategy: Strategy) -> Option<&StrategySummary> {
        let i = self.strategies.iter().position(|&s| s == strategy)?;
        Some(&self.summaries[i])
    }

    /// Number of vehicles evaluated.
    #[must_use]
    pub fn num_vehicles(&self) -> usize {
        self.vehicles.len()
    }
}

impl fmt::Display for FleetReport {
    /// Renders the Figure-4-style table: one row per strategy with mean CR,
    /// worst CR, and win count.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<10} {:>9} {:>9} {:>6}   ({} vehicles)",
            "strategy",
            "mean CR",
            "worst CR",
            "wins",
            self.num_vehicles()
        )?;
        for s in &self.summaries {
            writeln!(
                f,
                "{:<10} {:>9.4} {:>9.4} {:>6}",
                s.strategy.name(),
                s.mean_cr,
                s.worst_cr,
                s.wins
            )?;
        }
        Ok(())
    }
}

/// Evaluates one vehicle against every strategy: one [`StopSummary`]
/// build (sort + prefix sums), then closed-form fitting and scoring for
/// each strategy.
fn evaluate_vehicle(
    vi: usize,
    stops: &[f64],
    break_even: BreakEven,
    strategies: &[Strategy],
) -> Result<VehicleResult, Error> {
    let summary = StopSummary::new(stops)?;
    let mut crs = Vec::with_capacity(strategies.len());
    for strat in strategies {
        let policy = strat.build_with(&summary, break_even)?;
        crs.push(empirical_cr_with(policy.as_ref(), &summary));
    }
    let best = crs
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .unwrap_or_else(|| unreachable!("strategies are non-empty, checked by the caller"));
    Ok(VehicleResult { vehicle: vi, crs, best })
}

/// Evaluates `strategies` on every vehicle's stop trace.
///
/// Each vehicle's data-driven strategies are fit on that vehicle's own
/// stops (as the paper does); the CR is the in-sample expected competitive
/// ratio of eq. (5).
///
/// # Errors
///
/// Returns [`Error::EmptyTrace`] if `vehicle_stops` is empty, any vehicle
/// has no stops, or `strategies` is empty.
pub fn evaluate_fleet(
    vehicle_stops: &[Vec<f64>],
    break_even: BreakEven,
    strategies: &[Strategy],
) -> Result<FleetReport, Error> {
    if vehicle_stops.is_empty() || strategies.is_empty() {
        return Err(Error::EmptyTrace);
    }
    let mut vehicles = Vec::with_capacity(vehicle_stops.len());
    for (vi, stops) in vehicle_stops.iter().enumerate() {
        vehicles.push(evaluate_vehicle(vi, stops, break_even, strategies)?);
    }
    Ok(summarize(strategies, vehicles))
}

/// Parallel [`evaluate_fleet`]: vehicles are sharded across `threads` OS
/// threads via [`crate::parallel::try_chunked_map`]. Produces
/// bit-identical results to the sequential version for every thread
/// count — per-vehicle evaluation is deterministic and independent, and
/// the shared runtime preserves input order.
///
/// # Errors
///
/// Same conditions as [`evaluate_fleet`].
///
/// # Panics
///
/// Panics if `threads == 0`.
pub fn evaluate_fleet_parallel(
    vehicle_stops: &[Vec<f64>],
    break_even: BreakEven,
    strategies: &[Strategy],
    threads: usize,
) -> Result<FleetReport, Error> {
    assert!(threads > 0, "need at least one thread");
    if vehicle_stops.is_empty() || strategies.is_empty() {
        return Err(Error::EmptyTrace);
    }
    let vehicles = crate::parallel::try_chunked_map(vehicle_stops, threads, |vi, stops| {
        evaluate_vehicle(vi, stops, break_even, strategies)
    })?;
    Ok(summarize(strategies, vehicles))
}

/// Evaluates the honest **online** adaptive controller over a fleet
/// through the batched SoA engine ([`crate::batch`]): vehicles are
/// sharded across `threads` workers and each shard is decided whole
/// batches at a time. Unlike [`evaluate_fleet`], which scores policies
/// fit in hindsight on each vehicle's full trace, this runs the causal
/// estimate-then-decide loop a deployed controller would.
///
/// Per-vehicle outcomes are bit-identical to
/// [`evaluate_fleet_adaptive`] (the scalar reference) with the same
/// config, for any thread count.
///
/// # Errors
///
/// [`Error::EmptyTrace`] if the fleet is empty or any vehicle's trace
/// is.
///
/// # Panics
///
/// Panics if `threads == 0` or a stop is negative or non-finite.
pub fn evaluate_fleet_adaptive_batched(
    vehicle_stops: &[Vec<f64>],
    break_even: BreakEven,
    cfg: &crate::batch::BatchConfig,
    threads: usize,
) -> Result<crate::batch::FleetBatchReport, Error> {
    crate::batch::run_fleet_batch(vehicle_stops, break_even, cfg, threads)
}

/// Scalar reference for [`evaluate_fleet_adaptive_batched`]: one
/// [`crate::estimator::AdaptiveController`] per vehicle, run serially
/// with the same per-vehicle counter RNG streams.
///
/// # Errors
///
/// [`Error::EmptyTrace`] if the fleet is empty or any vehicle's trace
/// is.
pub fn evaluate_fleet_adaptive(
    vehicle_stops: &[Vec<f64>],
    break_even: BreakEven,
    cfg: &crate::batch::BatchConfig,
) -> Result<Vec<crate::estimator::AdaptiveOutcome>, Error> {
    crate::batch::run_fleet_scalar(vehicle_stops, break_even, cfg)
}

/// Builds the per-strategy summaries from per-vehicle results.
fn summarize(strategies: &[Strategy], vehicles: Vec<VehicleResult>) -> FleetReport {
    let summaries = strategies
        .iter()
        .enumerate()
        .map(|(si, &strategy)| {
            let mut sum = 0.0;
            let mut worst: f64 = 0.0;
            let mut wins = 0usize;
            for v in &vehicles {
                sum += v.crs[si];
                worst = worst.max(v.crs[si]);
                let min = v.crs[v.best];
                if v.crs[si] <= min * (1.0 + 1e-9) {
                    wins += 1;
                }
            }
            StrategySummary {
                strategy,
                mean_cr: sum / vehicles.len() as f64,
                worst_cr: worst,
                wins,
            }
        })
        .collect();
    FleetReport { strategies: strategies.to_vec(), vehicles, summaries }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numeric::approx_eq;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use stopmodel::dist::{LogNormal, Mixture, Pareto, StopDistribution};

    fn b28() -> BreakEven {
        BreakEven::new(28.0).unwrap()
    }

    /// A small synthetic fleet with heavy-tailed stops (lognormal body of
    /// light/sign stops plus a Pareto tail of congestion and parking
    /// idling, the shape the paper's Figure 3 reports).
    fn fleet(n_vehicles: usize, stops_each: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        let dist = Mixture::new(vec![
            (0.75, Box::new(LogNormal::new(2.0, 0.9).unwrap()) as _),
            (0.25, Box::new(Pareto::new(30.0, 1.2).unwrap()) as _),
        ])
        .unwrap();
        (0..n_vehicles).map(|_| (0..stops_each).map(|_| dist.sample(&mut rng)).collect()).collect()
    }

    #[test]
    fn strategy_names_and_all() {
        assert_eq!(Strategy::ALL.len(), 6);
        for s in Strategy::ALL {
            assert!(!s.name().is_empty());
            assert_eq!(s.to_string(), s.name());
        }
    }

    #[test]
    fn build_each_strategy() {
        let stops = [5.0, 40.0, 12.0];
        for s in Strategy::ALL {
            let p = s.build(&stops, b28()).unwrap();
            assert!(p.expected_cost(10.0) >= 0.0);
        }
    }

    #[test]
    fn build_rejects_empty() {
        for s in Strategy::ALL {
            assert!(matches!(s.build(&[], b28()), Err(Error::EmptyTrace)));
        }
    }

    #[test]
    fn report_shape() {
        let vehicles = fleet(10, 50, 1);
        let report = evaluate_fleet(&vehicles, b28(), &Strategy::ALL).unwrap();
        assert_eq!(report.num_vehicles(), 10);
        assert_eq!(report.summaries.len(), 6);
        for v in &report.vehicles {
            assert_eq!(v.crs.len(), 6);
            assert!(v.best < 6);
            for &cr in &v.crs {
                assert!(cr >= 1.0 - 1e-9, "CR below 1: {cr}");
            }
        }
        // Every vehicle has at least one winner; ties can add more.
        let total_wins: usize = report.summaries.iter().map(|s| s.wins).sum();
        assert!(total_wins >= 10);
    }

    #[test]
    fn proposed_dominates_on_synthetic_fleet() {
        // The paper's headline: the proposed strategy has the lowest mean
        // CR and the lowest worst-case CR, and wins most vehicles.
        let vehicles = fleet(40, 200, 2);
        let report = evaluate_fleet(&vehicles, b28(), &Strategy::ALL).unwrap();
        let proposed = report.summary_of(Strategy::Proposed).unwrap();
        for s in &report.summaries {
            assert!(
                proposed.mean_cr <= s.mean_cr + 1e-9,
                "proposed mean {} > {} mean {}",
                proposed.mean_cr,
                s.strategy.name(),
                s.mean_cr
            );
        }
        assert!(proposed.wins >= report.num_vehicles() / 2, "wins = {}", proposed.wins);
    }

    #[test]
    fn nrand_cr_is_constant_across_vehicles() {
        let vehicles = fleet(5, 60, 3);
        let report = evaluate_fleet(&vehicles, b28(), &[Strategy::NRand]).unwrap();
        let s = report.summary_of(Strategy::NRand).unwrap();
        assert!(approx_eq(s.mean_cr, crate::e_ratio(), 1e-9));
        assert!(approx_eq(s.worst_cr, crate::e_ratio(), 1e-9));
    }

    #[test]
    fn empty_inputs_error() {
        assert!(matches!(evaluate_fleet(&[], b28(), &Strategy::ALL), Err(Error::EmptyTrace)));
        let vehicles = fleet(2, 10, 4);
        assert!(matches!(evaluate_fleet(&vehicles, b28(), &[]), Err(Error::EmptyTrace)));
        let with_empty = vec![vec![1.0, 2.0], vec![]];
        assert!(matches!(
            evaluate_fleet(&with_empty, b28(), &Strategy::ALL),
            Err(Error::EmptyTrace)
        ));
    }

    #[test]
    fn display_renders_table() {
        let vehicles = fleet(3, 20, 5);
        let report = evaluate_fleet(&vehicles, b28(), &Strategy::ALL).unwrap();
        let s = report.to_string();
        assert!(s.contains("Proposed") && s.contains("mean CR"));
    }

    #[test]
    fn parallel_matches_sequential_exactly() {
        let vehicles = fleet(37, 60, 9); // odd count exercises chunking
        let seq = evaluate_fleet(&vehicles, b28(), &Strategy::ALL).unwrap();
        for threads in [1, 2, 4, 7, 64] {
            let par = evaluate_fleet_parallel(&vehicles, b28(), &Strategy::ALL, threads).unwrap();
            assert_eq!(par, seq, "threads = {threads}");
        }
    }

    #[test]
    fn parallel_propagates_errors() {
        let mut vehicles = fleet(8, 20, 10);
        vehicles[5].clear(); // one empty vehicle
        assert!(matches!(
            evaluate_fleet_parallel(&vehicles, b28(), &Strategy::ALL, 4),
            Err(Error::EmptyTrace)
        ));
        assert!(matches!(
            evaluate_fleet_parallel(&[], b28(), &Strategy::ALL, 4),
            Err(Error::EmptyTrace)
        ));
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn parallel_rejects_zero_threads() {
        let vehicles = fleet(2, 10, 11);
        let _ = evaluate_fleet_parallel(&vehicles, b28(), &Strategy::ALL, 0);
    }

    #[test]
    fn adaptive_batched_matches_scalar_reference() {
        let vehicles = fleet(11, 80, 12);
        let cfg = crate::batch::BatchConfig { window: Some(50), ..Default::default() };
        let scalar = evaluate_fleet_adaptive(&vehicles, b28(), &cfg).unwrap();
        for threads in [1, 2, 8] {
            let batched = evaluate_fleet_adaptive_batched(&vehicles, b28(), &cfg, threads).unwrap();
            assert_eq!(batched.outcomes, scalar, "threads = {threads}");
        }
    }

    #[test]
    fn summary_of_missing_strategy() {
        let vehicles = fleet(2, 20, 6);
        let report = evaluate_fleet(&vehicles, b28(), &[Strategy::Det]).unwrap();
        assert!(report.summary_of(Strategy::Toi).is_none());
        assert!(report.summary_of(Strategy::Det).is_some());
    }
}
