//! Multislope ski rental — the "rent, lease, or buy" generalization the
//! paper cites as related work (Lotker, Patt-Shamir, Rawitz, SIAM DM
//! 2012), in its *additive* form (equivalently, multi-state power-down:
//! Irani et al.).
//!
//! An idling vehicle need not choose only between "engine on" and "engine
//! off": intermediate states shed load progressively (drop the A/C
//! compressor and alternator load, then shut the engine off). State `i`
//! costs `rate_i` per second while stopped, after a cumulative one-time
//! transition cost `cost_i`:
//!
//! * **offline**: `OPT(y) = min_i (cost_i + rate_i · y)` — the lower
//!   envelope of the state lines;
//! * **online (lower-envelope strategy)**: at elapsed stop time `t`, be in
//!   the state that is offline-optimal for a stop of exactly `t`. The
//!   rent paid telescopes to exactly `OPT(y)`, so the online cost is
//!   `OPT(y) + cost_{state(y)} ≤ 2·OPT(y)` — deterministic 2-competitive,
//!   collapsing to the classic DET algorithm for two states.
//!
//! [`MultiSlope`] validates the state system (strictly decreasing rates,
//! strictly increasing costs, no dominated state) and exposes offline
//! cost, online cost, per-stop competitive ratio, and a worst-case scan.

use crate::cost::BreakEven;
use crate::Error;

/// One engine state: a rent `rate` (cost per second of stop time) reached
/// after a one-time `cumulative_cost`.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Slope {
    /// Cost per second while stopped in this state (idle-equivalent
    /// seconds per second, i.e. state 0 has rate 1).
    pub rate: f64,
    /// Total one-time cost paid to have reached this state (state 0 has
    /// cost 0).
    pub cumulative_cost: f64,
}

/// A validated multislope (multi-state power-down) instance.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MultiSlope {
    slopes: Vec<Slope>,
    /// `breakpoints[i]` is the stop length at which the offline envelope
    /// switches from state `i` to state `i+1` (length `slopes.len()−1`).
    breakpoints: Vec<f64>,
}

impl MultiSlope {
    /// Builds a multislope system from `(rate, cumulative_cost)` pairs in
    /// state order.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidSlopes`] unless there are at least two
    /// states, state 0 is `(rate > 0, cost = 0)`, rates strictly decrease,
    /// costs strictly increase, the final rate is ≥ 0, and no state is
    /// dominated (every state must appear on the lower envelope, i.e. the
    /// switch points must be strictly increasing).
    pub fn new(states: Vec<(f64, f64)>) -> Result<Self, Error> {
        if states.len() < 2 {
            return Err(Error::InvalidSlopes { reason: "need at least two states" });
        }
        let slopes: Vec<Slope> = states
            .into_iter()
            .map(|(rate, cumulative_cost)| Slope { rate, cumulative_cost })
            .collect();
        if !slopes.iter().all(|s| s.rate.is_finite() && s.cumulative_cost.is_finite()) {
            return Err(Error::InvalidSlopes { reason: "rates and costs must be finite" });
        }
        if slopes[0].cumulative_cost != 0.0 {
            return Err(Error::InvalidSlopes { reason: "state 0 must have zero one-time cost" });
        }
        if slopes[0].rate <= 0.0 {
            return Err(Error::InvalidSlopes { reason: "state 0 must have positive rate" });
        }
        if slopes.last().is_some_and(|s| s.rate < 0.0) {
            return Err(Error::InvalidSlopes { reason: "rates must be non-negative" });
        }
        for w in slopes.windows(2) {
            if w[1].rate >= w[0].rate {
                return Err(Error::InvalidSlopes { reason: "rates must strictly decrease" });
            }
            if w[1].cumulative_cost <= w[0].cumulative_cost {
                return Err(Error::InvalidSlopes { reason: "costs must strictly increase" });
            }
        }
        // Envelope switch points; strict increase ⇔ no dominated state.
        let mut breakpoints = Vec::with_capacity(slopes.len() - 1);
        for w in slopes.windows(2) {
            let y = (w[1].cumulative_cost - w[0].cumulative_cost) / (w[0].rate - w[1].rate);
            breakpoints.push(y);
        }
        for w in breakpoints.windows(2) {
            if w[1] <= w[0] {
                return Err(Error::InvalidSlopes {
                    reason: "a state is dominated (never offline-optimal)",
                });
            }
        }
        Ok(Self { slopes, breakpoints })
    }

    /// The classic two-state instance: idle at rate 1 or pay `B` to turn
    /// off (rate 0). Its online strategy is exactly DET.
    #[must_use]
    pub fn classic(break_even: BreakEven) -> Self {
        Self::new(vec![(1.0, 0.0), (0.0, break_even.seconds())])
            .unwrap_or_else(|_| unreachable!("two-state system is always valid"))
    }

    /// A three-state automotive example: full idle → eco-idle (A/C and
    /// alternator load shed, 60 % rate, small switch cost) → engine off
    /// (residual battery drain, full restart cost `B`).
    #[must_use]
    pub fn eco_idle(break_even: BreakEven) -> Self {
        let b = break_even.seconds();
        Self::new(vec![(1.0, 0.0), (0.6, 0.1 * b), (0.02, b)])
            .unwrap_or_else(|_| unreachable!("eco-idle preset is a valid system"))
    }

    /// The states, in order.
    #[must_use]
    pub fn slopes(&self) -> &[Slope] {
        &self.slopes
    }

    /// Stop lengths at which the offline optimum switches state
    /// (`len() == slopes().len() − 1`, strictly increasing).
    #[must_use]
    pub fn breakpoints(&self) -> &[f64] {
        &self.breakpoints
    }

    /// Index of the offline-optimal state for a stop of length `y`.
    ///
    /// # Panics
    ///
    /// Panics if `y` is negative or NaN.
    #[must_use]
    pub fn offline_state(&self, y: f64) -> usize {
        assert!(y >= 0.0, "stop length must be non-negative, got {y}");
        self.breakpoints.partition_point(|&bp| bp <= y)
    }

    /// Offline (clairvoyant) cost `min_i (cost_i + rate_i·y)`.
    ///
    /// # Panics
    ///
    /// Panics if `y` is negative or NaN.
    #[must_use]
    pub fn offline_cost(&self, y: f64) -> f64 {
        let s = self.slopes[self.offline_state(y)];
        s.cumulative_cost + s.rate * y
    }

    /// Online cost of the lower-envelope strategy for a stop of length
    /// `y`: rents telescope to `OPT(y)`, plus the one-time cost of the
    /// state reached — `OPT(y) + cost_{state(y)}`.
    ///
    /// # Panics
    ///
    /// Panics if `y` is negative or NaN.
    #[must_use]
    pub fn online_cost(&self, y: f64) -> f64 {
        self.offline_cost(y) + self.slopes[self.offline_state(y)].cumulative_cost
    }

    /// Pointwise competitive ratio of the lower-envelope strategy;
    /// defined as `1` when both costs are zero (`y = 0`).
    ///
    /// # Panics
    ///
    /// Panics if `y` is negative or NaN.
    #[must_use]
    pub fn competitive_ratio(&self, y: f64) -> f64 {
        let off = self.offline_cost(y);
        if off == 0.0 {
            return 1.0;
        }
        self.online_cost(y) / off
    }

    /// Worst pointwise competitive ratio over a dense grid of stop lengths
    /// covering all breakpoints (provably `≤ 2`, attained just past the
    /// last switch).
    ///
    /// # Panics
    ///
    /// Panics if `grid == 0`.
    #[must_use]
    pub fn worst_case_cr(&self, grid: usize) -> f64 {
        assert!(grid > 0, "grid must be non-empty");
        let hi = 2.0
            * self.breakpoints.last().unwrap_or_else(|| unreachable!("breakpoints are non-empty"));
        let mut worst: f64 = 0.0;
        for i in 0..=grid {
            let y = hi * i as f64 / grid as f64;
            worst = worst.max(self.competitive_ratio(y));
        }
        // The supremum sits exactly at the breakpoints (the ratio is
        // right-continuous and decreasing within a segment).
        for &bp in &self.breakpoints {
            worst = worst.max(self.competitive_ratio(bp));
        }
        worst
    }
}

/// A randomized schedule mixture and its guaranteed competitive ratio
/// (see [`MultiSlope::optimal_randomized_envelope`]).
#[derive(Debug, Clone, PartialEq)]
pub struct RandomizedEnvelope {
    /// Worst-case competitive ratio of the mixture over the adversary
    /// grid.
    pub cr: f64,
    /// `(θ, probability)` pairs with non-negligible mass, sorted by `θ`.
    pub weights: Vec<(f64, f64)>,
}

impl MultiSlope {
    /// Cost of the *scaled-envelope schedule* with factor `θ` on a stop of
    /// length `y`: switch to state `i+1` at time `θ · breakpoint_i`.
    ///
    /// `θ = 1` is the deterministic lower-envelope strategy; `θ = 0`
    /// drops straight to the final state (TOI-like); large `θ` never
    /// switches (NEV-like). For the classic two-state system this family
    /// is exactly the fixed-threshold family `x = θ·B`.
    ///
    /// # Panics
    ///
    /// Panics if `θ` or `y` is negative or NaN.
    #[must_use]
    pub fn scaled_schedule_cost(&self, theta: f64, y: f64) -> f64 {
        assert!(theta >= 0.0, "scale factor must be non-negative, got {theta}");
        assert!(y >= 0.0, "stop length must be non-negative, got {y}");
        // State reached by time y: switches at θ·bp_i that have fired.
        let fired = self.breakpoints.partition_point(|&bp| theta * bp <= y);
        let mut rent = 0.0;
        let mut prev = 0.0;
        for i in 0..fired {
            let t = theta * self.breakpoints[i];
            rent += self.slopes[i].rate * (t - prev);
            prev = t;
        }
        rent += self.slopes[fired].rate * (y - prev);
        rent + self.slopes[fired].cumulative_cost
    }

    /// Finds the best *mixture* of scaled-envelope schedules by solving
    /// the matrix game `min_p max_y Σ_θ p_θ·cost(θ, y) / OPT(y)` as an LP
    /// over a `θ`-grid on `[0, θ_max]` (adversary on a `y`-grid enriched
    /// with every scaled switch point, where the ratio peaks).
    ///
    /// For the classic two-state system this recovers Karlin et al.'s
    /// `e/(e−1) ≈ 1.582` as the grid refines; for richer systems it
    /// upper-bounds the optimal randomized CR and beats the deterministic
    /// lower-envelope guarantee of 2.
    ///
    /// # Panics
    ///
    /// Panics if `grid < 4`.
    #[must_use]
    pub fn optimal_randomized_envelope(&self, grid: usize) -> RandomizedEnvelope {
        use numeric::simplex::{LinearProgram, Relation};
        assert!(grid >= 4, "grid must have at least 4 points");

        // θ ∈ [0, 1]: scaling past 1 delays switches beyond the offline
        // envelope, which Appendix-A-style dominance rules out.
        let thetas: Vec<f64> = (0..=grid).map(|i| i as f64 / grid as f64).collect();
        // Adversary support: all scaled switch points (the ratio's jump
        // points), the envelope breakpoints, and a tail probe.
        let last_bp =
            *self.breakpoints.last().unwrap_or_else(|| unreachable!("breakpoints are non-empty"));
        let mut ys: Vec<f64> = Vec::new();
        for &theta in &thetas {
            for &bp in &self.breakpoints {
                let t = theta * bp;
                if t > 0.0 {
                    ys.push(t);
                }
            }
        }
        ys.extend(self.breakpoints.iter().copied());
        ys.push(2.0 * last_bp);
        ys.push(10.0 * last_bp);
        ys.sort_by(f64::total_cmp);
        ys.dedup_by(|a, b| (*a - *b).abs() < 1e-12);

        // Variables: p_θ …, v. Objective: min v.
        let n = thetas.len();
        let mut objective = vec![0.0; n + 1];
        objective[n] = 1.0;
        let mut lp = LinearProgram::minimize(objective);
        for &y in &ys {
            let opt = self.offline_cost(y);
            if opt <= 0.0 {
                continue;
            }
            let mut row = vec![0.0; n + 1];
            for (i, &theta) in thetas.iter().enumerate() {
                row[i] = self.scaled_schedule_cost(theta, y);
            }
            row[n] = -opt;
            lp.constrain(row, Relation::Le, 0.0);
        }
        let mut norm = vec![1.0; n + 1];
        norm[n] = 0.0;
        lp.constrain(norm, Relation::Eq, 1.0);

        let sol = lp
            .solve()
            .unwrap_or_else(|_| unreachable!("randomized-envelope game is feasible and bounded"));
        let weights = thetas
            .iter()
            .zip(&sol.x[..n])
            .filter(|&(_, &p)| p > 1e-9)
            .map(|(&t, &p)| (t, p))
            .collect();
        RandomizedEnvelope { cr: sol.objective, weights }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numeric::approx_eq;

    fn b28() -> BreakEven {
        BreakEven::new(28.0).unwrap()
    }

    #[test]
    fn classic_reduces_to_det() {
        let ms = MultiSlope::classic(b28());
        let det = crate::policy::Det::new(b28());
        use crate::policy::Policy as _;
        for y in [0.0, 5.0, 27.9, 28.0, 28.1, 100.0] {
            assert!(
                approx_eq(ms.online_cost(y), det.expected_cost(y), 1e-12),
                "y={y}: {} vs {}",
                ms.online_cost(y),
                det.expected_cost(y)
            );
            assert!(approx_eq(ms.offline_cost(y), b28().offline_cost(y), 1e-12));
        }
        assert!(approx_eq(ms.worst_case_cr(1000), 2.0, 1e-9));
    }

    #[test]
    fn breakpoints_computed() {
        let ms = MultiSlope::eco_idle(b28());
        let bps = ms.breakpoints();
        assert_eq!(bps.len(), 2);
        // idle→eco: 0.1B/(1−0.6) = 0.25B = 7; eco→off: 0.9B/0.58 ≈ 43.45.
        assert!(approx_eq(bps[0], 7.0, 1e-12));
        assert!(approx_eq(bps[1], 0.9 * 28.0 / 0.58, 1e-9));
        assert!(bps[0] < bps[1]);
    }

    #[test]
    fn offline_is_lower_envelope() {
        let ms = MultiSlope::eco_idle(b28());
        for yi in 0..200 {
            let y = yi as f64;
            let brute = ms
                .slopes()
                .iter()
                .map(|s| s.cumulative_cost + s.rate * y)
                .fold(f64::INFINITY, f64::min);
            assert!(approx_eq(ms.offline_cost(y), brute, 1e-12), "y={y}");
        }
    }

    #[test]
    fn online_identity_and_two_competitiveness() {
        let ms = MultiSlope::eco_idle(b28());
        for yi in 0..400 {
            let y = yi as f64 * 0.5;
            let j = ms.offline_state(y);
            assert!(approx_eq(
                ms.online_cost(y),
                ms.offline_cost(y) + ms.slopes()[j].cumulative_cost,
                1e-12
            ));
            assert!(ms.competitive_ratio(y) <= 2.0 + 1e-12, "cr at {y}");
        }
        let worst = ms.worst_case_cr(2000);
        assert!(worst <= 2.0 + 1e-12);
        // Eco-idle improves on the classic worst case (cost_{state} <
        // OPT strictly except in the limit).
        assert!(worst > 1.5, "worst {worst}");
    }

    #[test]
    fn eco_idle_beats_classic_on_medium_stops() {
        // The intermediate state pays off for stops around the first
        // breakpoint.
        let classic = MultiSlope::classic(b28());
        let eco = MultiSlope::eco_idle(b28());
        let y = 20.0;
        assert!(
            eco.online_cost(y) < classic.online_cost(y),
            "eco {} vs classic {}",
            eco.online_cost(y),
            classic.online_cost(y)
        );
    }

    #[test]
    fn validation_rejects_bad_systems() {
        // Too few states.
        assert!(matches!(MultiSlope::new(vec![(1.0, 0.0)]), Err(Error::InvalidSlopes { .. })));
        // State 0 must be free.
        assert!(MultiSlope::new(vec![(1.0, 1.0), (0.0, 28.0)]).is_err());
        // Rates must decrease.
        assert!(MultiSlope::new(vec![(1.0, 0.0), (1.0, 28.0)]).is_err());
        // Costs must increase.
        assert!(MultiSlope::new(vec![(1.0, 0.0), (0.5, 0.0)]).is_err());
        // Negative final rate.
        assert!(MultiSlope::new(vec![(1.0, 0.0), (-0.1, 28.0)]).is_err());
        // Non-finite.
        assert!(MultiSlope::new(vec![(1.0, 0.0), (f64::NAN, 28.0)]).is_err());
    }

    #[test]
    fn dominated_state_rejected() {
        // Middle state's line never touches the envelope: switching to it
        // at y1 = 20/(1-0.9) = 200 but to state 2 already at
        // (28-20)/(0.9-0) = 8.9 < 200 → breakpoints not increasing.
        assert!(matches!(
            MultiSlope::new(vec![(1.0, 0.0), (0.9, 20.0), (0.0, 28.0)]),
            Err(Error::InvalidSlopes { reason: _ })
        ));
    }

    #[test]
    fn zero_length_stop() {
        let ms = MultiSlope::eco_idle(b28());
        assert_eq!(ms.offline_cost(0.0), 0.0);
        assert_eq!(ms.online_cost(0.0), 0.0);
        assert_eq!(ms.competitive_ratio(0.0), 1.0);
        assert_eq!(ms.offline_state(0.0), 0);
    }

    #[test]
    fn scaled_schedule_classic_is_threshold_family() {
        let ms = MultiSlope::classic(b28());
        for &theta in &[0.0, 0.25, 0.5, 1.0] {
            let x = theta * 28.0;
            for &y in &[0.0, 5.0, 14.0, 28.0, 100.0] {
                let want = b28().online_cost(x, y);
                let got = ms.scaled_schedule_cost(theta, y);
                assert!(approx_eq(got, want, 1e-12), "theta={theta}, y={y}: {got} vs {want}");
            }
        }
    }

    #[test]
    fn scaled_schedule_theta_one_is_lower_envelope() {
        let ms = MultiSlope::eco_idle(b28());
        for yi in 0..300 {
            let y = yi as f64 * 0.5;
            assert!(approx_eq(ms.scaled_schedule_cost(1.0, y), ms.online_cost(y), 1e-9), "y = {y}");
        }
    }

    #[test]
    fn scaled_schedule_theta_zero_commits_to_final_state() {
        let ms = MultiSlope::eco_idle(b28());
        let last = *ms.slopes().last().unwrap();
        for &y in &[0.5, 10.0, 100.0] {
            assert!(approx_eq(
                ms.scaled_schedule_cost(0.0, y),
                last.cumulative_cost + last.rate * y,
                1e-12
            ));
        }
    }

    #[test]
    fn randomized_envelope_recovers_e_ratio_for_classic() {
        // The matrix game over the fixed-threshold family must converge to
        // Karlin et al.'s e/(e−1).
        let ms = MultiSlope::classic(b28());
        let sol = ms.optimal_randomized_envelope(120);
        assert!(
            (sol.cr - crate::e_ratio()).abs() < 0.01,
            "game CR {} vs e/(e-1) {}",
            sol.cr,
            crate::e_ratio()
        );
        // The optimal mixture is a genuine spread over [0, 1].
        assert!(sol.weights.len() > 10, "support size {}", sol.weights.len());
    }

    #[test]
    fn randomized_envelope_beats_deterministic_for_eco_idle() {
        let ms = MultiSlope::eco_idle(b28());
        let det = ms.worst_case_cr(4000);
        let sol = ms.optimal_randomized_envelope(100);
        assert!(
            sol.cr < det - 0.2,
            "randomized {} should clearly beat deterministic {det}",
            sol.cr
        );
        // Lotker et al.'s e/(e−1) is the optimal CR for the *hardest*
        // multislope instance; eco-idle is easier (its final state still
        // rents at 0.02, blunting the adversary), so the game value can
        // dip slightly below e/(e−1). It cannot approach 1, though.
        assert!(sol.cr > 1.4, "cr {} suspiciously low", sol.cr);
    }

    #[test]
    fn many_states_still_two_competitive() {
        // A geometric ladder of 6 states.
        let mut states = vec![(1.0, 0.0)];
        let mut cost = 0.0;
        let mut rate = 1.0;
        for _ in 0..5 {
            cost += 7.0;
            rate *= 0.45;
            states.push((rate, cost));
        }
        let ms = MultiSlope::new(states).unwrap();
        assert_eq!(ms.slopes().len(), 6);
        assert!(ms.worst_case_cr(5000) <= 2.0 + 1e-12);
    }
}
