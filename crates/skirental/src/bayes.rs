//! Average-case (distribution-aware) fixed-threshold baseline.
//!
//! Fujiwara & Iwama's average-case analysis (the paper's reference \[10\])
//! asks a different question than competitive analysis: if the stop-length
//! distribution `q(y)` is *known*, which fixed threshold minimizes the
//! expected cost `E(x) = μ_x⁻ + (x + B)·P(y ≥ x)`? This module computes
//! that Bayes-optimal threshold — analytically interesting corner cases
//! included:
//!
//! * exponential stops are memoryless, so the optimum is bang-bang:
//!   turn off immediately when the mean exceeds `B`, never otherwise;
//! * uniform `[0, u]` stops give `x* = u − B` (or never, when `u ≤ B`).
//!
//! [`BayesOpt`] wraps the result as a [`Policy`], and
//! [`BayesOpt::for_samples`] gives the *in-sample optimal fixed
//! threshold* — a strong hindsight baseline for the fleet experiments
//! (see `Strategy::BayesOpt` in [`crate::fleet_eval`]).

use crate::cost::BreakEven;
use crate::summary::StopSummary;
use crate::{Error, Policy};
use rand::RngCore;
use stopmodel::StopDistribution;

/// Expected cost of the fixed threshold `x` under `dist`:
/// `E(x) = ∫₀^x y q(y) dy + (x + B)·P(y ≥ x)`; `x = ∞` (never turn off)
/// costs the distribution's mean.
///
/// # Panics
///
/// Panics if `x` is negative or NaN.
#[must_use]
pub fn expected_threshold_cost<D: StopDistribution + ?Sized>(
    dist: &D,
    break_even: BreakEven,
    x: f64,
) -> f64 {
    assert!(x >= 0.0, "threshold must be non-negative, got {x}");
    if x.is_infinite() {
        return dist.mean();
    }
    dist.partial_mean(x) + (x + break_even.seconds()) * dist.tail_prob(x)
}

/// Finds the Bayes-optimal fixed threshold for a known distribution:
/// the minimizer of [`expected_threshold_cost`] over `[0, ∞]`.
///
/// A dense grid over `[0, max(4B, q₀.₉₉₅)]` brackets the minimum, a
/// golden-section pass refines it, and the result is compared against the
/// two boundary strategies (`x = 0`, `x = ∞`). Returns `(x*, E(x*))`.
///
/// # Panics
///
/// Panics if `grid < 4`.
#[must_use]
pub fn optimal_threshold<D: StopDistribution + ?Sized>(
    dist: &D,
    break_even: BreakEven,
    grid: usize,
) -> (f64, f64) {
    assert!(grid >= 4, "need at least 4 grid points");
    let hi = (4.0 * break_even.seconds()).max(dist.quantile(0.995));
    let cost = |x: f64| expected_threshold_cost(dist, break_even, x);

    // Grid bracket.
    let mut best_i = 0usize;
    let mut best_cost = f64::INFINITY;
    for i in 0..=grid {
        let x = hi * i as f64 / grid as f64;
        let c = cost(x);
        if c < best_cost {
            best_cost = c;
            best_i = i;
        }
    }
    // Golden-section refine inside the bracketing cells.
    let mut a = hi * best_i.saturating_sub(1) as f64 / grid as f64;
    let mut b = hi * (best_i + 1).min(grid) as f64 / grid as f64;
    const PHI: f64 = 0.618_033_988_749_894_8;
    for _ in 0..60 {
        let m1 = b - PHI * (b - a);
        let m2 = a + PHI * (b - a);
        if cost(m1) <= cost(m2) {
            b = m2;
        } else {
            a = m1;
        }
    }
    let x_star = 0.5 * (a + b);
    let c_star = cost(x_star);
    let (mut best_x, mut best_c) = (x_star, c_star);
    // Boundary candidates.
    for (x, c) in [(0.0, cost(0.0)), (f64::INFINITY, dist.mean())] {
        if c < best_c {
            best_x = x;
            best_c = c;
        }
    }
    (best_x, best_c)
}

/// A fixed-threshold policy set to the Bayes-optimal (or in-sample
/// optimal) threshold.
///
/// An infinite threshold encodes "never turn off".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BayesOpt {
    break_even: BreakEven,
    threshold: f64,
}

impl BayesOpt {
    /// Bayes-optimal threshold for a *known* distribution (uses a
    /// 512-point grid; see [`optimal_threshold`]).
    #[must_use]
    pub fn for_distribution<D: StopDistribution + ?Sized>(dist: &D, break_even: BreakEven) -> Self {
        let (threshold, _) = optimal_threshold(dist, break_even, 512);
        Self { break_even, threshold }
    }

    /// The in-sample optimal fixed threshold for an observed trace — the
    /// hindsight-best deterministic strategy.
    ///
    /// The total cost of threshold `x` on a trace is piecewise linear and
    /// increasing between sample values, so the optimum is either `0`,
    /// just above one of the observed stop lengths, or `∞`; all candidates
    /// are evaluated exactly.
    ///
    /// # Errors
    ///
    /// Returns [`Error::EmptyTrace`] if `stops` is empty.
    ///
    /// # Panics
    ///
    /// Panics if a stop is negative or non-finite.
    pub fn for_samples(stops: &[f64], break_even: BreakEven) -> Result<Self, Error> {
        Ok(Self::for_summary(&StopSummary::new(stops)?, break_even))
    }

    /// The in-sample optimal fixed threshold from a precomputed
    /// [`StopSummary`] — the sweep reuses the summary's sorted order and
    /// prefix sums, so it is O(n) with no re-sort (and O(1) extra
    /// allocation). Equivalent to [`BayesOpt::for_samples`] on the same
    /// trace.
    #[must_use]
    pub fn for_summary(summary: &StopSummary, break_even: BreakEven) -> Self {
        let (threshold, _) = summary.hindsight(break_even);
        Self { break_even, threshold }
    }

    /// The selected threshold (`∞` = never turn off).
    #[must_use]
    pub fn threshold(&self) -> f64 {
        self.threshold
    }
}

impl Policy for BayesOpt {
    fn name(&self) -> &'static str {
        "Bayes-OPT"
    }

    fn break_even(&self) -> BreakEven {
        self.break_even
    }

    fn expected_cost(&self, y: f64) -> f64 {
        assert!(y >= 0.0, "stop length must be non-negative, got {y}");
        if self.threshold.is_infinite() {
            y
        } else {
            self.break_even.online_cost(self.threshold, y)
        }
    }

    fn sample_threshold(&self, _rng: &mut dyn RngCore) -> f64 {
        self.threshold
    }

    fn threshold_cdf(&self, x: f64) -> f64 {
        if x >= self.threshold {
            1.0
        } else {
            0.0
        }
    }

    fn total_cost_on(&self, summary: &StopSummary) -> f64 {
        summary.threshold_total_cost(self.threshold, self.break_even)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{empirical_cr, total_expected_cost};
    use numeric::approx_eq;
    use stopmodel::dist::{Exponential, LogNormal, Uniform};

    fn b28() -> BreakEven {
        BreakEven::new(28.0).unwrap()
    }

    #[test]
    fn exponential_bang_bang() {
        // Memorylessness: mean > B ⇒ turn off immediately; mean < B ⇒
        // never turn off.
        let heavy = Exponential::with_mean(100.0).unwrap();
        let (x, c) = optimal_threshold(&heavy, b28(), 256);
        assert_eq!(x, 0.0, "x* = {x}");
        assert!(approx_eq(c, 28.0, 1e-9));

        let light = Exponential::with_mean(10.0).unwrap();
        let (x, c) = optimal_threshold(&light, b28(), 256);
        assert!(x.is_infinite(), "x* = {x}");
        assert!(approx_eq(c, 10.0, 1e-9));
    }

    #[test]
    fn exponential_cost_formula() {
        // E(x) = (1 − e^{−λx})/λ + B·e^{−λx}.
        let d = Exponential::with_mean(30.0).unwrap();
        for &x in &[0.0, 10.0, 28.0, 80.0] {
            let want = 30.0 * (1.0 - (-x / 30.0f64).exp()) + 28.0 * (-x / 30.0f64).exp();
            let got = expected_threshold_cost(&d, b28(), x);
            assert!(approx_eq(got, want, 1e-9), "E({x}) = {got}, want {want}");
        }
        assert!(approx_eq(expected_threshold_cost(&d, b28(), f64::INFINITY), 30.0, 1e-12));
    }

    #[test]
    fn uniform_closed_form() {
        // U[0, u]: E(x) = x²/(2u) + (x+B)(1−x/u) is *concave* in x
        // (E'' = −1/u), so the optimum is at a boundary: TOI (cost B)
        // vs NEV (cost u/2), whichever is cheaper.
        let d = Uniform::new(0.0, 100.0).unwrap();
        let (x, c) = optimal_threshold(&d, b28(), 1024);
        assert_eq!(x, 0.0, "x* = {x}"); // B = 28 < mean 50 → TOI
        assert!(approx_eq(c, 28.0, 1e-9));
        // u < 2B: the mean is below B, so never turning off wins.
        let small = Uniform::new(0.0, 20.0).unwrap();
        let (x, c) = optimal_threshold(&small, b28(), 1024);
        assert!(x.is_infinite() || x >= 20.0, "x* = {x}");
        assert!(approx_eq(c, 10.0, 1e-6));
    }

    #[test]
    fn policy_wrapper_consistency() {
        let d = LogNormal::new(2.5, 1.0).unwrap();
        let p = BayesOpt::for_distribution(&d, b28());
        assert_eq!(p.name(), "Bayes-OPT");
        // Its expected cost under the distribution equals the optimal cost.
        // (Evaluated via expected_threshold_cost: a Bayes-optimal threshold
        // may exceed B, which analysis::expected_cost_under does not
        // support — it assumes policies randomize within [0, B].)
        let (x, c) = optimal_threshold(&d, b28(), 512);
        assert!(
            approx_eq(p.threshold(), x, 1e-6) || (p.threshold().is_infinite() && x.is_infinite())
        );
        let under = expected_threshold_cost(&d, b28(), p.threshold());
        assert!(approx_eq(under, c, 1e-6), "{under} vs {c}");
        // And no classic fixed threshold does better.
        for &alt in &[0.0, 14.0, 28.0, 56.0] {
            assert!(c <= expected_threshold_cost(&d, b28(), alt) + 1e-9);
        }
    }

    #[test]
    fn in_sample_optimum_beats_all_fixed_thresholds() {
        let stops = [3.0, 12.0, 35.0, 7.0, 90.0, 15.0, 4.0, 250.0];
        let p = BayesOpt::for_samples(&stops, b28()).unwrap();
        let opt_cost = total_expected_cost(&p, &stops).unwrap();
        // Exhaustive check against a dense threshold grid (including ∞).
        for i in 0..=3000 {
            let x = i as f64 * 0.1;
            let cost: f64 = stops.iter().map(|&y| b28().online_cost(x, y)).sum();
            assert!(opt_cost <= cost + 1e-9, "beaten by x = {x}: {cost} < {opt_cost}");
        }
        let nev: f64 = stops.iter().sum();
        assert!(opt_cost <= nev + 1e-9);
    }

    #[test]
    fn in_sample_optimum_with_duplicates_and_zeros() {
        let stops = [0.0, 0.0, 5.0, 5.0, 5.0, 100.0];
        let p = BayesOpt::for_samples(&stops, b28()).unwrap();
        // Idle through the 5s, shut off for the 100: cost 15 + 5ish + 28.
        let cost = total_expected_cost(&p, &stops).unwrap();
        assert!(cost <= 15.0 + 5.0 + 28.0 + 1e-6, "cost {cost}");
        let cr = empirical_cr(&p, &stops).unwrap();
        assert!(cr >= 1.0 - 1e-9);
    }

    #[test]
    fn in_sample_beats_or_ties_proposed_by_construction() {
        // Hindsight-best fixed threshold is a lower bound for every fixed
        // deterministic strategy, including DET and b-DET.
        let stops = [6.0, 14.0, 3.5, 45.0, 9.0, 22.0, 7.5, 310.0, 11.0];
        let b = b28();
        let bayes = BayesOpt::for_samples(&stops, b).unwrap();
        let det = crate::policy::Det::new(b);
        let toi = crate::policy::Toi::new(b);
        let c_b = total_expected_cost(&bayes, &stops).unwrap();
        assert!(c_b <= total_expected_cost(&det, &stops).unwrap() + 1e-9);
        assert!(c_b <= total_expected_cost(&toi, &stops).unwrap() + 1e-9);
    }

    #[test]
    fn empty_trace_rejected() {
        assert!(matches!(BayesOpt::for_samples(&[], b28()), Err(Error::EmptyTrace)));
    }

    #[test]
    fn nev_selection_on_short_stop_trace() {
        let stops = [1.0, 2.0, 3.0];
        let p = BayesOpt::for_samples(&stops, b28()).unwrap();
        // All stops tiny: best fixed threshold idles through everything.
        let cost = total_expected_cost(&p, &stops).unwrap();
        assert!(approx_eq(cost, 6.0, 1e-9), "cost {cost}");
    }

    #[test]
    #[should_panic(expected = "threshold must be non-negative")]
    fn rejects_negative_threshold_cost_query() {
        let d = Exponential::with_mean(10.0).unwrap();
        let _ = expected_threshold_cost(&d, b28(), -1.0);
    }
}
