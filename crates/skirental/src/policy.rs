//! Online stop-start policies.
//!
//! A [`Policy`] decides how long to keep the engine idling before shutting
//! it off, possibly at random. The six strategies the paper evaluates:
//!
//! | type | paper name | threshold |
//! |---|---|---|
//! | [`Nev`] | NEV | never turn off (`x = ∞`) |
//! | [`Toi`] | TOI | turn off immediately (`x = ε → 0`) |
//! | [`Det`] | DET | deterministic `x = B` (Karlin et al. 1988) |
//! | [`BDet`] | b-DET | deterministic `x = b ∈ [0, B]` |
//! | [`NRand`] | N-Rand | randomized, pdf `e^{x/B}/(B(e−1))` (Karlin et al. 1990) |
//! | [`MomRand`] | MOM-Rand | first-moment randomized (Khanafer et al. 2013) |
//!
//! The *proposed* algorithm of the paper is
//! [`crate::constrained::ProposedPolicy`], which selects among TOI / DET /
//! b-DET / N-Rand from the constrained statistics.

use crate::cost::BreakEven;
use crate::summary::StopSummary;
use crate::{e_ratio, Error};
use rand::RngCore;
use std::f64::consts::E;
use std::fmt;

/// An online stop-start policy: a (possibly randomized) idle threshold.
///
/// The two essential operations are the *analytic* expected cost of a stop
/// (expectation over the policy's own randomness, eq. (3) integrated
/// against the threshold distribution) and *sampling* a concrete threshold
/// for one stop, which is what an actual stop-start controller executes.
pub trait Policy: fmt::Debug {
    /// Short display name (e.g. `"DET"`), matching the paper's legends.
    fn name(&self) -> &'static str;

    /// The break-even interval the policy was built for.
    fn break_even(&self) -> BreakEven;

    /// Expected online cost `E_x[cost_online(x, y)]` of a stop of length
    /// `y`, in idle-seconds.
    ///
    /// # Panics
    ///
    /// Panics if `y` is negative or NaN.
    fn expected_cost(&self, y: f64) -> f64;

    /// Draws a concrete idle threshold for one stop. Deterministic
    /// policies ignore the RNG. `f64::INFINITY` encodes "never turn off".
    fn sample_threshold(&self, rng: &mut dyn RngCore) -> f64;

    /// CDF `P(X ≤ x)` of the threshold distribution (for diagnostics and
    /// tests).
    fn threshold_cdf(&self, x: f64) -> f64;

    /// Total expected cost over a whole trace, evaluated on its
    /// [`StopSummary`]: `Σᵢ E_x[cost_online(x, yᵢ)]`.
    ///
    /// The default implementation scans the (sorted) trace with
    /// [`Policy::expected_cost`] — O(n). Every concrete policy in this
    /// crate overrides it with a closed form over the summary's prefix
    /// sums, making the evaluation O(log n); the two agree to
    /// floating-point summation order (≤ 1e-9 relative, property-tested).
    fn total_cost_on(&self, summary: &StopSummary) -> f64 {
        summary.sorted().iter().map(|&y| self.expected_cost(y)).sum()
    }
}

/// Forwarding impl so boxed policies compose.
impl<P: Policy + ?Sized> Policy for Box<P> {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn break_even(&self) -> BreakEven {
        (**self).break_even()
    }
    fn expected_cost(&self, y: f64) -> f64 {
        (**self).expected_cost(y)
    }
    fn sample_threshold(&self, rng: &mut dyn RngCore) -> f64 {
        (**self).sample_threshold(rng)
    }
    fn threshold_cdf(&self, x: f64) -> f64 {
        (**self).threshold_cdf(x)
    }
    fn total_cost_on(&self, summary: &StopSummary) -> f64 {
        (**self).total_cost_on(summary)
    }
}

fn assert_stop_length(y: f64) {
    assert!(y >= 0.0, "stop length must be non-negative, got {y}");
}

// ---------------------------------------------------------------------------
// NEV
// ---------------------------------------------------------------------------

/// NEV — never turn the engine off (the reluctant-driver baseline).
///
/// Costs `y` on every stop; its competitive ratio is unbounded for long
/// stops, which is exactly the behaviour the paper's Figure 4 shows.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Nev {
    break_even: BreakEven,
}

impl Nev {
    /// Creates the never-turn-off policy.
    #[must_use]
    pub fn new(break_even: BreakEven) -> Self {
        Self { break_even }
    }
}

impl Policy for Nev {
    fn name(&self) -> &'static str {
        "NEV"
    }

    fn break_even(&self) -> BreakEven {
        self.break_even
    }

    fn expected_cost(&self, y: f64) -> f64 {
        assert_stop_length(y);
        y
    }

    fn sample_threshold(&self, _rng: &mut dyn RngCore) -> f64 {
        f64::INFINITY
    }

    fn threshold_cdf(&self, _x: f64) -> f64 {
        0.0
    }

    fn total_cost_on(&self, summary: &StopSummary) -> f64 {
        summary.total()
    }
}

// ---------------------------------------------------------------------------
// TOI
// ---------------------------------------------------------------------------

/// TOI — turn the engine off immediately (the common stop-start-system
/// default).
///
/// Pays one restart (`B`) on every positive-length stop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Toi {
    break_even: BreakEven,
}

impl Toi {
    /// Creates the turn-off-immediately policy.
    #[must_use]
    pub fn new(break_even: BreakEven) -> Self {
        Self { break_even }
    }
}

impl Policy for Toi {
    fn name(&self) -> &'static str {
        "TOI"
    }

    fn break_even(&self) -> BreakEven {
        self.break_even
    }

    fn expected_cost(&self, y: f64) -> f64 {
        assert_stop_length(y);
        // x = ε → 0: a zero-length "stop" costs nothing, everything else
        // pays a restart.
        if y == 0.0 {
            0.0
        } else {
            self.break_even.seconds()
        }
    }

    fn sample_threshold(&self, _rng: &mut dyn RngCore) -> f64 {
        0.0
    }

    fn threshold_cdf(&self, x: f64) -> f64 {
        if x >= 0.0 {
            1.0
        } else {
            0.0
        }
    }

    fn total_cost_on(&self, summary: &StopSummary) -> f64 {
        // One restart per positive stop; zero-length "stops" are free.
        summary.positive_count() as f64 * self.break_even.seconds()
    }
}

// ---------------------------------------------------------------------------
// DET and b-DET
// ---------------------------------------------------------------------------

/// DET — wait exactly `B`, then turn off (the optimal deterministic online
/// algorithm, worst-case `cr = 2`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Det {
    break_even: BreakEven,
}

impl Det {
    /// Creates the deterministic break-even-threshold policy.
    #[must_use]
    pub fn new(break_even: BreakEven) -> Self {
        Self { break_even }
    }
}

impl Policy for Det {
    fn name(&self) -> &'static str {
        "DET"
    }

    fn break_even(&self) -> BreakEven {
        self.break_even
    }

    fn expected_cost(&self, y: f64) -> f64 {
        assert_stop_length(y);
        self.break_even.online_cost(self.break_even.seconds(), y)
    }

    fn sample_threshold(&self, _rng: &mut dyn RngCore) -> f64 {
        self.break_even.seconds()
    }

    fn threshold_cdf(&self, x: f64) -> f64 {
        if x >= self.break_even.seconds() {
            1.0
        } else {
            0.0
        }
    }

    fn total_cost_on(&self, summary: &StopSummary) -> f64 {
        summary.threshold_total_cost(self.break_even.seconds(), self.break_even)
    }
}

/// b-DET — wait a fixed `b ∈ [0, B]`, then turn off.
///
/// The paper introduces this strategy as the third vertex of the
/// constrained LP; with the minimax-optimal `b* = √(μ_B⁻·B / q_B⁺)` it can
/// beat every classic strategy when short stops are tiny (Figure 2(c–d)).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BDet {
    break_even: BreakEven,
    threshold: f64,
}

impl BDet {
    /// Creates a deterministic policy with threshold `b`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidThreshold`] unless `0 ≤ b ≤ B` (Appendix A
    /// proves thresholds above `B` are dominated).
    pub fn new(break_even: BreakEven, b: f64) -> Result<Self, Error> {
        if !(b.is_finite() && (0.0..=break_even.seconds()).contains(&b)) {
            return Err(Error::InvalidThreshold { threshold: b, break_even: break_even.seconds() });
        }
        Ok(Self { break_even, threshold: b })
    }

    /// The fixed threshold `b`.
    #[must_use]
    pub fn threshold(&self) -> f64 {
        self.threshold
    }
}

impl Policy for BDet {
    fn name(&self) -> &'static str {
        "b-DET"
    }

    fn break_even(&self) -> BreakEven {
        self.break_even
    }

    fn expected_cost(&self, y: f64) -> f64 {
        assert_stop_length(y);
        self.break_even.online_cost(self.threshold, y)
    }

    fn sample_threshold(&self, _rng: &mut dyn RngCore) -> f64 {
        self.threshold
    }

    fn threshold_cdf(&self, x: f64) -> f64 {
        if x >= self.threshold {
            1.0
        } else {
            0.0
        }
    }

    fn total_cost_on(&self, summary: &StopSummary) -> f64 {
        summary.threshold_total_cost(self.threshold, self.break_even)
    }
}

// ---------------------------------------------------------------------------
// MixedThreshold
// ---------------------------------------------------------------------------

/// A finite mixed-threshold policy: draw one of finitely many thresholds
/// in `[0, B]` with given probabilities.
///
/// This is the general form a matrix-game solution takes (see
/// [`crate::constrained::ConstrainedStats::solve_minimax_game`]); the
/// classic strategies are special cases (TOI/DET/b-DET are single atoms).
#[derive(Debug, Clone, PartialEq)]
pub struct MixedThreshold {
    break_even: BreakEven,
    /// `(threshold, probability)` sorted by threshold; probabilities sum
    /// to 1.
    atoms: Vec<(f64, f64)>,
}

impl MixedThreshold {
    /// Builds a mixed policy from `(threshold, weight)` pairs; weights are
    /// normalized.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidThreshold`] if any threshold is outside
    /// `[0, B]`, or [`Error::EmptyTrace`] if no atoms are given or all
    /// weights are zero.
    pub fn new(break_even: BreakEven, atoms: Vec<(f64, f64)>) -> Result<Self, Error> {
        if atoms.is_empty() {
            return Err(Error::EmptyTrace);
        }
        let mut total = 0.0;
        for &(x, w) in &atoms {
            if !(x.is_finite() && (0.0..=break_even.seconds()).contains(&x)) {
                return Err(Error::InvalidThreshold {
                    threshold: x,
                    break_even: break_even.seconds(),
                });
            }
            if !(w.is_finite() && w >= 0.0) {
                return Err(Error::InvalidThreshold {
                    threshold: x,
                    break_even: break_even.seconds(),
                });
            }
            total += w;
        }
        if total <= 0.0 {
            return Err(Error::EmptyTrace);
        }
        let mut atoms: Vec<(f64, f64)> =
            atoms.into_iter().filter(|&(_, w)| w > 0.0).map(|(x, w)| (x, w / total)).collect();
        atoms.sort_by(|a, b| a.0.total_cmp(&b.0));
        Ok(Self { break_even, atoms })
    }

    /// The normalized `(threshold, probability)` atoms, sorted.
    #[must_use]
    pub fn atoms(&self) -> &[(f64, f64)] {
        &self.atoms
    }
}

impl Policy for MixedThreshold {
    fn name(&self) -> &'static str {
        "Mixed"
    }

    fn break_even(&self) -> BreakEven {
        self.break_even
    }

    fn expected_cost(&self, y: f64) -> f64 {
        assert_stop_length(y);
        self.atoms.iter().map(|&(x, p)| p * self.break_even.online_cost(x, y)).sum()
    }

    fn sample_threshold(&self, rng: &mut dyn RngCore) -> f64 {
        let mut u = stopmodel::uniform01(rng);
        for &(x, p) in &self.atoms {
            if u < p {
                return x;
            }
            u -= p;
        }
        self.atoms.last().unwrap_or_else(|| unreachable!("atoms non-empty by construction")).0
    }

    fn threshold_cdf(&self, x: f64) -> f64 {
        self.atoms.iter().take_while(|&&(t, _)| t <= x).map(|&(_, p)| p).sum()
    }

    fn total_cost_on(&self, summary: &StopSummary) -> f64 {
        // Linearity of expectation over the atoms; each atom is a fixed
        // threshold whose trace total has a closed form.
        self.atoms.iter().map(|&(x, p)| p * summary.threshold_total_cost(x, self.break_even)).sum()
    }
}

// ---------------------------------------------------------------------------
// N-Rand
// ---------------------------------------------------------------------------

/// N-Rand — the optimal unconstrained randomized algorithm (Karlin,
/// Manasse, McGeoch, Owicki 1990).
///
/// Thresholds are drawn from `P(x) = e^{x/B} / (B(e−1))` on `[0, B]`
/// (eq. (7)); the expected cost is exactly `e/(e−1) · cost_offline(y)` for
/// *every* stop length, which is what makes its competitive ratio
/// distribution-independent.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NRand {
    break_even: BreakEven,
}

impl NRand {
    /// Creates the randomized e/(e−1) policy.
    #[must_use]
    pub fn new(break_even: BreakEven) -> Self {
        Self { break_even }
    }

    /// The threshold density `P(x)` of eq. (7).
    #[must_use]
    pub fn threshold_pdf(&self, x: f64) -> f64 {
        let b = self.break_even.seconds();
        if (0.0..=b).contains(&x) {
            (x / b).exp() / (b * (E - 1.0))
        } else {
            0.0
        }
    }
}

impl Policy for NRand {
    fn name(&self) -> &'static str {
        "N-Rand"
    }

    fn break_even(&self) -> BreakEven {
        self.break_even
    }

    fn expected_cost(&self, y: f64) -> f64 {
        assert_stop_length(y);
        // Closed form: ∫₀^y (x+B)P(x)dx + y·∫_y^B P(x)dx = e/(e−1)·min(y,B).
        e_ratio() * self.break_even.offline_cost(y)
    }

    fn sample_threshold(&self, rng: &mut dyn RngCore) -> f64 {
        // Inverse CDF: F(x) = (e^{x/B} − 1)/(e − 1)  ⇒  x = B·ln(1 + u(e−1)).
        let u = stopmodel::uniform01(rng);
        self.break_even.seconds() * (1.0 + u * (E - 1.0)).ln()
    }

    fn threshold_cdf(&self, x: f64) -> f64 {
        let b = self.break_even.seconds();
        if x < 0.0 {
            0.0
        } else if x >= b {
            1.0
        } else {
            ((x / b).exp() - 1.0) / (E - 1.0)
        }
    }

    fn total_cost_on(&self, summary: &StopSummary) -> f64 {
        // Per-stop cost is e/(e−1)·min(y, B); the sum telescopes into the
        // offline total.
        e_ratio() * summary.offline_total(self.break_even)
    }
}

// ---------------------------------------------------------------------------
// MOM-Rand
// ---------------------------------------------------------------------------

/// MOM-Rand — the first-moment-constrained randomized algorithm (Khanafer,
/// Kodialam, Puttaswamy 2013).
///
/// When the mean stop length satisfies `μ ≤ 2(e−2)/(e−1)·B ≈ 0.836·B`,
/// thresholds are drawn from `P(x) = (e^{x/B} − 1)/(B(e−2))` on `[0, B]`
/// (eq. (9)); otherwise the policy falls back to [`NRand`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MomRand {
    break_even: BreakEven,
    mean: f64,
    uses_moment_pdf: bool,
}

impl MomRand {
    /// Creates the policy for a workload with mean stop length `mean`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidMean`] if `mean` is negative or non-finite.
    pub fn new(break_even: BreakEven, mean: f64) -> Result<Self, Error> {
        if !(mean.is_finite() && mean >= 0.0) {
            return Err(Error::InvalidMean(mean));
        }
        let uses_moment_pdf = mean <= Self::moment_threshold(break_even);
        Ok(Self { break_even, mean, uses_moment_pdf })
    }

    /// The switching point `2(e−2)/(e−1)·B ≈ 0.836·B` below which the
    /// moment-aware density applies.
    #[must_use]
    pub fn moment_threshold(break_even: BreakEven) -> f64 {
        2.0 * (E - 2.0) / (E - 1.0) * break_even.seconds()
    }

    /// Whether the moment-aware density (rather than the N-Rand fallback)
    /// is in effect.
    #[must_use]
    pub fn uses_moment_pdf(&self) -> bool {
        self.uses_moment_pdf
    }

    /// The mean stop length the policy was built with.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The threshold density of eq. (9) (or eq. (7) in the fallback
    /// regime).
    #[must_use]
    pub fn threshold_pdf(&self, x: f64) -> f64 {
        let b = self.break_even.seconds();
        if !self.uses_moment_pdf {
            return NRand::new(self.break_even).threshold_pdf(x);
        }
        if (0.0..=b).contains(&x) {
            ((x / b).exp() - 1.0) / (b * (E - 2.0))
        } else {
            0.0
        }
    }
}

impl Policy for MomRand {
    fn name(&self) -> &'static str {
        "MOM-Rand"
    }

    fn break_even(&self) -> BreakEven {
        self.break_even
    }

    fn expected_cost(&self, y: f64) -> f64 {
        assert_stop_length(y);
        if !self.uses_moment_pdf {
            return NRand::new(self.break_even).expected_cost(y);
        }
        let b = self.break_even.seconds();
        if y <= b {
            // ∫₀^y (x+B)P(x)dx + y·∫_y^B P(x)dx = y·(1 + y/(2B(e−2))).
            y * (1.0 + y / (2.0 * b * (E - 2.0)))
        } else {
            // ∫₀^B (x+B)P(x)dx = B(e − 3/2)/(e − 2).
            b * (E - 1.5) / (E - 2.0)
        }
    }

    fn sample_threshold(&self, rng: &mut dyn RngCore) -> f64 {
        if !self.uses_moment_pdf {
            return NRand::new(self.break_even).sample_threshold(rng);
        }
        // CDF G(x) = (e^{x/B} − 1 − x/B)/(e − 2) has no closed-form
        // inverse; bisect on [0, B].
        let u = stopmodel::uniform01(rng);
        let b = self.break_even.seconds();
        numeric::rootfind::bisect(|x| self.threshold_cdf(x) - u, 0.0, b, 1e-10 * b).unwrap_or_else(
            |_| unreachable!("threshold CDF is continuous and spans [0,1] on [0,B]"),
        )
    }

    fn threshold_cdf(&self, x: f64) -> f64 {
        if !self.uses_moment_pdf {
            return NRand::new(self.break_even).threshold_cdf(x);
        }
        let b = self.break_even.seconds();
        if x < 0.0 {
            0.0
        } else if x >= b {
            1.0
        } else {
            ((x / b).exp() - 1.0 - x / b) / (E - 2.0)
        }
    }

    fn total_cost_on(&self, summary: &StopSummary) -> f64 {
        if !self.uses_moment_pdf {
            return NRand::new(self.break_even).total_cost_on(summary);
        }
        let b = self.break_even.seconds();
        // y ≤ B stops pay y + y²/(2B(e−2)) each — the sum splits into the
        // prefix sum and the prefix sum of squares; longer stops pay the
        // constant B(e − 3/2)/(e − 2).
        let short = summary.sum_at_most(b) + summary.sum_sq_at_most(b) / (2.0 * b * (E - 2.0));
        let long = (summary.len() - summary.count_at_most(b)) as f64;
        short + long * b * (E - 1.5) / (E - 2.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numeric::approx_eq;
    use numeric::quadrature::integrate;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn b28() -> BreakEven {
        BreakEven::new(28.0).unwrap()
    }

    /// Monte-Carlo estimate of the expected cost by sampling thresholds.
    fn mc_cost(policy: &dyn Policy, y: f64, n: usize, seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let b = policy.break_even();
        (0..n).map(|_| b.online_cost(policy.sample_threshold(&mut rng).min(1e18), y)).sum::<f64>()
            / n as f64
    }

    #[test]
    fn nev_costs_stop_length() {
        let p = Nev::new(b28());
        assert_eq!(p.expected_cost(0.0), 0.0);
        assert_eq!(p.expected_cost(300.0), 300.0);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(p.sample_threshold(&mut rng), f64::INFINITY);
        assert_eq!(p.threshold_cdf(1e12), 0.0);
        assert_eq!(p.name(), "NEV");
    }

    #[test]
    fn toi_costs_restart() {
        let p = Toi::new(b28());
        assert_eq!(p.expected_cost(0.0), 0.0);
        assert_eq!(p.expected_cost(0.1), 28.0);
        assert_eq!(p.expected_cost(1000.0), 28.0);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(p.sample_threshold(&mut rng), 0.0);
        assert_eq!(p.threshold_cdf(0.0), 1.0);
        assert_eq!(p.threshold_cdf(-0.1), 0.0);
    }

    #[test]
    fn det_cost_profile() {
        let p = Det::new(b28());
        // Short stop: idle through it.
        assert_eq!(p.expected_cost(10.0), 10.0);
        // Stop of exactly B: pay B idle + B restart (the cr = 2 point).
        assert_eq!(p.expected_cost(28.0), 56.0);
        assert_eq!(p.expected_cost(100.0), 56.0);
        assert_eq!(p.threshold_cdf(27.9), 0.0);
        assert_eq!(p.threshold_cdf(28.0), 1.0);
    }

    #[test]
    fn bdet_validates_threshold() {
        assert!(BDet::new(b28(), 0.0).is_ok());
        assert!(BDet::new(b28(), 28.0).is_ok());
        assert!(matches!(
            BDet::new(b28(), 28.1),
            Err(Error::InvalidThreshold { threshold: _, break_even: _ })
        ));
        assert!(BDet::new(b28(), -1.0).is_err());
        assert!(BDet::new(b28(), f64::NAN).is_err());
    }

    #[test]
    fn bdet_cost_profile() {
        let p = BDet::new(b28(), 10.0).unwrap();
        assert_eq!(p.threshold(), 10.0);
        assert_eq!(p.expected_cost(5.0), 5.0);
        assert_eq!(p.expected_cost(10.0), 38.0);
        assert_eq!(p.expected_cost(200.0), 38.0);
    }

    #[test]
    fn bdet_with_b_equals_det() {
        let bd = BDet::new(b28(), 28.0).unwrap();
        let det = Det::new(b28());
        for y in [0.0, 5.0, 28.0, 50.0] {
            assert_eq!(bd.expected_cost(y), det.expected_cost(y));
        }
    }

    #[test]
    fn nrand_pdf_normalizes_and_matches_cdf() {
        let p = NRand::new(b28());
        let total = integrate(|x| p.threshold_pdf(x), 0.0, 28.0, 1e-11);
        assert!(approx_eq(total, 1.0, 1e-9), "pdf mass {total}");
        for &x in &[0.0, 7.0, 14.0, 28.0] {
            let cdf_num = integrate(|t| p.threshold_pdf(t), 0.0, x, 1e-11);
            assert!(approx_eq(cdf_num, p.threshold_cdf(x), 1e-8));
        }
    }

    #[test]
    fn nrand_expected_cost_is_e_ratio_times_offline() {
        // The defining property of N-Rand (verified against direct
        // integration of eq. (3) over the threshold pdf).
        let p = NRand::new(b28());
        for &y in &[1.0f64, 10.0, 27.9, 28.0, 50.0, 500.0] {
            let direct = integrate(|x| (x + 28.0) * p.threshold_pdf(x), 0.0, y.min(28.0), 1e-11)
                + y * integrate(|x| p.threshold_pdf(x), y.min(28.0), 28.0, 1e-11);
            assert!(
                approx_eq(p.expected_cost(y), direct, 1e-8),
                "closed form {} vs integral {direct} at y={y}",
                p.expected_cost(y)
            );
            assert!(approx_eq(p.expected_cost(y), e_ratio() * y.min(28.0), 1e-12));
        }
    }

    #[test]
    fn nrand_sampling_matches_cdf() {
        let p = NRand::new(b28());
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| p.sample_threshold(&mut rng)).collect();
        assert!(samples.iter().all(|&x| (0.0..=28.0).contains(&x)));
        // Empirical CDF at a few probes.
        for &x in &[5.0, 14.0, 23.0] {
            let emp = samples.iter().filter(|&&s| s <= x).count() as f64 / n as f64;
            assert!(
                (emp - p.threshold_cdf(x)).abs() < 0.01,
                "ecdf {emp} vs cdf {} at {x}",
                p.threshold_cdf(x)
            );
        }
    }

    #[test]
    fn nrand_mc_cost_matches_closed_form() {
        let p = NRand::new(b28());
        for &y in &[10.0, 28.0, 60.0] {
            let mc = mc_cost(&p, y, 200_000, 4);
            assert!(
                (mc - p.expected_cost(y)).abs() / p.expected_cost(y) < 0.01,
                "MC {mc} vs analytic {} at y={y}",
                p.expected_cost(y)
            );
        }
    }

    #[test]
    fn momrand_regime_switch() {
        let b = b28();
        let thresh = MomRand::moment_threshold(b);
        assert!(approx_eq(thresh, 0.836 * 28.0, 1e-3 * 28.0));
        assert!(MomRand::new(b, thresh - 0.1).unwrap().uses_moment_pdf());
        assert!(!MomRand::new(b, thresh + 0.1).unwrap().uses_moment_pdf());
    }

    #[test]
    fn momrand_validates_mean() {
        assert!(MomRand::new(b28(), -1.0).is_err());
        assert!(MomRand::new(b28(), f64::NAN).is_err());
        assert_eq!(MomRand::new(b28(), 5.0).unwrap().mean(), 5.0);
    }

    #[test]
    fn momrand_pdf_normalizes_and_matches_cdf() {
        let p = MomRand::new(b28(), 10.0).unwrap();
        assert!(p.uses_moment_pdf());
        let total = integrate(|x| p.threshold_pdf(x), 0.0, 28.0, 1e-11);
        assert!(approx_eq(total, 1.0, 1e-9), "pdf mass {total}");
        for &x in &[3.0, 14.0, 27.0] {
            let cdf_num = integrate(|t| p.threshold_pdf(t), 0.0, x, 1e-11);
            assert!(approx_eq(cdf_num, p.threshold_cdf(x), 1e-8));
        }
    }

    #[test]
    fn momrand_expected_cost_matches_integral() {
        let p = MomRand::new(b28(), 10.0).unwrap();
        for &y in &[5.0f64, 15.0, 28.0, 40.0] {
            let direct = integrate(|x| (x + 28.0) * p.threshold_pdf(x), 0.0, y.min(28.0), 1e-11)
                + y * integrate(|x| p.threshold_pdf(x), y.min(28.0), 28.0, 1e-11);
            assert!(
                approx_eq(p.expected_cost(y), direct, 1e-8),
                "closed form {} vs integral {direct} at y={y}",
                p.expected_cost(y)
            );
        }
    }

    #[test]
    fn momrand_cost_continuous_at_b() {
        let p = MomRand::new(b28(), 10.0).unwrap();
        let below = p.expected_cost(28.0 - 1e-9);
        let above = p.expected_cost(28.0 + 1e-9);
        assert!(approx_eq(below, above, 1e-6));
    }

    #[test]
    fn momrand_fallback_equals_nrand() {
        let p = MomRand::new(b28(), 27.0).unwrap(); // mean > 0.836 B
        let n = NRand::new(b28());
        for &y in &[5.0, 28.0, 100.0] {
            assert_eq!(p.expected_cost(y), n.expected_cost(y));
        }
        assert_eq!(p.threshold_cdf(14.0), n.threshold_cdf(14.0));
    }

    #[test]
    fn momrand_sampling_matches_cdf() {
        let p = MomRand::new(b28(), 8.0).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| p.sample_threshold(&mut rng)).collect();
        assert!(samples.iter().all(|&x| (0.0..=28.0).contains(&x)));
        for &x in &[10.0, 20.0, 26.0] {
            let emp = samples.iter().filter(|&&s| s <= x).count() as f64 / n as f64;
            assert!(
                (emp - p.threshold_cdf(x)).abs() < 0.01,
                "ecdf {emp} vs cdf {} at {x}",
                p.threshold_cdf(x)
            );
        }
    }

    #[test]
    fn momrand_upper_bound_cr_prime() {
        // Khanafer et al.: CR' ≤ 1 + μ/(2B(e−2)). Our per-stop ratio
        // E[cost]/offline = 1 + y/(2B(e−2)) for y ≤ B, so the expectation
        // over any q(y) with mean μ ≤ B respects the bound.
        let b = b28();
        let p = MomRand::new(b, 10.0).unwrap();
        for &y in &[1.0, 10.0, 28.0] {
            let ratio = p.expected_cost(y) / b.offline_cost(y);
            let bound = 1.0 + y / (2.0 * 28.0 * (E - 2.0));
            assert!(ratio <= bound + 1e-9, "ratio {ratio} > bound {bound} at y={y}");
        }
    }

    #[test]
    fn mixed_threshold_basics() {
        let p = MixedThreshold::new(b28(), vec![(0.0, 1.0), (28.0, 1.0)]).unwrap();
        // Normalized to 1/2 each; cost is the average of TOI and DET.
        assert!(approx_eq(p.expected_cost(10.0), 0.5 * 28.0 + 0.5 * 10.0, 1e-12));
        assert!(approx_eq(p.expected_cost(100.0), 0.5 * 28.0 + 0.5 * 56.0, 1e-12));
        assert_eq!(p.atoms().len(), 2);
        assert!(approx_eq(p.threshold_cdf(0.0), 0.5, 1e-12));
        assert!(approx_eq(p.threshold_cdf(28.0), 1.0, 1e-12));
        let mut rng = StdRng::seed_from_u64(7);
        let n = 10_000;
        let zeros = (0..n).filter(|_| p.sample_threshold(&mut rng) == 0.0).count();
        assert!((zeros as f64 / n as f64 - 0.5).abs() < 0.02);
    }

    #[test]
    fn mixed_threshold_single_atom_equals_bdet() {
        let m = MixedThreshold::new(b28(), vec![(12.0, 3.0)]).unwrap();
        let b = BDet::new(b28(), 12.0).unwrap();
        for y in [0.0, 5.0, 12.0, 40.0] {
            assert_eq!(m.expected_cost(y), b.expected_cost(y));
        }
    }

    #[test]
    fn mixed_threshold_validation() {
        assert!(MixedThreshold::new(b28(), vec![]).is_err());
        assert!(MixedThreshold::new(b28(), vec![(29.0, 1.0)]).is_err());
        assert!(MixedThreshold::new(b28(), vec![(-1.0, 1.0)]).is_err());
        assert!(MixedThreshold::new(b28(), vec![(5.0, -1.0)]).is_err());
        assert!(MixedThreshold::new(b28(), vec![(5.0, 0.0)]).is_err());
        assert!(MixedThreshold::new(b28(), vec![(5.0, f64::NAN)]).is_err());
    }

    #[test]
    fn boxed_policy_forwards() {
        let p: Box<dyn Policy> = Box::new(Det::new(b28()));
        assert_eq!(p.name(), "DET");
        assert_eq!(p.expected_cost(10.0), 10.0);
        assert_eq!(p.break_even().seconds(), 28.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn expected_cost_rejects_negative_stop() {
        let _ = Det::new(b28()).expected_cost(-1.0);
    }
}
