//! Constrained ski-rental online algorithms for automotive idling reduction.
//!
//! This crate is the paper's primary contribution (Dong, Zeng, Chen,
//! *A Cost Efficient Online Algorithm for Automotive Idling Reduction*,
//! DAC 2014): the vehicle's stop-start decision is a ski-rental problem
//! with break-even interval `B = cost_restart / cost_idling_per_second`,
//! and knowing the two statistics `μ_B⁻` (expected length of short stops)
//! and `q_B⁺` (probability of a long stop) lets an online policy achieve
//! the minimax expected competitive ratio over all consistent stop-length
//! distributions.
//!
//! # Modules
//!
//! * [`cost`] — the offline/online cost functions and competitive ratio of
//!   Section 2 (eqs. (2)–(4)), plus the [`BreakEven`] newtype.
//! * [`policy`] — the [`Policy`] trait and the six strategies evaluated in
//!   the paper: [`policy::Nev`], [`policy::Toi`], [`policy::Det`],
//!   [`policy::BDet`], [`policy::NRand`], [`policy::MomRand`].
//! * [`constrained`] — the constrained ski-rental solver of Sections 3–4:
//!   [`ConstrainedStats`] computes the four vertex costs, selects the
//!   optimal strategy ([`constrained::StrategyChoice`]), and cross-checks
//!   the closed form against a general LP solve.
//! * [`analysis`] — evaluating policies on stop traces: expected cost,
//!   empirical competitive ratio (eq. (5)), and Monte-Carlo simulation.
//! * [`batch`] — the structure-of-arrays batched decision engine:
//!   per-stop decisions for a whole shard of vehicles per call,
//!   bit-identical to the scalar adaptive controller.
//! * [`adversary`] — worst-case distribution constructions from the
//!   paper's proofs (Appendix A, the b-DET two-point argument).
//! * [`fleet_eval`] — the Figure-4 machinery: per-vehicle CR for every
//!   strategy, win counts, and per-area summaries.
//! * [`multislope`] — the additive multislope ("rent, lease, or buy")
//!   generalization the paper cites as related work, with the
//!   2-competitive lower-envelope strategy.
//! * [`bayes`] — the average-case (distribution-aware) fixed-threshold
//!   baseline in the spirit of Fujiwara & Iwama.
//! * [`estimator`] — online estimation of `(μ_B⁻, q_B⁺)` and the adaptive
//!   proposed policy a deployed controller would run.
//! * [`degraded`] — the trust-gated degradation ladder wrapping the
//!   adaptive controller: full proposed policy on healthy input, DET when
//!   the estimate goes stale, N-Rand when the sensor stream is untrusted.
//! * [`summary`] — sufficient statistics of a stop trace
//!   ([`StopSummary`]): sort once, then answer every per-trace cost query
//!   (empirical CR, constrained moments, hindsight-optimal threshold) in
//!   O(log n).
//! * [`parallel`] — deterministic chunked map-reduce on scoped threads,
//!   shared by the fleet evaluator, the bootstrap resampler, and the
//!   bench binaries.
//! * [`theory`] — the paper's numbered equations as an executable index,
//!   each cross-checked against the production implementation.
//!
//! # Example
//!
//! ```
//! use skirental::{BreakEven, ConstrainedStats};
//! use skirental::policy::Policy;
//!
//! // A stop-start vehicle (B = 28 s) in traffic where short stops average
//! // contribution μ_B⁻ = 5 s and 30 % of stops are long.
//! let b = BreakEven::new(28.0)?;
//! let stats = ConstrainedStats::new(b, 5.0, 0.30)?;
//!
//! // The proposed algorithm picks the minimax-optimal strategy…
//! let policy = stats.optimal_policy();
//! // …and guarantees a worst-case expected competitive ratio no worse than
//! // any of the four candidate strategies.
//! assert!(stats.worst_case_cr() <= 2.0);
//! let cost_40s_stop = policy.expected_cost(40.0);
//! assert!(cost_40s_stop > 0.0);
//! # Ok::<(), skirental::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod adversary;
pub mod analysis;
pub mod batch;
pub mod bayes;
pub mod constrained;
pub mod cost;
pub mod degraded;
pub mod estimator;
pub mod fleet_eval;
pub mod multislope;
mod obs;
pub mod parallel;
pub mod policy;
pub mod risk;
pub mod summary;
pub mod theory;

pub use constrained::{ConstrainedStats, StrategyChoice, VertexCosts};
pub use cost::BreakEven;
pub use degraded::{DegradationConfig, DegradedController, DegradedOutcome, TrustLevel};
pub use fleet_eval::{FleetReport, Strategy};
pub use policy::Policy;
pub use stopmodel::ConstrainedMoments;
pub use summary::StopSummary;

use std::fmt;

/// Euler's constant based factor `e/(e−1) ≈ 1.582`, the optimal competitive
/// ratio of the unconstrained randomized ski-rental algorithm.
#[must_use]
pub fn e_ratio() -> f64 {
    std::f64::consts::E / (std::f64::consts::E - 1.0)
}

/// Errors produced by this crate.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// The break-even interval must be a positive finite number of seconds.
    InvalidBreakEven(f64),
    /// A `(μ_B⁻, q_B⁺)` pair that no stop-length distribution realizes.
    InvalidMoments(stopmodel::moments::InvalidMomentsError),
    /// A policy threshold outside the valid range `[0, B]`.
    InvalidThreshold {
        /// The offending threshold (seconds).
        threshold: f64,
        /// The break-even interval (seconds).
        break_even: f64,
    },
    /// A negative or non-finite mean stop length.
    InvalidMean(f64),
    /// A stop-length observation that is negative or non-finite.
    ///
    /// Produced by the non-panicking `try_observe` paths; the payload is
    /// the raw bits of the offending reading so NaN payloads survive
    /// equality comparisons.
    InvalidStop {
        /// The offending observation, as raw `f64` bits
        /// (`f64::from_bits` recovers the value).
        bits: u64,
    },
    /// An operation that needs at least one stop received none.
    EmptyTrace,
    /// Paired slices (true stops and sensor readings) whose lengths must
    /// match did not.
    MismatchedLengths {
        /// Length of the true-stop slice.
        stops: usize,
        /// Length of the observation slice.
        observations: usize,
    },
    /// An adversary construction that is impossible for the given moments.
    InfeasibleAdversary {
        /// Human-readable reason.
        reason: &'static str,
    },
    /// An invalid multislope (multi-state power-down) system.
    InvalidSlopes {
        /// Human-readable reason.
        reason: &'static str,
    },
    /// A persisted state blob (lane export, estimator state, ladder
    /// state) that violates the invariants of the component it would be
    /// restored into. The component is left untouched.
    InvalidPersistedState {
        /// Human-readable reason.
        reason: &'static str,
    },
    /// A batched-shard API received a parallel array whose length does
    /// not match the store's lane count.
    ShardShapeMismatch {
        /// Lanes (vehicles) in the batch store.
        lanes: usize,
        /// Which slot was mis-sized (`"rngs"`, `"thresholds"`,
        /// `"vertices"`, or `"observations"`).
        slot: &'static str,
        /// The offending slice's length.
        len: usize,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidBreakEven(b) => {
                write!(f, "break-even interval must be positive and finite, got {b}")
            }
            Self::InvalidMoments(e) => write!(f, "{e}"),
            Self::InvalidThreshold { threshold, break_even } => write!(
                f,
                "threshold {threshold} outside the optimal strategy space [0, {break_even}]"
            ),
            Self::InvalidMean(m) => {
                write!(f, "mean stop length must be non-negative and finite, got {m}")
            }
            Self::InvalidStop { bits } => {
                write!(
                    f,
                    "stop observation must be non-negative and finite, got {}",
                    f64::from_bits(*bits)
                )
            }
            Self::EmptyTrace => write!(f, "stop trace must contain at least one stop"),
            Self::MismatchedLengths { stops, observations } => write!(
                f,
                "need one observation per stop: {stops} stops but {observations} observations"
            ),
            Self::InfeasibleAdversary { reason } => {
                write!(f, "adversary distribution infeasible: {reason}")
            }
            Self::InvalidSlopes { reason } => {
                write!(f, "invalid multislope system: {reason}")
            }
            Self::InvalidPersistedState { reason } => {
                write!(f, "persisted state invalid: {reason}")
            }
            Self::ShardShapeMismatch { lanes, slot, len } => write!(
                f,
                "batched shard arrays need one slot per lane: {slot} has {len} for {lanes} lanes"
            ),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::InvalidMoments(e) => Some(e),
            _ => None,
        }
    }
}

impl From<stopmodel::moments::InvalidMomentsError> for Error {
    fn from(e: stopmodel::moments::InvalidMomentsError) -> Self {
        Self::InvalidMoments(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e_ratio_value() {
        assert!((e_ratio() - 1.581_976_706_869_326_6).abs() < 1e-12);
    }

    #[test]
    fn error_display_nonempty() {
        let errs = [
            Error::InvalidBreakEven(-1.0),
            Error::InvalidThreshold { threshold: 50.0, break_even: 28.0 },
            Error::InvalidMean(f64::NAN),
            Error::InvalidStop { bits: f64::NAN.to_bits() },
            Error::EmptyTrace,
            Error::MismatchedLengths { stops: 3, observations: 2 },
            Error::InfeasibleAdversary { reason: "q = 1" },
            Error::InvalidSlopes { reason: "dominated state" },
            Error::InvalidPersistedState { reason: "ring head outside the window" },
            Error::ShardShapeMismatch { lanes: 4, slot: "thresholds", len: 3 },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn error_from_moments() {
        let m = stopmodel::ConstrainedMoments::new(28.0, 99.0, 0.9).unwrap_err();
        let e: Error = m.into();
        assert!(matches!(e, Error::InvalidMoments(_)));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn send_sync_bounds() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
        assert_send_sync::<BreakEven>();
    }
}
