//! The constrained ski-rental problem and its minimax solution
//! (Sections 3–4 of the paper).
//!
//! Given the break-even interval `B` and the pair of statistics
//! `(μ_B⁻, q_B⁺)`, the designer's threshold distribution that minimizes the
//! worst-case expected competitive ratio has the form of eq. (18): a
//! continuous exponential part plus probability atoms at `ε` (TOI), `B`
//! (DET), and `b` (b-DET). The augmented-Lagrangian / LP reduction of
//! Section 4 shows the optimum sits at a vertex of the `(α, β, γ)`
//! polytope, i.e. the best online algorithm is simply the cheapest of four
//! candidate strategies:
//!
//! | vertex | strategy | worst-case expected cost |
//! |---|---|---|
//! | `(0,0,0)` | N-Rand | `e/(e−1)·(μ_B⁻ + q_B⁺·B)` |
//! | `(1,0,0)` | TOI    | `B` |
//! | `(0,1,0)` | DET    | `μ_B⁻ + 2·q_B⁺·B` (eq. (14)) |
//! | `(0,0,1)` | b-DET  | `(√μ_B⁻ + √(q_B⁺·B))²` at `b* = √(μ_B⁻·B/q_B⁺)` (eq. (35)), valid under eq. (36) |
//!
//! [`ConstrainedStats`] exposes the vertex costs, the selected strategy,
//! the resulting worst-case CR (eq. (38) when b-DET wins), and an
//! independent cross-check that solves the Section-4.4 LP with a general
//! simplex solver.

use crate::cost::BreakEven;
use crate::policy::{BDet, Det, NRand, Policy, Toi};
use crate::summary::StopSummary;
use crate::{e_ratio, Error};
use numeric::simplex::{LinearProgram, Relation};
use rand::RngCore;
use stopmodel::{ConstrainedMoments, StopDistribution};

/// Which of the four vertex strategies the constrained solver selected.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum StrategyChoice {
    /// Deterministic threshold at `B`.
    Det,
    /// Turn off immediately.
    Toi,
    /// Deterministic threshold at `b < B`.
    BDet {
        /// The minimax-optimal threshold `b* = √(μ_B⁻·B / q_B⁺)`.
        b: f64,
    },
    /// The e/(e−1) randomized strategy.
    NRand,
}

impl StrategyChoice {
    /// Short display name matching the paper's legends.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Self::Det => "DET",
            Self::Toi => "TOI",
            Self::BDet { .. } => "b-DET",
            Self::NRand => "N-Rand",
        }
    }
}

/// The b-DET vertex, when it exists.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BDetVertex {
    /// The optimal threshold `b* = √(μ_B⁻·B / q_B⁺)`.
    pub b: f64,
    /// Its worst-case expected cost `(√μ_B⁻ + √(q_B⁺·B))²`.
    pub cost: f64,
}

/// Worst-case expected costs of the four vertex strategies.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct VertexCosts {
    /// `e/(e−1)·(μ_B⁻ + q_B⁺·B)`.
    pub n_rand: f64,
    /// `B`.
    pub toi: f64,
    /// `μ_B⁻ + 2·q_B⁺·B`.
    pub det: f64,
    /// The b-DET vertex, or `None` when eq. (36) fails or `b* > B` (in
    /// which regimes b-DET is dominated by DET/TOI).
    pub b_det: Option<BDetVertex>,
}

impl VertexCosts {
    /// The smallest vertex cost.
    #[must_use]
    pub fn min_cost(&self) -> f64 {
        let mut m = self.n_rand.min(self.toi).min(self.det);
        if let Some(bd) = self.b_det {
            m = m.min(bd.cost);
        }
        m
    }
}

/// Fractional masses from solving the Section-4.4 LP with a general simplex
/// solver — the cross-check path for the closed-form vertex selection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LpSolution {
    /// Mass on the TOI atom (`α`).
    pub alpha: f64,
    /// Mass on the DET atom (`β`).
    pub beta: f64,
    /// Mass on the b-DET atom (`γ`).
    pub gamma: f64,
    /// The resulting worst-case expected online cost (objective (32)
    /// including its constant term).
    pub expected_cost: f64,
}

/// The constrained ski-rental instance: break-even interval plus the pair
/// `(μ_B⁻, q_B⁺)`.
///
/// This is the paper's central object: construct it from known statistics,
/// from a stop trace, or from an analytic distribution, then ask for the
/// minimax-optimal online strategy.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ConstrainedStats {
    moments: ConstrainedMoments,
}

impl ConstrainedStats {
    /// Creates an instance from the break-even interval and the statistics
    /// `μ_B⁻` (seconds) and `q_B⁺` (probability).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidMoments`] for a pair no distribution
    /// realizes (`μ_B⁻ > (1 − q_B⁺)·B`, probabilities outside `[0,1]`, …).
    pub fn new(break_even: BreakEven, mu_b_minus: f64, q_b_plus: f64) -> Result<Self, Error> {
        let moments = ConstrainedMoments::new(break_even.seconds(), mu_b_minus, q_b_plus)?;
        Ok(Self { moments })
    }

    /// Wraps an already-validated moment pair.
    #[must_use]
    pub fn from_moments(moments: ConstrainedMoments) -> Self {
        Self { moments }
    }

    /// Plug-in estimation from an observed stop trace.
    ///
    /// # Errors
    ///
    /// Returns [`Error::EmptyTrace`] if `stops` is empty.
    ///
    /// # Panics
    ///
    /// Panics if any stop is negative or non-finite.
    pub fn from_samples(stops: &[f64], break_even: BreakEven) -> Result<Self, Error> {
        if stops.is_empty() {
            return Err(Error::EmptyTrace);
        }
        Ok(Self { moments: ConstrainedMoments::from_samples(stops, break_even.seconds()) })
    }

    /// Analytic moments from a stop-length distribution.
    #[must_use]
    pub fn from_distribution<D: StopDistribution + ?Sized>(
        dist: &D,
        break_even: BreakEven,
    ) -> Self {
        Self { moments: ConstrainedMoments::from_distribution(dist, break_even.seconds()) }
    }

    /// The underlying `(μ_B⁻, q_B⁺)` pair.
    #[must_use]
    pub fn moments(&self) -> &ConstrainedMoments {
        &self.moments
    }

    /// The break-even interval.
    #[must_use]
    pub fn break_even(&self) -> BreakEven {
        BreakEven::new(self.moments.break_even)
            .unwrap_or_else(|_| unreachable!("validated at construction"))
    }

    /// Expected offline cost `μ_B⁻ + q_B⁺·B` (eq. (13)) — the denominator
    /// of every CR here.
    #[must_use]
    pub fn expected_offline_cost(&self) -> f64 {
        self.moments.expected_offline_cost()
    }

    /// Worst-case expected costs of the four vertex strategies.
    #[must_use]
    pub fn vertex_costs(&self) -> VertexCosts {
        let b = self.moments.break_even;
        let mu = self.moments.mu_b_minus;
        let q = self.moments.q_b_plus;
        let offline = self.expected_offline_cost();
        VertexCosts {
            n_rand: e_ratio() * offline,
            toi: b,
            det: mu + 2.0 * q * b,
            b_det: self.b_det_vertex(),
        }
    }

    /// The b-DET vertex `b* = √(μ_B⁻·B/q_B⁺)` with cost eq. (35), when
    /// the feasibility condition (36) holds and `b* ≤ B`; `None` otherwise
    /// (then b-DET is dominated and never selected, as argued in
    /// Section 4.4).
    #[must_use]
    pub fn b_det_vertex(&self) -> Option<BDetVertex> {
        let b = self.moments.break_even;
        let mu = self.moments.mu_b_minus;
        let q = self.moments.q_b_plus;
        if mu <= 0.0 || q <= 0.0 || q >= 1.0 {
            return None;
        }
        // Condition (36): μ/B < (1−q)²/q  ⟺  b* > μ/(1−q).
        if mu / b >= (1.0 - q) * (1.0 - q) / q {
            return None;
        }
        let b_star = (mu * b / q).sqrt();
        if b_star > b {
            // Unconstrained minimizer beyond B: on [0,B] the cost is
            // decreasing there, so b-DET degenerates to DET and adds
            // nothing.
            return None;
        }
        let cost = (mu.sqrt() + (q * b).sqrt()).powi(2);
        Some(BDetVertex { b: b_star, cost })
    }

    /// Selects the vertex with the smallest worst-case expected cost.
    ///
    /// Ties are resolved in the order DET, TOI, b-DET, N-Rand (preferring
    /// the simpler deterministic strategies).
    #[must_use]
    pub fn optimal_choice(&self) -> StrategyChoice {
        let v = self.vertex_costs();
        let mut best = StrategyChoice::Det;
        let mut best_cost = v.det;
        if v.toi < best_cost {
            best = StrategyChoice::Toi;
            best_cost = v.toi;
        }
        if let Some(bd) = v.b_det {
            if bd.cost < best_cost {
                best = StrategyChoice::BDet { b: bd.b };
                best_cost = bd.cost;
            }
        }
        if v.n_rand < best_cost {
            best = StrategyChoice::NRand;
        }
        best
    }

    /// The smallest worst-case expected online cost achievable with the
    /// given statistics.
    #[must_use]
    pub fn worst_case_cost(&self) -> f64 {
        self.vertex_costs().min_cost()
    }

    /// The minimax worst-case expected competitive ratio — the value
    /// plotted in Figure 1(b) (and eq. (38) in the b-DET region). Defined
    /// as `1` when the expected offline cost is zero (all stops have zero
    /// length).
    #[must_use]
    pub fn worst_case_cr(&self) -> f64 {
        let offline = self.expected_offline_cost();
        if offline == 0.0 {
            return 1.0;
        }
        self.worst_case_cost() / offline
    }

    /// Worst-case expected CR of one specific strategy under these
    /// statistics (the four curves of Figure 2). Defined as `1` when the
    /// expected offline cost is zero.
    #[must_use]
    pub fn worst_case_cr_of(&self, choice: StrategyChoice) -> f64 {
        let offline = self.expected_offline_cost();
        if offline == 0.0 {
            return 1.0;
        }
        let v = self.vertex_costs();
        let cost = match choice {
            StrategyChoice::Det => v.det,
            StrategyChoice::Toi => v.toi,
            StrategyChoice::NRand => v.n_rand,
            StrategyChoice::BDet { b } => {
                // Worst-case cost of an arbitrary b (eq. (34)): the
                // adversary puts the short mass at {0, b}.
                let bb = self.moments.break_even;
                let mu = self.moments.mu_b_minus;
                let q = self.moments.q_b_plus;
                if b <= 0.0 {
                    bb // degenerates to TOI
                } else {
                    (b + bb) * (mu / b + q)
                }
            }
        };
        cost / offline
    }

    /// Builds the minimax-optimal online policy.
    #[must_use]
    pub fn optimal_policy(&self) -> ProposedPolicy {
        ProposedPolicy::new(*self)
    }

    /// Builds the concrete policy for a given vertex choice.
    #[must_use]
    pub fn policy_for(&self, choice: StrategyChoice) -> Box<dyn Policy + Send + Sync> {
        let be = self.break_even();
        match choice {
            StrategyChoice::Det => Box::new(Det::new(be)),
            StrategyChoice::Toi => Box::new(Toi::new(be)),
            StrategyChoice::NRand => Box::new(NRand::new(be)),
            StrategyChoice::BDet { b } => Box::new(
                BDet::new(be, b.min(be.seconds()))
                    .unwrap_or_else(|_| unreachable!("b* <= B by construction")),
            ),
        }
    }

    /// Independently re-derives the vertex selection by solving the
    /// Section-4.4 linear program (objective (32), constraints (33)) with
    /// the general-purpose simplex solver, instead of the closed-form
    /// argmin.
    ///
    /// The returned masses are the atom weights `(α, β, γ)` of eq. (18);
    /// the remaining `1 − α − β − γ` goes to the continuous N-Rand-shaped
    /// density. `expected_cost` equals [`Self::worst_case_cost`] up to
    /// solver tolerance — asserted by tests and the `ablation_lp` bench.
    #[must_use]
    pub fn solve_lp(&self) -> LpSolution {
        let b = self.moments.break_even;
        let mu = self.moments.mu_b_minus;
        let q = self.moments.q_b_plus;
        let offline = mu + q * b;
        let base = e_ratio() * offline;

        // K coefficients of objective (32).
        let k_alpha = b - base;
        let k_beta = (mu + 2.0 * q * b) - base;
        let k_gamma = match self.b_det_vertex() {
            Some(v) => v.cost - base,
            // No feasible b-DET atom: bar γ from entering by pricing it
            // like DET at b = B (dominated, so it never improves the LP).
            None => (2.0 * mu + 2.0 * q * b) - base,
        };

        let mut lp = LinearProgram::minimize(vec![k_alpha, k_beta, k_gamma]);
        lp.constrain(vec![1.0, 1.0, 1.0], Relation::Le, 1.0);
        let sol = lp.solve().unwrap_or_else(|_| unreachable!("vertex LP is bounded and feasible"));
        LpSolution {
            alpha: sol.x[0],
            beta: sol.x[1],
            gamma: sol.x[2],
            expected_cost: base + sol.objective,
        }
    }
}

/// Result of solving the full constrained minimax as a matrix game
/// (see [`ConstrainedStats::solve_minimax_game`]).
#[derive(Debug, Clone, PartialEq)]
pub struct MinimaxSolution {
    /// The game value: the minimax worst-case expected online cost over
    /// the discretized strategy spaces.
    pub value: f64,
    /// The optimal threshold distribution: `(threshold, probability)`
    /// pairs with non-negligible mass, sorted by threshold.
    pub threshold_distribution: Vec<(f64, f64)>,
}

impl ConstrainedStats {
    /// Solves the paper's minimax problem (eq. (16)) *numerically*, with
    /// no structural assumptions: both players are discretized onto grids
    /// (thresholds on `[0, B]`, adversary support on `[0, B)` ∪ `{B}`,
    /// each enriched with the closed-form `b*`), the adversary's moment
    /// constraints are dualized, and the resulting single LP is solved
    /// with the general simplex solver.
    ///
    /// Formulation: with cost matrix `C[i][j] = cost_online(x_i, y_j)`
    /// and adversary polytope `Q = {q ≥ 0 : 1ᵀq = 1, Σ_{y<B} y·q = μ_B⁻,
    /// Σ_{y≥B} q = q_B⁺}`, LP duality on the inner maximization gives
    ///
    /// ```text
    /// min_{p ≥ 0, w}  w·(1, μ, q)   s.t.  Aᵀw ≥ Cᵀp,  1ᵀp = 1
    /// ```
    ///
    /// The value is an *achievable* worst-case expected cost: the optimal
    /// `p` is supported on the adversary grid, and against a finite mixed
    /// threshold policy the continuum adversary gains nothing over the
    /// grid (its worst response concentrates on `{0} ∪ supp(p) ∪ {B}`).
    /// It therefore never exceeds the paper's four-vertex
    /// [`Self::worst_case_cost`] — and, notably, it is **strictly below
    /// it** in parts of the b-DET and N-Rand regions: the paper's
    /// solution family (eq. (18), derived by forcing the cost curve to be
    /// affine in `y`) is not fully general, and a richer threshold
    /// mixture can do better against moment-constrained adversaries. In
    /// the DET and TOI regions the game recovers the pure vertex exactly.
    /// See the `minimax_game_*` tests, which certify the improved
    /// strategies through the independent
    /// [`crate::adversary::worst_distribution_lp`] path.
    ///
    /// # Panics
    ///
    /// Panics if `grid < 4`, or if `μ_B⁻` is so close to its cap
    /// `(1 − q_B⁺)·B` that no distribution on the adversary grid realizes
    /// it (the grid's largest short-stop support point is
    /// `B·(grid−1)/grid`; stay below that fraction of the cap).
    #[must_use]
    pub fn solve_minimax_game(&self, grid: usize) -> MinimaxSolution {
        assert!(grid >= 4, "grid must have at least 4 points");
        let b = self.moments.break_even;
        let mu = self.moments.mu_b_minus;
        let q = self.moments.q_b_plus;
        let grid_cap = (1.0 - q) * b * (grid as f64 - 1.0) / grid as f64;
        assert!(
            mu <= grid_cap + 1e-12,
            "mu_B- = {mu} not representable on a {grid}-point adversary grid \
             (cap {grid_cap}); refine the grid or move off the boundary"
        );

        // Threshold grid on [0, B] and adversary grid on [0, B) ∪ {B},
        // both enriched with b* so the vertex optimum is representable.
        let mut xs: Vec<f64> = (0..=grid).map(|i| b * i as f64 / grid as f64).collect();
        let mut ys: Vec<f64> = (0..grid).map(|i| b * i as f64 / grid as f64).collect();
        ys.push(b);
        if let Some(v) = self.b_det_vertex() {
            xs.push(v.b);
            ys.push(v.b);
        }
        xs.sort_by(f64::total_cmp);
        xs.dedup();
        ys.sort_by(f64::total_cmp);
        ys.dedup();

        let be = self.break_even();
        let n_p = xs.len();
        // Variables: p_0..p_{n_p−1}, then w⁺ (3), then w⁻ (3).
        let n_vars = n_p + 6;
        let mut objective = vec![0.0; n_vars];
        let d = [1.0, mu, q];
        for r in 0..3 {
            objective[n_p + r] = d[r];
            objective[n_p + 3 + r] = -d[r];
        }
        let mut lp = numeric::simplex::LinearProgram::minimize(objective);
        // For each adversary point y_j: Σ_r A[r][j]·w_r − Σ_i C[i][j]·p_i ≥ 0.
        for &y in &ys {
            let mut row = vec![0.0; n_vars];
            for (i, &x) in xs.iter().enumerate() {
                row[i] = -be.online_cost(x, y);
            }
            // A rows: total mass, short partial mean, long mass.
            let a = [1.0, if y < b { y } else { 0.0 }, if y >= b { 1.0 } else { 0.0 }];
            for r in 0..3 {
                row[n_p + r] = a[r];
                row[n_p + 3 + r] = -a[r];
            }
            lp.constrain(row, numeric::simplex::Relation::Ge, 0.0);
        }
        // Probability normalization of the online player.
        let mut norm = vec![0.0; n_vars];
        norm[..n_p].fill(1.0);
        lp.constrain(norm, numeric::simplex::Relation::Eq, 1.0);

        let sol =
            lp.solve().unwrap_or_else(|_| unreachable!("minimax game LP is feasible and bounded"));
        let threshold_distribution = xs
            .iter()
            .zip(&sol.x[..n_p])
            .filter(|&(_, &p)| p > 1e-9)
            .map(|(&x, &p)| (x, p))
            .collect();
        MinimaxSolution { value: sol.objective, threshold_distribution }
    }
}

/// One adversary moment constraint for [`moment_constrained_cr_game`]:
/// `E[yᵖ] = value`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MomentConstraint {
    /// The moment order `p > 0` (1 = mean, 2 = second raw moment, …).
    pub power: f64,
    /// The prescribed value of `E[yᵖ]`.
    pub value: f64,
}

/// Solves the Appendix-B style problem numerically for an arbitrary set
/// of raw-moment constraints:
/// `min_P max_q E[cost]/E[offline]` over all stop-length distributions
/// with `E[y^{p_k}] = v_k` for every constraint (or over *all*
/// distributions if none are given), with thresholds restricted to
/// `[0, B]` (Appendix A).
///
/// The inner maximization has a ratio objective; the Charnes–Cooper
/// transformation makes it an LP, whose dual folds into a single
/// minimization jointly with the threshold distribution:
///
/// ```text
/// min  w₁  s.t.  offline(y)·w₁ + Σₖ y^{p_k}·uₖ + w₀ ≥ Σᵢ pᵢ·cost(xᵢ, y) ∀y
///                −Σₖ vₖ·uₖ − w₀ ≥ 0,   Σᵢ pᵢ = 1,  p ≥ 0
/// ```
///
/// The value `w₁` is the worst-case expected CR directly. With no
/// constraints this recovers Karlin et al.'s `e/(e−1)` (a strong check of
/// the machinery). Appendix B claims neither the first nor the second
/// moment can improve on N-Rand; this solver tests those claims instance
/// by instance — and (like the eq.-(18) family restriction, see
/// [`ConstrainedStats::solve_minimax_game`]) finds they hold only for
/// large moments: small ones admit tailored mixtures that beat `e/(e−1)`.
///
/// # Panics
///
/// Panics if `grid < 4`, any power is non-positive, or any value is
/// non-positive/non-finite or unrealizable on the capped adversary
/// support (`y ≤ 50·B`).
#[must_use]
pub fn moment_constrained_cr_game(
    break_even: BreakEven,
    constraints: &[MomentConstraint],
    grid: usize,
) -> MinimaxSolution {
    use numeric::simplex::{LinearProgram, Relation};
    assert!(grid >= 4, "grid must have at least 4 points");
    let b = break_even.seconds();
    for c in constraints {
        assert!(c.power.is_finite() && c.power > 0.0, "moment power must be positive");
        assert!(
            c.value.is_finite() && c.value > 0.0,
            "moment value must be positive, got {}",
            c.value
        );
        assert!(
            c.value < (50.0 * b).powf(c.power),
            "moment E[y^{}] = {} exceeds the adversary support cap of (50B)^p",
            c.power,
            c.value
        );
    }
    let xs: Vec<f64> = (0..=grid).map(|i| b * i as f64 / grid as f64).collect();
    // Adversary support: (0, B] grid (y = 0 contributes nothing to either
    // cost and only relaxes the moment constraints, which mass at the
    // smallest grid point approximates), plus a geometric tail beyond B —
    // needed to realize moments larger than the support on [0, B] allows
    // (cost and offline are flat past B, the moment budgets are not).
    let mut ys: Vec<f64> = (1..=grid).map(|i| b * i as f64 / grid as f64).collect();
    for &mult in &[1.5, 2.0, 3.0, 5.0, 10.0, 20.0, 50.0] {
        ys.push(mult * b);
    }
    ys.sort_by(f64::total_cmp);
    ys.dedup();

    let n_p = xs.len();
    let n_c = constraints.len();
    // Variables: p…, then (w1, u_1..u_k, w0) split into ± parts.
    let n_w = 2 + n_c;
    let n_vars = n_p + 2 * n_w;
    let mut objective = vec![0.0; n_vars];
    objective[n_p] = 1.0; // w1+
    objective[n_p + n_w] = -1.0; // w1−
    let mut lp = LinearProgram::minimize(objective);
    for &y in &ys {
        let mut row = vec![0.0; n_vars];
        for (i, &x) in xs.iter().enumerate() {
            row[i] = -break_even.online_cost(x, y);
        }
        let offline = break_even.offline_cost(y);
        row[n_p] = offline;
        row[n_p + n_w] = -offline;
        for (k, c) in constraints.iter().enumerate() {
            let moment = y.powf(c.power);
            row[n_p + 1 + k] = moment;
            row[n_p + n_w + 1 + k] = -moment;
        }
        row[n_p + 1 + n_c] = 1.0;
        row[n_p + n_w + 1 + n_c] = -1.0;
        lp.constrain(row, Relation::Ge, 0.0);
    }
    // Dual feasibility of the Charnes–Cooper scale variable t.
    let mut t_row = vec![0.0; n_vars];
    for (k, c) in constraints.iter().enumerate() {
        t_row[n_p + 1 + k] = -c.value;
        t_row[n_p + n_w + 1 + k] = c.value;
    }
    t_row[n_p + 1 + n_c] = -1.0;
    t_row[n_p + n_w + 1 + n_c] = 1.0;
    lp.constrain(t_row, Relation::Ge, 0.0);
    // Normalize p.
    let mut norm = vec![0.0; n_vars];
    norm[..n_p].fill(1.0);
    lp.constrain(norm, Relation::Eq, 1.0);

    let sol = lp
        .solve()
        .unwrap_or_else(|_| unreachable!("moment-constrained CR game is feasible and bounded"));
    let threshold_distribution =
        xs.iter().zip(&sol.x[..n_p]).filter(|&(_, &p)| p > 1e-9).map(|(&x, &p)| (x, p)).collect();
    MinimaxSolution { value: sol.objective, threshold_distribution }
}

/// [`moment_constrained_cr_game`] with just a first-moment (mean)
/// constraint — the exact Appendix-B setting — or unconstrained if `mean`
/// is `None`.
///
/// # Panics
///
/// Same conditions as [`moment_constrained_cr_game`].
#[must_use]
pub fn mean_constrained_cr_game(
    break_even: BreakEven,
    mean: Option<f64>,
    grid: usize,
) -> MinimaxSolution {
    match mean {
        None => moment_constrained_cr_game(break_even, &[], grid),
        Some(m) => {
            assert!(m.is_finite() && m > 0.0, "mean must be positive, got {m}");
            assert!(
                m < 50.0 * break_even.seconds(),
                "mean {m} exceeds the adversary support cap of 50·B = {}",
                50.0 * break_even.seconds()
            );
            moment_constrained_cr_game(
                break_even,
                &[MomentConstraint { power: 1.0, value: m }],
                grid,
            )
        }
    }
}

/// The paper's proposed online algorithm: the minimax-optimal vertex
/// strategy for the instance's `(μ_B⁻, q_B⁺)`.
///
/// Implements [`Policy`] by delegating to the selected concrete strategy,
/// so it can be dropped anywhere a DET/TOI/N-Rand policy is used (fleet
/// evaluation, the engine controller, …).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProposedPolicy {
    stats: ConstrainedStats,
    choice: StrategyChoice,
    inner: Inner,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Inner {
    Det(Det),
    Toi(Toi),
    BDet(BDet),
    NRand(NRand),
}

impl ProposedPolicy {
    /// Builds the optimal policy for the given constrained instance.
    #[must_use]
    pub fn new(stats: ConstrainedStats) -> Self {
        let choice = stats.optimal_choice();
        let be = stats.break_even();
        let inner = match choice {
            StrategyChoice::Det => Inner::Det(Det::new(be)),
            StrategyChoice::Toi => Inner::Toi(Toi::new(be)),
            StrategyChoice::NRand => Inner::NRand(NRand::new(be)),
            StrategyChoice::BDet { b } => Inner::BDet(
                BDet::new(be, b.min(be.seconds()))
                    .unwrap_or_else(|_| unreachable!("b* <= B by construction")),
            ),
        };
        Self { stats, choice, inner }
    }

    /// Which vertex strategy was selected.
    #[must_use]
    pub fn choice(&self) -> StrategyChoice {
        self.choice
    }

    /// The constrained instance the policy was derived from.
    #[must_use]
    pub fn stats(&self) -> &ConstrainedStats {
        &self.stats
    }

    /// Guaranteed worst-case expected cost over all distributions
    /// consistent with the instance's statistics.
    #[must_use]
    pub fn worst_case_cost(&self) -> f64 {
        self.stats.worst_case_cost()
    }

    /// Guaranteed worst-case expected competitive ratio.
    #[must_use]
    pub fn worst_case_cr(&self) -> f64 {
        self.stats.worst_case_cr()
    }

    /// The decision-trace event for a threshold drawn from this policy:
    /// the selected vertex, the `(μ_B⁻, q_B⁺)` statistics it was derived
    /// from, and its worst-case cost bound. Instrumentation sites share
    /// this so every `StopDecision` in a trace carries the same payload
    /// shape.
    #[must_use]
    pub fn trace_decision(&self, threshold_b: f64) -> obsv::TraceEvent {
        let m = self.stats.moments();
        obsv::TraceEvent::StopDecision {
            vertex: self.choice.name().into(),
            threshold_b,
            mu_b_minus: Some(m.mu_b_minus),
            q_b_plus: Some(m.q_b_plus),
            chosen_cost_bound: Some(self.worst_case_cost()),
        }
    }

    fn as_policy(&self) -> &dyn Policy {
        match &self.inner {
            Inner::Det(p) => p,
            Inner::Toi(p) => p,
            Inner::BDet(p) => p,
            Inner::NRand(p) => p,
        }
    }
}

impl Policy for ProposedPolicy {
    fn name(&self) -> &'static str {
        "Proposed"
    }

    fn break_even(&self) -> BreakEven {
        self.stats.break_even()
    }

    fn expected_cost(&self, y: f64) -> f64 {
        self.as_policy().expected_cost(y)
    }

    fn sample_threshold(&self, rng: &mut dyn RngCore) -> f64 {
        self.as_policy().sample_threshold(rng)
    }

    fn threshold_cdf(&self, x: f64) -> f64 {
        self.as_policy().threshold_cdf(x)
    }

    fn total_cost_on(&self, summary: &StopSummary) -> f64 {
        self.as_policy().total_cost_on(summary)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numeric::approx_eq;

    fn stats(b: f64, mu: f64, q: f64) -> ConstrainedStats {
        ConstrainedStats::new(BreakEven::new(b).unwrap(), mu, q).unwrap()
    }

    #[test]
    fn vertex_costs_formulas() {
        let s = stats(28.0, 5.0, 0.3);
        let v = s.vertex_costs();
        let offline = 5.0 + 0.3 * 28.0;
        assert!(approx_eq(v.n_rand, e_ratio() * offline, 1e-12));
        assert_eq!(v.toi, 28.0);
        assert!(approx_eq(v.det, 5.0 + 2.0 * 0.3 * 28.0, 1e-12));
        let bd = v.b_det.expect("feasible here");
        assert!(approx_eq(bd.b, (5.0 * 28.0 / 0.3f64).sqrt(), 1e-12));
        assert!(approx_eq(bd.cost, (5.0f64.sqrt() + (0.3 * 28.0f64).sqrt()).powi(2), 1e-12));
    }

    #[test]
    fn monitor_vertex_argmin_mirrors_optimal_choice() {
        // The streaming monitor reimplements the four-vertex argmin
        // (`obsv` cannot depend on this crate); pin the two to each other
        // over a dense grid of the feasible (μ, q) region, including the
        // boundaries where the b-DET vertex appears and disappears.
        let b = 28.0;
        for qi in 0..=40 {
            let q = f64::from(qi) / 40.0;
            for mi in 0..=40 {
                let mu = (1.0 - q) * b * f64::from(mi) / 40.0;
                let s = stats(b, mu, q);
                let choice = s.optimal_choice();
                let (name, cost) = obsv::monitor::vertex_argmin(mu, q, b);
                assert_eq!(choice.name(), name, "diverged at mu={mu} q={q}");
                assert!(
                    approx_eq(cost, s.worst_case_cost(), 1e-9),
                    "cost diverged at mu={mu} q={q}: {cost} vs {}",
                    s.worst_case_cost()
                );
            }
        }
    }

    #[test]
    fn bdet_vertex_requires_condition_36() {
        // μ/B >= (1−q)²/q → no b-DET.
        // With B=28, q=0.5: cap is 0.5·28 = 14 for condition.
        let s = stats(28.0, 14.0, 0.5); // μ/B = 0.5, (1−q)²/q = 0.5 → equal, fails (strict)
        assert!(s.b_det_vertex().is_none());
        let s2 = stats(28.0, 13.0, 0.5);
        // μ/B = 0.464 < 0.5 → condition holds; b* = sqrt(13·28/0.5) = 26.98 ≤ 28 ✓
        assert!(s2.b_det_vertex().is_some());
    }

    #[test]
    fn bdet_vertex_requires_b_star_below_b() {
        // b* > B ⟺ μ > qB. With μ=10, q=0.2, B=28: qB=5.6 < 10 → b*>B.
        let s = stats(28.0, 10.0, 0.2);
        assert!(s.b_det_vertex().is_none());
    }

    #[test]
    fn bdet_vertex_degenerate_moments() {
        assert!(stats(28.0, 0.0, 0.3).b_det_vertex().is_none());
        assert!(stats(28.0, 5.0, 0.0).b_det_vertex().is_none());
        assert!(stats(28.0, 0.0, 1.0).b_det_vertex().is_none());
    }

    #[test]
    fn light_traffic_selects_det() {
        // q → 0: offline ≈ μ, DET cost ≈ μ → CR ≈ 1; nothing beats it.
        let s = stats(28.0, 10.0, 0.01);
        assert_eq!(s.optimal_choice(), StrategyChoice::Det);
        assert!(s.worst_case_cr() < 1.1);
    }

    #[test]
    fn heavy_traffic_selects_toi() {
        // q → 1: TOI cost B = offline → CR → 1.
        let s = stats(28.0, 0.05, 0.95);
        assert_eq!(s.optimal_choice(), StrategyChoice::Toi);
        assert!(s.worst_case_cr() < 1.1);
    }

    #[test]
    fn moderate_traffic_selects_nrand() {
        // Mid-range μ, q (μ ≈ 0.3·q·B): the randomized e/(e−1) bound wins
        // over TOI (cost 28 > 20.2), DET (22.5), and b-DET (23.5).
        let s = stats(28.0, 2.94, 0.35);
        assert_eq!(s.optimal_choice(), StrategyChoice::NRand);
        assert!(approx_eq(s.worst_case_cr(), e_ratio(), 1e-12));
    }

    #[test]
    fn tiny_short_stops_select_bdet() {
        // The Figure-2(c) regime: μ = 0.02·B.
        let s = stats(28.0, 0.02 * 28.0, 0.3);
        match s.optimal_choice() {
            StrategyChoice::BDet { b } => {
                assert!(b > 0.0 && b < 28.0);
            }
            other => panic!("expected b-DET, got {other:?}"),
        }
        // And it strictly beats the other three.
        let v = s.vertex_costs();
        let bd = v.b_det.unwrap();
        assert!(bd.cost < v.n_rand && bd.cost < v.det && bd.cost < v.toi);
    }

    #[test]
    fn proposed_cr_never_exceeds_e_ratio_or_two() {
        // The proposed algorithm combines the best of all candidates, so
        // its worst-case CR is at most min(e/(e−1), CR_DET) ≤ e/(e−1).
        for qi in 0..=20 {
            let q = qi as f64 / 20.0;
            for mi in 0..=20 {
                let mu = mi as f64 / 20.0 * (1.0 - q) * 28.0;
                let s = stats(28.0, mu, q);
                let cr = s.worst_case_cr();
                assert!(cr <= e_ratio() + 1e-12, "cr {cr} at mu={mu}, q={q}");
                assert!(cr >= 1.0 - 1e-12, "cr {cr} < 1 at mu={mu}, q={q}");
            }
        }
    }

    #[test]
    fn proposed_is_min_of_vertex_crs() {
        for &(mu, q) in &[(1.0, 0.1), (5.0, 0.3), (0.5, 0.6), (20.0, 0.05), (0.0, 0.5)] {
            let s = stats(28.0, mu, q);
            let v = s.vertex_costs();
            let mut min = v.n_rand.min(v.toi).min(v.det);
            if let Some(bd) = v.b_det {
                min = min.min(bd.cost);
            }
            assert!(approx_eq(s.worst_case_cost(), min, 1e-12));
        }
    }

    #[test]
    fn eq38_in_bdet_region() {
        let s = stats(28.0, 0.05 * 28.0, 0.6);
        if let StrategyChoice::BDet { .. } = s.optimal_choice() {
            let mu = 0.05f64 * 28.0;
            let qb = 0.6f64 * 28.0;
            let want = (mu.sqrt() + qb.sqrt()).powi(2) / (mu + qb);
            assert!(approx_eq(s.worst_case_cr(), want, 1e-12));
        } else {
            panic!("expected b-DET region");
        }
    }

    #[test]
    fn zero_offline_cost_edge_case() {
        let s = stats(28.0, 0.0, 0.0);
        assert_eq!(s.worst_case_cr(), 1.0);
        assert_eq!(s.optimal_choice(), StrategyChoice::Det); // cost 0 tie → DET
        assert_eq!(s.worst_case_cost(), 0.0);
    }

    #[test]
    fn lp_matches_closed_form_on_grid() {
        for qi in 0..=10 {
            let q = qi as f64 / 10.0;
            for mi in 0..=10 {
                let mu = mi as f64 / 10.0 * (1.0 - q) * 28.0;
                let s = stats(28.0, mu, q);
                let lp = s.solve_lp();
                assert!(
                    approx_eq(lp.expected_cost, s.worst_case_cost(), 1e-7),
                    "LP {} vs closed form {} at mu={mu}, q={q}",
                    lp.expected_cost,
                    s.worst_case_cost()
                );
                // Masses are a valid sub-probability vector.
                assert!(lp.alpha >= -1e-9 && lp.beta >= -1e-9 && lp.gamma >= -1e-9);
                assert!(lp.alpha + lp.beta + lp.gamma <= 1.0 + 1e-9);
            }
        }
    }

    #[test]
    fn lp_vertex_identifies_choice() {
        // In the b-DET regime the LP puts all mass on γ.
        let s = stats(28.0, 0.02 * 28.0, 0.3);
        let lp = s.solve_lp();
        assert!(approx_eq(lp.gamma, 1.0, 1e-9), "gamma = {}", lp.gamma);
        // In the N-Rand regime, no atoms at all.
        let s2 = stats(28.0, 2.94, 0.35);
        let lp2 = s2.solve_lp();
        assert!(lp2.alpha + lp2.beta + lp2.gamma < 1e-9);
    }

    #[test]
    fn from_samples_and_distribution_agree() {
        use stopmodel::dist::Empirical;
        let stops = [3.0, 5.0, 40.0, 12.0, 80.0, 7.0];
        let be = BreakEven::new(28.0).unwrap();
        let a = ConstrainedStats::from_samples(&stops, be).unwrap();
        let e = Empirical::from_samples(&stops).unwrap();
        let b = ConstrainedStats::from_distribution(&e, be);
        assert!(approx_eq(a.moments().mu_b_minus, b.moments().mu_b_minus, 1e-12));
        assert!(approx_eq(a.moments().q_b_plus, b.moments().q_b_plus, 1e-12));
    }

    #[test]
    fn from_samples_rejects_empty() {
        let be = BreakEven::new(28.0).unwrap();
        assert_eq!(ConstrainedStats::from_samples(&[], be), Err(Error::EmptyTrace));
    }

    #[test]
    fn proposed_policy_delegates() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let s = stats(28.0, 2.94, 0.35); // N-Rand region
        let p = s.optimal_policy();
        assert_eq!(p.name(), "Proposed");
        assert_eq!(p.choice(), StrategyChoice::NRand);
        assert!(approx_eq(p.expected_cost(10.0), e_ratio() * 10.0, 1e-12));
        let mut rng = StdRng::seed_from_u64(1);
        let x = p.sample_threshold(&mut rng);
        assert!((0.0..=28.0).contains(&x));
        assert!(approx_eq(p.worst_case_cr(), e_ratio(), 1e-12));
    }

    #[test]
    fn policy_for_builds_each_kind() {
        let s = stats(28.0, 5.0, 0.3);
        assert_eq!(s.policy_for(StrategyChoice::Det).name(), "DET");
        assert_eq!(s.policy_for(StrategyChoice::Toi).name(), "TOI");
        assert_eq!(s.policy_for(StrategyChoice::NRand).name(), "N-Rand");
        assert_eq!(s.policy_for(StrategyChoice::BDet { b: 10.0 }).name(), "b-DET");
    }

    #[test]
    fn worst_case_cr_of_matches_vertices() {
        let s = stats(28.0, 5.0, 0.3);
        let off = s.expected_offline_cost();
        assert!(approx_eq(s.worst_case_cr_of(StrategyChoice::NRand), e_ratio(), 1e-12));
        assert!(approx_eq(s.worst_case_cr_of(StrategyChoice::Toi), 28.0 / off, 1e-12));
        assert!(approx_eq(
            s.worst_case_cr_of(StrategyChoice::Det),
            (5.0 + 2.0 * 0.3 * 28.0) / off,
            1e-12
        ));
        // eq. (34) at the optimal b equals eq. (35)/offline.
        let bd = s.b_det_vertex().unwrap();
        assert!(approx_eq(
            s.worst_case_cr_of(StrategyChoice::BDet { b: bd.b }),
            bd.cost / off,
            1e-12
        ));
        // b = 0 degenerates to TOI.
        assert!(approx_eq(s.worst_case_cr_of(StrategyChoice::BDet { b: 0.0 }), 28.0 / off, 1e-12));
    }

    #[test]
    fn optimal_b_minimizes_eq34() {
        // Scan b over (0, B] and confirm the closed-form b* is the argmin.
        let s = stats(28.0, 1.0, 0.3);
        let bd = s.b_det_vertex().unwrap();
        let best_scan = (1..=2800)
            .map(|i| {
                let b = i as f64 / 100.0;
                (b, s.worst_case_cr_of(StrategyChoice::BDet { b }))
            })
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        assert!((best_scan.0 - bd.b).abs() < 0.02, "scan argmin {} vs b* {}", best_scan.0, bd.b);
    }

    #[test]
    fn minimax_game_matches_closed_form_det_region() {
        // Light traffic: closed form picks DET; the game LP must find the
        // same value with all mass at x = B.
        let s = stats(28.0, 10.0, 0.01);
        let sol = s.solve_minimax_game(40);
        assert!(
            approx_eq(sol.value, s.worst_case_cost(), 0.01),
            "game {} vs closed form {}",
            sol.value,
            s.worst_case_cost()
        );
        let mass_at_b: f64 = sol
            .threshold_distribution
            .iter()
            .filter(|(x, _)| (*x - 28.0).abs() < 1e-9)
            .map(|(_, p)| p)
            .sum();
        assert!(mass_at_b > 0.99, "mass at B: {mass_at_b}");
    }

    #[test]
    fn minimax_game_matches_closed_form_toi_region() {
        let s = stats(28.0, 0.05, 0.95);
        let sol = s.solve_minimax_game(40);
        assert!(approx_eq(sol.value, s.worst_case_cost(), 0.01));
        // All mass at the smallest thresholds.
        let low_mass: f64 = sol
            .threshold_distribution
            .iter()
            .filter(|(x, _)| *x < 28.0 / 40.0 + 1e-9)
            .map(|(_, p)| p)
            .sum();
        assert!(low_mass > 0.99, "mass near 0: {low_mass}");
    }

    /// Certifies a game solution through the independent adversary-LP
    /// path: builds the mixed policy and lets `worst_distribution_lp`
    /// attack it on a fine grid.
    fn certify_game_value(s: &ConstrainedStats, sol: &MinimaxSolution) -> f64 {
        use crate::adversary::worst_distribution_lp;
        use crate::policy::MixedThreshold;
        let policy =
            MixedThreshold::new(s.break_even(), sol.threshold_distribution.clone()).unwrap();
        let (_, certified) = worst_distribution_lp(&policy, s.moments(), 1120).unwrap();
        certified
    }

    #[test]
    fn minimax_game_beats_paper_vertices_in_bdet_region() {
        // FINDING: the paper's four-vertex solution is not minimax-optimal
        // here — a general threshold mixture achieves a strictly lower
        // worst-case expected cost against the same adversary class.
        let s = stats(28.0, 0.02 * 28.0, 0.3);
        let sol = s.solve_minimax_game(40);
        assert!(
            sol.value < s.worst_case_cost() * 0.95,
            "game {} vs paper's four-vertex {}",
            sol.value,
            s.worst_case_cost()
        );
        // Independent certification: attacking the mixed policy with the
        // adversary LP on a much finer grid cannot push its cost
        // meaningfully above the game value.
        let certified = certify_game_value(&s, &sol);
        assert!(
            certified <= sol.value * (1.0 + 0.02),
            "certified {certified} vs game value {}",
            sol.value
        );
    }

    #[test]
    fn minimax_game_at_most_e_ratio_in_nrand_region() {
        // In the N-Rand regime the moment-constrained adversary is weaker
        // than the unconstrained one, so the true game value sits at or
        // below e/(e−1)·offline; the optimal strategy is a genuine spread.
        let s = stats(28.0, 2.94, 0.35);
        let sol = s.solve_minimax_game(80);
        let paper = s.worst_case_cost();
        assert!(sol.value <= paper * (1.0 + 1e-9), "game {} vs paper {paper}", sol.value);
        assert!(sol.value > 0.9 * paper, "game {} suspiciously low vs {paper}", sol.value);
        assert!(
            sol.threshold_distribution.len() > 5,
            "support size {}",
            sol.threshold_distribution.len()
        );
        let certified = certify_game_value(&s, &sol);
        assert!(certified <= sol.value * (1.0 + 0.02), "certified {certified}");
    }

    #[test]
    fn mean_game_unconstrained_recovers_e_ratio() {
        let sol = mean_constrained_cr_game(BreakEven::SSV, None, 64);
        assert!(
            (sol.value - e_ratio()).abs() < 0.02,
            "unconstrained game CR {} vs e/(e-1)",
            sol.value
        );
        // The optimal strategy is a genuine mixture (discretized N-Rand).
        assert!(sol.threshold_distribution.len() > 10);
    }

    #[test]
    fn mean_game_appendix_b_claim_fails_for_small_means() {
        let b = BreakEven::SSV;
        let unconstrained = mean_constrained_cr_game(b, None, 48);
        let small = mean_constrained_cr_game(b, Some(2.0), 48);
        assert!(
            small.value < unconstrained.value - 0.03,
            "small-mean game {} vs unconstrained {}",
            small.value,
            unconstrained.value
        );
    }

    #[test]
    fn mean_game_constraint_worthless_for_large_means() {
        let b = BreakEven::SSV;
        let unconstrained = mean_constrained_cr_game(b, None, 48);
        for &m in &[25.0, 40.0, 200.0] {
            let sol = mean_constrained_cr_game(b, Some(m), 48);
            assert!(
                (sol.value - unconstrained.value).abs() < 1e-6,
                "mean {m}: {} vs {}",
                sol.value,
                unconstrained.value
            );
        }
    }

    #[test]
    fn mean_game_monotone_in_mean() {
        let b = BreakEven::SSV;
        let mut prev = 0.0;
        for &m in &[1.0, 3.0, 8.0, 15.0] {
            let v = mean_constrained_cr_game(b, Some(m), 48).value;
            assert!(v + 1e-9 >= prev, "not monotone at mean {m}");
            prev = v;
        }
    }

    #[test]
    fn second_moment_game_matches_appendix_b_shape() {
        // Appendix B also claims the second moment yields N-Rand; like the
        // first moment, that holds only for large values.
        let b = BreakEven::SSV;
        let unconstrained = moment_constrained_cr_game(b, &[], 48);
        let small =
            moment_constrained_cr_game(b, &[MomentConstraint { power: 2.0, value: 25.0 }], 48);
        assert!(
            small.value < unconstrained.value - 0.05,
            "small second moment: {} vs {}",
            small.value,
            unconstrained.value
        );
        let large =
            moment_constrained_cr_game(b, &[MomentConstraint { power: 2.0, value: 4000.0 }], 48);
        assert!((large.value - unconstrained.value).abs() < 1e-6);
    }

    #[test]
    fn joint_moment_constraints_help_more_than_single() {
        let b = BreakEven::SSV;
        let mean_only =
            moment_constrained_cr_game(b, &[MomentConstraint { power: 1.0, value: 5.0 }], 48);
        let joint = moment_constrained_cr_game(
            b,
            &[
                MomentConstraint { power: 1.0, value: 5.0 },
                MomentConstraint { power: 2.0, value: 100.0 },
            ],
            48,
        );
        assert!(
            joint.value <= mean_only.value + 1e-9,
            "joint {} vs mean-only {}",
            joint.value,
            mean_only.value
        );
        assert!(joint.value < mean_only.value - 0.01, "joint should strictly help here");
    }

    #[test]
    #[should_panic(expected = "moment value must be positive")]
    fn moment_game_rejects_bad_value() {
        let _ = moment_constrained_cr_game(
            BreakEven::SSV,
            &[MomentConstraint { power: 2.0, value: -1.0 }],
            16,
        );
    }

    #[test]
    #[should_panic(expected = "mean must be positive")]
    fn mean_game_rejects_bad_mean() {
        let _ = mean_constrained_cr_game(BreakEven::SSV, Some(-1.0), 16);
    }

    #[test]
    #[should_panic(expected = "exceeds the adversary support cap")]
    fn mean_game_rejects_unrepresentable_mean() {
        let _ = mean_constrained_cr_game(BreakEven::SSV, Some(28.0 * 60.0), 16);
    }

    #[test]
    fn strategy_choice_names() {
        assert_eq!(StrategyChoice::Det.name(), "DET");
        assert_eq!(StrategyChoice::Toi.name(), "TOI");
        assert_eq!(StrategyChoice::NRand.name(), "N-Rand");
        assert_eq!(StrategyChoice::BDet { b: 1.0 }.name(), "b-DET");
    }
}
