//! Online estimation of `(μ_B⁻, q_B⁺)` and the adaptive proposed policy.
//!
//! The paper assumes the constrained statistics are known; a deployed
//! stop-start controller has to estimate them from the vehicle's own
//! history, *before* each decision. [`MomentEstimator`] maintains the
//! plug-in estimates incrementally (optionally over a sliding window, so
//! the policy tracks changing traffic), and [`AdaptiveController`] runs
//! the honest online loop: decide a threshold from past stops only, pay
//! the cost, then observe the stop's true length.
//!
//! Until the first stop is observed the controller falls back to N-Rand,
//! whose `e/(e−1)` guarantee needs no statistics at all.

use crate::analysis::empirical_cr_with;
use crate::constrained::ConstrainedStats;
use crate::cost::BreakEven;
use crate::obs;
use crate::policy::{NRand, Policy};
use crate::summary::StopSummary;
use crate::Error;
use rand::RngCore;
use std::collections::VecDeque;

/// Incremental plug-in estimator of the constrained moments.
#[derive(Debug, Clone)]
pub struct MomentEstimator {
    break_even: BreakEven,
    window: Option<usize>,
    buffer: VecDeque<f64>,
    short_sum: f64,
    long_count: usize,
}

impl MomentEstimator {
    /// An estimator over the full history.
    #[must_use]
    pub fn new(break_even: BreakEven) -> Self {
        Self { break_even, window: None, buffer: VecDeque::new(), short_sum: 0.0, long_count: 0 }
    }

    /// An estimator over a sliding window of the last `window` stops.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    #[must_use]
    pub fn with_window(break_even: BreakEven, window: usize) -> Self {
        assert!(window > 0, "window must be non-empty");
        Self {
            break_even,
            window: Some(window),
            buffer: VecDeque::with_capacity(window),
            short_sum: 0.0,
            long_count: 0,
        }
    }

    /// Number of stops currently contributing to the estimate.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buffer.len()
    }

    /// Whether no stops have been observed yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buffer.is_empty()
    }

    /// Records one completed stop.
    ///
    /// # Panics
    ///
    /// Panics if `y` is negative or non-finite. Sensor-facing callers
    /// should prefer [`MomentEstimator::try_observe`], which rejects such
    /// readings with a typed error instead.
    pub fn observe(&mut self, y: f64) {
        assert!(y.is_finite() && y >= 0.0, "stop length must be finite and >= 0, got {y}");
        obs::metrics().observations_accepted.inc();
        if let (Some(w), Some(&front)) = (self.window, self.buffer.front()) {
            if self.buffer.len() == w {
                self.buffer.pop_front();
                if front >= self.break_even.seconds() {
                    self.long_count -= 1;
                } else {
                    self.short_sum -= front;
                }
            }
        }
        self.buffer.push_back(y);
        if y >= self.break_even.seconds() {
            self.long_count += 1;
        } else {
            self.short_sum += y;
        }
        if obsv::tracer::observing() {
            let (mu_b_minus, q_b_plus) = self.trace_moments();
            obsv::tracer::emit(obsv::TraceEvent::EstimatorUpdate {
                observed_s: y,
                accepted: true,
                len: self.buffer.len() as u64,
                mu_b_minus,
                q_b_plus,
            });
        }
    }

    /// Non-panicking [`MomentEstimator::observe`]: rejects a negative or
    /// non-finite reading with [`Error::InvalidStop`], leaving the
    /// estimator state untouched.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidStop`] if `y` is negative or non-finite.
    pub fn try_observe(&mut self, y: f64) -> Result<(), Error> {
        if !(y.is_finite() && y >= 0.0) {
            obs::metrics().observations_rejected.inc();
            if obsv::tracer::observing() {
                let (mu_b_minus, q_b_plus) = self.trace_moments();
                obsv::tracer::emit(obsv::TraceEvent::EstimatorUpdate {
                    observed_s: y,
                    accepted: false,
                    len: self.buffer.len() as u64,
                    mu_b_minus,
                    q_b_plus,
                });
            }
            return Err(Error::InvalidStop { bits: y.to_bits() });
        }
        self.observe(y);
        Ok(())
    }

    /// The current plug-in moments as trace-event payload (`None` before
    /// the first observation).
    fn trace_moments(&self) -> (Option<f64>, Option<f64>) {
        match self.stats() {
            Some(s) => {
                let m = s.moments();
                (Some(m.mu_b_minus), Some(m.q_b_plus))
            }
            None => (None, None),
        }
    }

    /// Discards all observed history, returning the estimator to its
    /// just-constructed state (window configuration is kept). The
    /// degradation ladder uses this to forget statistics accumulated from
    /// a sensor stream that later proved untrustworthy.
    pub fn clear(&mut self) {
        self.buffer.clear();
        self.short_sum = 0.0;
        self.long_count = 0;
    }

    /// Current constrained statistics, or `None` before the first stop.
    #[must_use]
    pub fn stats(&self) -> Option<ConstrainedStats> {
        if self.buffer.is_empty() {
            return None;
        }
        let n = self.buffer.len() as f64;
        let q = self.long_count as f64 / n;
        // Sliding-window subtraction leaves O(ε) residue in the running
        // sum; clamp to the feasible region.
        let mu_cap = (1.0 - q) * self.break_even.seconds();
        let mu = (self.short_sum / n).clamp(0.0, mu_cap);
        Some(
            ConstrainedStats::new(self.break_even, mu, q)
                .unwrap_or_else(|_| unreachable!("clamped plug-in estimates are feasible")),
        )
    }

    /// The break-even interval this estimator classifies against.
    #[must_use]
    pub fn break_even(&self) -> BreakEven {
        self.break_even
    }
}

/// A full copy of a [`MomentEstimator`]'s mutable state, as exported by
/// [`MomentEstimator::export_state`] and re-installed by
/// [`MomentEstimator::from_state`] — the unit of crash-safe persistence
/// for the scalar estimator.
///
/// The short-stop sum is carried **raw** (unclamped): sliding-window
/// subtraction leaves an O(ε) residue in the running sum, and restoring
/// the clamped value instead would diverge from an uninterrupted run on
/// the next eviction. Round-tripping the raw sum keeps resumed decisions
/// bit-identical.
#[derive(Debug, Clone, PartialEq)]
pub struct EstimatorState {
    /// Sliding window (`None` = full history), as configured.
    pub window: Option<usize>,
    /// The buffered stops, oldest first.
    pub buffer: Vec<f64>,
    /// Raw running short-stop sum `Σy·1{y<B}` (unclamped).
    pub short_sum: f64,
    /// Long-stop count `#{y ≥ B}`.
    pub long_count: usize,
}

impl MomentEstimator {
    /// Exports the estimator's complete mutable state for persistence
    /// (the inverse of [`MomentEstimator::from_state`]).
    #[must_use]
    pub fn export_state(&self) -> EstimatorState {
        EstimatorState {
            window: self.window,
            buffer: self.buffer.iter().copied().collect(),
            short_sum: self.short_sum,
            long_count: self.long_count,
        }
    }

    /// Reconstructs an estimator from a persisted [`EstimatorState`],
    /// validating its invariants against `break_even`.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidPersistedState`] if the state is inconsistent: a
    /// zero window, a buffer longer than the window, a non-finite or
    /// negative buffered stop, a non-finite short-stop sum, or a long
    /// count that disagrees with the buffer's actual `y ≥ B` census.
    pub fn from_state(break_even: BreakEven, state: &EstimatorState) -> Result<Self, Error> {
        if state.window == Some(0) {
            return Err(Error::InvalidPersistedState { reason: "window must be non-empty" });
        }
        if let Some(w) = state.window {
            if state.buffer.len() > w {
                return Err(Error::InvalidPersistedState {
                    reason: "buffer longer than the configured window",
                });
            }
        }
        if state.buffer.iter().any(|y| !(y.is_finite() && *y >= 0.0)) {
            return Err(Error::InvalidPersistedState {
                reason: "buffered stop is negative or non-finite",
            });
        }
        if !state.short_sum.is_finite() {
            return Err(Error::InvalidPersistedState { reason: "non-finite short-stop sum" });
        }
        let long = state.buffer.iter().filter(|&&y| y >= break_even.seconds()).count();
        if long != state.long_count {
            return Err(Error::InvalidPersistedState {
                reason: "long count disagrees with the buffered stops",
            });
        }
        Ok(Self {
            break_even,
            window: state.window,
            buffer: state.buffer.iter().copied().collect(),
            short_sum: state.short_sum,
            long_count: state.long_count,
        })
    }
}

/// A full copy of an [`AdaptiveController`]'s mutable state (estimator
/// state plus the cold-start gate), for crash-safe persistence.
#[derive(Debug, Clone, PartialEq)]
pub struct ControllerState {
    /// The wrapped estimator's state.
    pub estimator: EstimatorState,
    /// Stops required before trusting the estimate.
    pub min_history: usize,
}

impl AdaptiveController {
    /// Exports the controller's complete mutable state for persistence
    /// (the inverse of [`AdaptiveController::from_state`]).
    #[must_use]
    pub fn export_state(&self) -> ControllerState {
        ControllerState { estimator: self.estimator.export_state(), min_history: self.min_history }
    }

    /// Reconstructs a controller from a persisted [`ControllerState`].
    ///
    /// # Errors
    ///
    /// [`Error::InvalidPersistedState`] if `min_history` is zero or the
    /// estimator state fails [`MomentEstimator::from_state`] validation.
    pub fn from_state(break_even: BreakEven, state: &ControllerState) -> Result<Self, Error> {
        if state.min_history == 0 {
            return Err(Error::InvalidPersistedState { reason: "min history must be positive" });
        }
        Ok(Self {
            estimator: MomentEstimator::from_state(break_even, &state.estimator)?,
            cold_start: NRand::new(break_even),
            min_history: state.min_history,
        })
    }
}

/// Summary of an adaptive run over a trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveOutcome {
    /// Total realized online cost (idle-equivalent seconds).
    pub online_cost: f64,
    /// Total offline-optimal cost.
    pub offline_cost: f64,
    /// Realized competitive ratio. Convention for `offline_cost == 0`
    /// (every stop had zero length): `1.0` if the online cost is also
    /// zero, `f64::INFINITY` otherwise — a degenerate trace must not hide
    /// real paid cost behind a perfect-looking ratio. The raw costs are
    /// always carried alongside.
    pub cr: f64,
    /// Stops processed.
    pub stops: usize,
}

/// The honest online controller: estimates from the past, decides, pays,
/// then learns the stop's true length.
#[derive(Debug, Clone)]
pub struct AdaptiveController {
    estimator: MomentEstimator,
    cold_start: NRand,
    /// Stops required before trusting the estimate (before that, N-Rand).
    min_history: usize,
}

impl AdaptiveController {
    /// A controller using the full history, trusting it from the first
    /// observed stop.
    #[must_use]
    pub fn new(break_even: BreakEven) -> Self {
        Self {
            estimator: MomentEstimator::new(break_even),
            cold_start: NRand::new(break_even),
            min_history: 1,
        }
    }

    /// Uses a sliding window of the last `window` stops.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    #[must_use]
    pub fn with_window(break_even: BreakEven, window: usize) -> Self {
        Self {
            estimator: MomentEstimator::with_window(break_even, window),
            cold_start: NRand::new(break_even),
            min_history: 1,
        }
    }

    /// Requires `n` observed stops before switching from the N-Rand cold
    /// start to the estimated proposed policy; returns `self`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn min_history(mut self, n: usize) -> Self {
        assert!(n > 0, "min history must be positive");
        self.min_history = n;
        self
    }

    /// The current estimator state.
    #[must_use]
    pub fn estimator(&self) -> &MomentEstimator {
        &self.estimator
    }

    /// Discards the estimator's observed history (keeping the window
    /// configuration), returning the controller to its cold-start state.
    /// See [`MomentEstimator::clear`].
    pub fn reset_estimator(&mut self) {
        self.estimator.clear();
    }

    /// Chooses the idle threshold for the *next* stop, from history alone.
    ///
    /// When the [`obsv::global`] registry is enabled, each decision
    /// records its latency (`skirental.estimator.decide_seconds`), the
    /// drawn threshold, and which of the four vertex policies was
    /// selected (`skirental.policy.*`); when the decision tracer
    /// ([`obsv::tracer`]) is active, a per-stop `StopDecision` event
    /// captures the chosen vertex together with the estimator state
    /// behind it. Instrumentation consumes no RNG and does not alter
    /// the draw.
    pub fn decide(&self, rng: &mut dyn RngCore) -> f64 {
        let m = obs::metrics();
        let span = m.decide_seconds.start();
        let x = if let Some(stats) =
            (self.estimator.len() >= self.min_history).then(|| self.estimator.stats()).flatten()
        {
            let policy = stats.optimal_policy();
            m.count_choice(policy.choice());
            let x = policy.sample_threshold(rng);
            if obsv::tracer::observing() {
                obsv::tracer::emit(policy.trace_decision(x));
            }
            x
        } else {
            m.decisions_cold_start.inc();
            let x = self.cold_start.sample_threshold(rng);
            if obsv::tracer::observing() {
                obsv::tracer::emit(obsv::TraceEvent::StopDecision {
                    vertex: self.cold_start.name().into(),
                    threshold_b: x,
                    mu_b_minus: None,
                    q_b_plus: None,
                    chosen_cost_bound: None,
                });
            }
            x
        };
        m.threshold_s.record(x);
        span.finish();
        x
    }

    /// Records a completed stop.
    ///
    /// # Panics
    ///
    /// Panics if `y` is negative or non-finite. Sensor-facing callers
    /// should prefer [`AdaptiveController::try_observe`].
    pub fn observe(&mut self, y: f64) {
        self.estimator.observe(y);
    }

    /// Non-panicking [`AdaptiveController::observe`]: rejects a negative
    /// or non-finite reading with [`Error::InvalidStop`], leaving the
    /// estimator untouched.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidStop`] if `y` is negative or non-finite.
    pub fn try_observe(&mut self, y: f64) -> Result<(), Error> {
        self.estimator.try_observe(y)
    }

    /// Runs the full online loop over a trace: for each stop, decide →
    /// pay → observe.
    ///
    /// # Errors
    ///
    /// Returns [`Error::EmptyTrace`] if `stops` is empty.
    pub fn run(&mut self, stops: &[f64], rng: &mut dyn RngCore) -> Result<AdaptiveOutcome, Error> {
        if stops.is_empty() {
            return Err(Error::EmptyTrace);
        }
        let b = self.estimator.break_even;
        let mut online = 0.0;
        let mut offline = 0.0;
        for (i, &y) in stops.iter().enumerate() {
            obsv::tracer::begin_stop(i as u64);
            let x = self.decide(rng);
            let cost = if x.is_infinite() { y } else { b.online_cost(x, y) };
            online += cost;
            let off = b.offline_cost(y);
            offline += off;
            if obsv::tracer::observing() {
                obsv::tracer::emit(obsv::TraceEvent::StopCost {
                    threshold_b: x,
                    stop_s: y,
                    online_s: cost,
                    offline_s: off,
                    restarted: !x.is_infinite() && y >= x,
                });
            }
            obsv::risk::record_current(cost, off);
            self.observe(y);
        }
        let cr = realized_cr(online, offline);
        obs::metrics().record_cr(cr);
        Ok(AdaptiveOutcome { online_cost: online, offline_cost: offline, cr, stops: stops.len() })
    }
}

/// The realized-competitive-ratio convention shared by every outcome in
/// this crate: `online / offline`, with the `offline == 0` degenerate case
/// mapped to `1.0` when nothing was paid and `+∞` when real cost was
/// (see [`AdaptiveOutcome::cr`]).
#[must_use]
pub fn realized_cr(online_cost: f64, offline_cost: f64) -> f64 {
    if offline_cost == 0.0 {
        if online_cost == 0.0 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        online_cost / offline_cost
    }
}

/// Convenience: the oracle (in-sample) CR of the proposed policy on the
/// same trace — what the adaptive run converges to with enough history.
///
/// # Errors
///
/// Returns [`Error::EmptyTrace`] if `stops` is empty.
pub fn oracle_cr(stops: &[f64], break_even: BreakEven) -> Result<f64, Error> {
    let summary = StopSummary::new(stops)?;
    let policy = summary.constrained_stats(break_even)?.optimal_policy();
    Ok(empirical_cr_with(&policy, &summary))
}

#[cfg(test)]
mod tests {
    use super::*;
    use numeric::approx_eq;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use stopmodel::dist::{LogNormal, Mixture, Pareto, StopDistribution};

    fn b28() -> BreakEven {
        BreakEven::new(28.0).unwrap()
    }

    #[test]
    fn estimator_matches_batch() {
        let stops = [3.0, 40.0, 7.0, 28.0, 12.0];
        let mut est = MomentEstimator::new(b28());
        for &y in &stops {
            est.observe(y);
        }
        let inc = est.stats().unwrap();
        let batch = ConstrainedStats::from_samples(&stops, b28()).unwrap();
        assert!(approx_eq(inc.moments().mu_b_minus, batch.moments().mu_b_minus, 1e-12));
        assert!(approx_eq(inc.moments().q_b_plus, batch.moments().q_b_plus, 1e-12));
        assert_eq!(est.len(), 5);
        assert!(!est.is_empty());
    }

    #[test]
    fn estimator_empty_state() {
        let est = MomentEstimator::new(b28());
        assert!(est.stats().is_none());
        assert!(est.is_empty());
    }

    #[test]
    fn window_slides() {
        let mut est = MomentEstimator::with_window(b28(), 3);
        for &y in &[100.0, 100.0, 100.0, 1.0, 2.0, 3.0] {
            est.observe(y);
        }
        // Only [1, 2, 3] remain: all short.
        let s = est.stats().unwrap();
        assert_eq!(est.len(), 3);
        assert!(approx_eq(s.moments().mu_b_minus, 2.0, 1e-12));
        assert_eq!(s.moments().q_b_plus, 0.0);
    }

    #[test]
    fn window_slides_mixed() {
        let mut est = MomentEstimator::with_window(b28(), 2);
        est.observe(5.0);
        est.observe(50.0);
        est.observe(10.0); // evicts the 5
        let s = est.stats().unwrap();
        assert!(approx_eq(s.moments().mu_b_minus, 5.0, 1e-12)); // (10)/2
        assert!(approx_eq(s.moments().q_b_plus, 0.5, 1e-12));
    }

    #[test]
    fn cold_start_uses_nrand() {
        let ctl = AdaptiveController::new(b28());
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let x = ctl.decide(&mut rng);
            assert!((0.0..=28.0).contains(&x), "cold-start threshold {x}");
        }
    }

    #[test]
    fn adaptive_converges_to_oracle_on_iid_stream() {
        let dist = Mixture::new(vec![
            (0.9, Box::new(LogNormal::new(2.0, 0.8).unwrap()) as _),
            (0.1, Box::new(Pareto::new(45.0, 1.1).unwrap()) as _),
        ])
        .unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let stops: Vec<f64> = (0..5000).map(|_| dist.sample(&mut rng)).collect();
        let mut ctl = AdaptiveController::new(b28());
        let out = ctl.run(&stops, &mut rng).unwrap();
        let oracle = oracle_cr(&stops, b28()).unwrap();
        assert!((out.cr - oracle).abs() < 0.08, "adaptive {} vs oracle {oracle}", out.cr);
        assert_eq!(out.stops, 5000);
        assert!(out.cr >= 1.0 - 1e-9);
    }

    #[test]
    fn adaptive_tracks_regime_change_with_window() {
        // Light traffic then heavy traffic: the windowed controller must
        // end up making heavy-traffic decisions (short thresholds).
        let mut rng = StdRng::seed_from_u64(3);
        let light = LogNormal::new(1.5, 0.5).unwrap();
        let heavy = Pareto::new(50.0, 1.2).unwrap();
        let mut stops: Vec<f64> = (0..500).map(|_| light.sample(&mut rng)).collect();
        stops.extend((0..500).map(|_| heavy.sample(&mut rng)));
        let mut ctl = AdaptiveController::with_window(b28(), 100);
        let _ = ctl.run(&stops, &mut rng).unwrap();
        // After the heavy block, q̂ ≈ 1 → TOI-like decisions.
        let s = ctl.estimator().stats().unwrap();
        assert!(s.moments().q_b_plus > 0.9, "q̂ = {}", s.moments().q_b_plus);
        let mut short_decisions = 0;
        for _ in 0..20 {
            if ctl.decide(&mut rng) < 1.0 {
                short_decisions += 1;
            }
        }
        assert_eq!(short_decisions, 20, "should turn off (almost) immediately");
    }

    #[test]
    fn min_history_extends_cold_start() {
        let mut ctl = AdaptiveController::new(b28()).min_history(10);
        let mut rng = StdRng::seed_from_u64(4);
        // After 5 huge stops, a trusting controller would go TOI (x = 0);
        // with min_history 10 it must still randomize à la N-Rand.
        for _ in 0..5 {
            ctl.observe(1000.0);
        }
        let mut nonzero = 0;
        for _ in 0..20 {
            if ctl.decide(&mut rng) > 0.0 {
                nonzero += 1;
            }
        }
        assert!(nonzero > 15, "still in cold start: {nonzero}");
    }

    #[test]
    fn run_rejects_empty() {
        let mut ctl = AdaptiveController::new(b28());
        let mut rng = StdRng::seed_from_u64(5);
        assert!(matches!(ctl.run(&[], &mut rng), Err(Error::EmptyTrace)));
    }

    #[test]
    fn zero_offline_cr_is_one() {
        let mut ctl = AdaptiveController::new(b28());
        let mut rng = StdRng::seed_from_u64(6);
        let out = ctl.run(&[0.0, 0.0, 0.0], &mut rng).unwrap();
        assert_eq!(out.cr, 1.0);
        assert_eq!(out.offline_cost, 0.0);
    }

    #[test]
    #[should_panic(expected = "window must be non-empty")]
    fn zero_window_rejected() {
        let _ = MomentEstimator::with_window(b28(), 0);
    }

    #[test]
    fn zero_offline_with_paid_cost_is_infinite() {
        // All stops have zero length, but a TOI-leaning controller that
        // shuts off pays the restart; the ratio must not pretend 1.0.
        assert_eq!(realized_cr(5.0, 0.0), f64::INFINITY);
        assert_eq!(realized_cr(0.0, 0.0), 1.0);
        assert!((realized_cr(3.0, 2.0) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn try_observe_rejects_garbage_and_leaves_state() {
        let mut est = MomentEstimator::new(b28());
        est.observe(10.0);
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -1.0] {
            let err = est.try_observe(bad).unwrap_err();
            assert_eq!(err, Error::InvalidStop { bits: bad.to_bits() });
            assert!(!err.to_string().is_empty());
        }
        assert_eq!(est.len(), 1, "rejected readings must not count");
        est.try_observe(4.0).unwrap();
        assert_eq!(est.len(), 2);

        let mut ctl = AdaptiveController::new(b28());
        assert!(ctl.try_observe(f64::NAN).is_err());
        assert!(ctl.try_observe(7.0).is_ok());
        assert_eq!(ctl.estimator().len(), 1);
    }

    #[test]
    fn estimator_state_roundtrip() {
        let mut est = MomentEstimator::with_window(b28(), 3);
        for &y in &[5.0, 50.0, 8.0, 2.0] {
            est.observe(y);
        }
        let state = est.export_state();
        let mut restored = MomentEstimator::from_state(b28(), &state).unwrap();
        assert_eq!(restored.export_state(), state);
        let sa = est.stats().unwrap();
        let sb = restored.stats().unwrap();
        let (a, b) = (sa.moments(), sb.moments());
        assert_eq!(a.mu_b_minus.to_bits(), b.mu_b_minus.to_bits());
        assert_eq!(a.q_b_plus.to_bits(), b.q_b_plus.to_bits());
        // Future evolution is identical (same raw sums, same evictions).
        est.observe(44.0);
        restored.observe(44.0);
        assert_eq!(est.export_state(), restored.export_state());
    }

    #[test]
    fn estimator_from_state_rejects_inconsistencies() {
        let mut est = MomentEstimator::with_window(b28(), 3);
        est.observe(5.0);
        est.observe(50.0);
        let good = est.export_state();
        let cases = [
            EstimatorState { window: Some(0), ..good.clone() },
            EstimatorState { window: Some(1), ..good.clone() },
            EstimatorState { buffer: vec![5.0, f64::NAN], ..good.clone() },
            EstimatorState { buffer: vec![5.0, -1.0], ..good.clone() },
            EstimatorState { short_sum: f64::INFINITY, ..good.clone() },
            EstimatorState { long_count: 2, ..good.clone() },
        ];
        for bad in cases {
            assert!(
                matches!(
                    MomentEstimator::from_state(b28(), &bad),
                    Err(Error::InvalidPersistedState { .. })
                ),
                "accepted {bad:?}"
            );
        }
        assert!(MomentEstimator::from_state(b28(), &good).is_ok());
    }

    #[test]
    fn controller_state_roundtrip_resumes_decisions() {
        let mut ctl = AdaptiveController::with_window(b28(), 5).min_history(3);
        let mut rng = StdRng::seed_from_u64(7);
        let stops = [3.0, 40.0, 7.0, 28.0, 12.0];
        ctl.run(&stops, &mut rng).unwrap();
        let state = ctl.export_state();
        let restored = AdaptiveController::from_state(b28(), &state).unwrap();
        assert_eq!(restored.export_state(), state);
        // Same RNG stream position → same decisions.
        let mut r1 = crate::batch::CounterRng::for_stream(1, 0);
        let mut r2 = r1;
        for _ in 0..10 {
            assert_eq!(ctl.decide(&mut r1).to_bits(), restored.decide(&mut r2).to_bits());
        }
        assert!(matches!(
            AdaptiveController::from_state(b28(), &ControllerState { min_history: 0, ..state }),
            Err(Error::InvalidPersistedState { .. })
        ));
    }

    #[test]
    fn clear_resets_to_fresh_state() {
        let mut est = MomentEstimator::with_window(b28(), 3);
        for &y in &[5.0, 50.0, 8.0] {
            est.observe(y);
        }
        est.clear();
        assert!(est.is_empty());
        assert!(est.stats().is_none());
        assert_eq!(est.break_even().seconds(), 28.0);
        // Refilling after clear behaves like a fresh estimator.
        est.observe(2.0);
        let s = est.stats().unwrap();
        assert!(approx_eq(s.moments().mu_b_minus, 2.0, 1e-12));
        assert_eq!(s.moments().q_b_plus, 0.0);
    }
}
