//! Risk profiles — beyond the expected competitive ratio.
//!
//! The paper evaluates strategies by worst-case and mean CR; a driver also
//! cares about the *distribution* of per-stop outcomes ("how often does
//! the system shut down just before I move?"). [`RiskProfile`] samples
//! per-stop pointwise competitive ratios (eq. (4)) of a policy under a
//! stop-length distribution and summarizes their spread: mean, median,
//! tail quantiles, the fraction of regret-free stops, and the frequency of
//! the classic annoyance — shutting down only to restart within a couple
//! of seconds.

use crate::policy::Policy;
use numeric::stats::{quantile_sorted, RunningStats};
use rand::RngCore;
use stopmodel::dist::StopDistribution;

/// Distributional summary of per-stop outcomes for a policy.
#[derive(Debug, Clone, PartialEq)]
pub struct RiskProfile {
    /// Mean pointwise competitive ratio.
    pub mean_cr: f64,
    /// Median pointwise competitive ratio.
    pub median_cr: f64,
    /// 95th percentile of the pointwise competitive ratio.
    pub p95_cr: f64,
    /// Largest observed pointwise competitive ratio.
    pub max_cr: f64,
    /// Fraction of stops handled optimally (pointwise cr within 1e-9
    /// of 1).
    pub optimal_fraction: f64,
    /// Fraction of stops where the engine was shut down and the driver
    /// resumed within `annoyance_window` seconds — the "it just turned
    /// off!" event.
    pub annoyance_fraction: f64,
    /// The annoyance window used, seconds.
    pub annoyance_window: f64,
    /// Stops sampled.
    pub samples: usize,
}

/// Samples `n` stops from `dist`, runs `policy` on each (drawing a fresh
/// threshold), and summarizes the pointwise outcomes.
///
/// # Panics
///
/// Panics if `n == 0` or `annoyance_window` is negative/non-finite.
#[must_use]
pub fn risk_profile<D: StopDistribution + ?Sized>(
    policy: &dyn Policy,
    dist: &D,
    n: usize,
    annoyance_window: f64,
    rng: &mut dyn RngCore,
) -> RiskProfile {
    assert!(n > 0, "need at least one sample");
    assert!(
        annoyance_window.is_finite() && annoyance_window >= 0.0,
        "annoyance window must be non-negative, got {annoyance_window}"
    );
    let b = policy.break_even();
    let mut crs = Vec::with_capacity(n);
    let mut stats = RunningStats::new();
    let mut optimal = 0usize;
    let mut annoyances = 0usize;
    for _ in 0..n {
        let y = dist.sample(rng);
        let x = policy.sample_threshold(rng);
        let (cost, shut_down) =
            if x.is_infinite() { (y, false) } else { (b.online_cost(x, y), y >= x) };
        let offline = b.offline_cost(y);
        let cr = if offline == 0.0 { 1.0 } else { cost / offline };
        if (cr - 1.0).abs() < 1e-9 {
            optimal += 1;
        }
        // Annoyance: the engine went off and came back within the window.
        if shut_down && y - x <= annoyance_window {
            annoyances += 1;
        }
        stats.add(cr);
        crs.push(cr);
    }
    crs.sort_by(f64::total_cmp);
    RiskProfile {
        mean_cr: stats.mean(),
        median_cr: quantile_sorted(&crs, 0.5),
        p95_cr: quantile_sorted(&crs, 0.95),
        max_cr: stats.max().unwrap_or_else(|| unreachable!("n > 0 is asserted above")),
        optimal_fraction: optimal as f64 / n as f64,
        annoyance_fraction: annoyances as f64 / n as f64,
        annoyance_window,
        samples: n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{Det, NRand, Nev, Toi};
    use crate::{BreakEven, ConstrainedStats};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use stopmodel::dist::{LogNormal, Mixture, Pareto};

    fn b28() -> BreakEven {
        BreakEven::new(28.0).unwrap()
    }

    fn workload() -> Mixture {
        Mixture::new(vec![
            (0.9, Box::new(LogNormal::new(2.2, 0.8).unwrap()) as _),
            (0.1, Box::new(Pareto::new(45.0, 1.1).unwrap()) as _),
        ])
        .unwrap()
    }

    #[test]
    fn basic_shape_and_ordering() {
        let d = workload();
        let mut rng = StdRng::seed_from_u64(1);
        let p = risk_profile(&Det::new(b28()), &d, 20_000, 3.0, &mut rng);
        assert_eq!(p.samples, 20_000);
        assert!(p.mean_cr >= 1.0);
        assert!(p.median_cr <= p.p95_cr && p.p95_cr <= p.max_cr);
        // DET is pointwise 2-competitive.
        assert!(p.max_cr <= 2.0 + 1e-9, "max {}", p.max_cr);
        // Most stops are short and handled optimally.
        assert!(p.optimal_fraction > 0.5, "optimal {}", p.optimal_fraction);
    }

    #[test]
    fn nev_never_annoys_but_has_unbounded_tail() {
        let d = workload();
        let mut rng = StdRng::seed_from_u64(2);
        let p = risk_profile(&Nev::new(b28()), &d, 20_000, 3.0, &mut rng);
        assert_eq!(p.annoyance_fraction, 0.0);
        assert!(p.max_cr > 5.0, "NEV tail should blow up, got {}", p.max_cr);
    }

    #[test]
    fn toi_annoys_most() {
        // Shutting down immediately turns every just-short stop into an
        // annoyance; DET, waiting 28 s, rarely does on this body. Under
        // this mixture the true ratio is ≈ 4.9 (P(y ≤ 3) ≈ 7.6 % vs
        // P(28 ≤ y ≤ 31) ≈ 1.5 %), so assert a 3× separation to leave
        // sampling headroom.
        let d = workload();
        let mut rng = StdRng::seed_from_u64(3);
        let toi = risk_profile(&Toi::new(b28()), &d, 20_000, 3.0, &mut rng);
        let det = risk_profile(&Det::new(b28()), &d, 20_000, 3.0, &mut rng);
        assert!(
            toi.annoyance_fraction > 3.0 * det.annoyance_fraction.max(1e-4),
            "TOI {} vs DET {}",
            toi.annoyance_fraction,
            det.annoyance_fraction
        );
    }

    #[test]
    fn proposed_balances_tail_and_annoyance() {
        let d = workload();
        let b = b28();
        let stats = ConstrainedStats::from_distribution(&d, b);
        let proposed = stats.optimal_policy();
        let mut rng = StdRng::seed_from_u64(4);
        let prop = risk_profile(&proposed, &d, 20_000, 3.0, &mut rng);
        let nev = risk_profile(&Nev::new(b), &d, 20_000, 3.0, &mut rng);
        assert!(prop.max_cr <= 2.0 + 1e-9);
        assert!(prop.mean_cr < nev.mean_cr, "prop {} vs NEV {}", prop.mean_cr, nev.mean_cr);
    }

    #[test]
    fn randomized_policy_spreads_annoyance() {
        let d = workload();
        let mut rng = StdRng::seed_from_u64(5);
        let p = risk_profile(&NRand::new(b28()), &d, 20_000, 3.0, &mut rng);
        assert!(p.annoyance_fraction > 0.0 && p.annoyance_fraction < 0.5);
        // Pointwise cr of N-Rand can exceed 2 (a single draw can be
        // unlucky) but stays below 1 + B/offline's scale here.
        assert!(p.max_cr > 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn rejects_zero_samples() {
        let d = workload();
        let mut rng = StdRng::seed_from_u64(6);
        let _ = risk_profile(&Det::new(b28()), &d, 0, 3.0, &mut rng);
    }
}
