//! Worst-case stop-length distributions from the paper's proofs.
//!
//! Two constructions are used in the analysis:
//!
//! * the **short-mass adversary** behind eq. (34): against a deterministic
//!   threshold `x`, the worst distribution consistent with `(μ_B⁻, q_B⁺)`
//!   puts all short mass at `{0, x}` (so every non-zero short stop pays the
//!   full `x + B`) and the long mass at `B`;
//! * the **Appendix-A adversary**: against a threshold `c > B`, mass is
//!   placed only on `[0, B] ∪ {c}`, which shows any such threshold is
//!   dominated by DET — hence the optimal strategy space is `[0, B]`.
//!
//! Both return [`Discrete`] distributions so expected costs can be
//! evaluated exactly and the inequalities of the paper asserted in tests.

use crate::cost::BreakEven;
use crate::Error;
use stopmodel::dist::Discrete;
use stopmodel::ConstrainedMoments;

/// Builds the worst-case distribution against a deterministic threshold
/// `x ∈ (0, B]`, consistent with the given `(μ_B⁻, q_B⁺)`:
/// atoms `(0, 1 − q − μ/x)`, `(x, μ/x)`, `(B, q)`.
///
/// Under this distribution the expected cost of the threshold-`x` policy is
/// exactly `(x + B)(μ_B⁻/x + q_B⁺)` — eq. (34).
///
/// # Errors
///
/// Returns [`Error::InfeasibleAdversary`] when `x ≤ 0`, or when the short
/// mass cannot be placed at `x` because `μ_B⁻/x > 1 − q_B⁺` (i.e.
/// `x < μ_B⁻/(1 − q_B⁺)`, the regime where the paper proves b-DET is never
/// selected).
pub fn short_mass_adversary(moments: &ConstrainedMoments, x: f64) -> Result<Discrete, Error> {
    let b = moments.break_even;
    let mu = moments.mu_b_minus;
    let q = moments.q_b_plus;
    if !(x.is_finite() && x > 0.0 && x <= b) {
        return Err(Error::InfeasibleAdversary { reason: "threshold must lie in (0, B]" });
    }
    let mass_at_x = mu / x;
    let mass_at_zero = 1.0 - q - mass_at_x;
    if mass_at_zero < -1e-12 {
        return Err(Error::InfeasibleAdversary {
            reason: "short mass exceeds 1 - q (need x >= mu / (1 - q))",
        });
    }
    let mut atoms = vec![(x, mass_at_x), (b, q)];
    if mass_at_zero > 0.0 {
        atoms.push((0.0, mass_at_zero));
    }
    // Degenerate corner: all three masses zero cannot happen (they sum
    // to 1), so the constructor below always has positive total mass.
    Discrete::new(atoms.into_iter().filter(|&(_, p)| p > 0.0).collect())
        .map_err(|_| Error::InfeasibleAdversary { reason: "no positive mass" })
}

/// Builds the Appendix-A adversary against a threshold `c > B`: short mass
/// at `{0, v}` with `v ∈ [μ/(1−q), B)` (chosen as the feasible midpoint),
/// and the long mass at `c` itself. No stop falls in `(B, c)`.
///
/// Under this distribution the threshold-`c` policy pays
/// `μ_B⁻ + q_B⁺(c + B) ≥ μ_B⁻ + 2·q_B⁺·B = E[cost_DET]` (eq. (40)),
/// which is the paper's proof that thresholds beyond `B` are dominated.
///
/// # Errors
///
/// Returns [`Error::InfeasibleAdversary`] when `c ≤ B`, or when the short
/// mass cannot be realized below `B` (requires `μ_B⁻ < (1 − q_B⁺)·B` or
/// `μ_B⁻ = 0`).
pub fn appendix_a_adversary(moments: &ConstrainedMoments, c: f64) -> Result<Discrete, Error> {
    let b = moments.break_even;
    let mu = moments.mu_b_minus;
    let q = moments.q_b_plus;
    if !(c.is_finite() && c > b) {
        return Err(Error::InfeasibleAdversary { reason: "threshold must exceed B" });
    }
    let mut atoms: Vec<(f64, f64)> = Vec::with_capacity(3);
    if q > 0.0 {
        atoms.push((c, q));
    }
    let p_short = 1.0 - q;
    if mu > 0.0 {
        if p_short <= 0.0 {
            return Err(Error::InfeasibleAdversary { reason: "mu > 0 but q = 1" });
        }
        let v_min = mu / p_short;
        if v_min >= b {
            return Err(Error::InfeasibleAdversary {
                reason: "short mass cannot sit strictly below B",
            });
        }
        // Feasible midpoint of [v_min, B).
        let v = 0.5 * (v_min + b);
        let mass_v = mu / v;
        atoms.push((v, mass_v));
        let rest = p_short - mass_v;
        if rest > 0.0 {
            atoms.push((0.0, rest));
        }
    } else if p_short > 0.0 {
        atoms.push((0.0, p_short));
    }
    Discrete::new(atoms).map_err(|_| Error::InfeasibleAdversary { reason: "no positive mass" })
}

/// Convenience: the moments of an adversary distribution round-trip, i.e.
/// computing `(μ_B⁻, q_B⁺)` of the constructed [`Discrete`] recovers the
/// inputs. Exposed for tests and benches.
#[must_use]
pub fn moments_of(dist: &Discrete, break_even: BreakEven) -> ConstrainedMoments {
    ConstrainedMoments::from_distribution(dist, break_even.seconds())
}

/// Numerically certifies a policy's worst-case expected cost by solving
/// the *adversary's* side of the minimax as a linear program: over
/// discrete distributions supported on a grid of `grid + 1` points in
/// `[0, B)` plus the point `B`, maximize the policy's expected cost
/// subject to the moment constraints
/// `Σ_{y<B} p_y·y = μ_B⁻`, `Σ_{y≥B} p_y = q_B⁺`, `Σ p_y = 1`, `p ≥ 0`.
///
/// For every policy in this crate (thresholds in `[0, B]`) the expected
/// cost is constant for `y ≥ B`, so a single support point at `B`
/// represents the whole tail and the LP value equals the true worst case
/// up to grid resolution. Returns the worst distribution and its cost.
///
/// # Errors
///
/// Returns [`Error::InfeasibleAdversary`] if the LP is infeasible (cannot
/// happen for validated moments and `grid ≥ 1`) or the solver fails.
///
/// # Panics
///
/// Panics if `grid == 0`.
pub fn worst_distribution_lp(
    policy: &dyn crate::Policy,
    moments: &ConstrainedMoments,
    grid: usize,
) -> Result<(Discrete, f64), Error> {
    use numeric::simplex::{LinearProgram, Relation};

    assert!(grid > 0, "grid must be non-empty");
    let b = moments.break_even;
    // Support: 0, b/grid, …, (grid−1)·b/grid, then B itself (the tail).
    let mut support: Vec<f64> = (0..grid).map(|i| b * i as f64 / grid as f64).collect();
    support.push(b);
    let n = support.len();

    let costs: Vec<f64> = support.iter().map(|&y| policy.expected_cost(y)).collect();
    let mut lp = LinearProgram::maximize(costs.clone());
    // Short-stop partial mean.
    let mu_row: Vec<f64> = support.iter().map(|&y| if y < b { y } else { 0.0 }).collect();
    lp.constrain(mu_row, Relation::Eq, moments.mu_b_minus);
    // Long-stop probability (only the point at B).
    let q_row: Vec<f64> = support.iter().map(|&y| if y >= b { 1.0 } else { 0.0 }).collect();
    lp.constrain(q_row, Relation::Eq, moments.q_b_plus);
    // Total probability.
    lp.constrain(vec![1.0; n], Relation::Eq, 1.0);

    let sol =
        lp.solve_max().map_err(|_| Error::InfeasibleAdversary { reason: "adversary LP failed" })?;
    let atoms: Vec<(f64, f64)> =
        support.iter().zip(&sol.x).filter(|&(_, &p)| p > 1e-12).map(|(&y, &p)| (y, p)).collect();
    let dist = Discrete::new(atoms)
        .map_err(|_| Error::InfeasibleAdversary { reason: "LP produced no mass" })?;
    Ok((dist, sol.objective))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::expected_cost_under_discrete;
    use crate::policy::{BDet, Det};
    use crate::BreakEven;
    use numeric::approx_eq;
    use stopmodel::StopDistribution;

    fn moments(mu: f64, q: f64) -> ConstrainedMoments {
        ConstrainedMoments::new(28.0, mu, q).unwrap()
    }

    #[test]
    fn short_mass_adversary_realizes_moments() {
        let m = moments(5.0, 0.3);
        let adv = short_mass_adversary(&m, 10.0).unwrap();
        let back = moments_of(&adv, BreakEven::new(28.0).unwrap());
        assert!(approx_eq(back.mu_b_minus, 5.0, 1e-12));
        assert!(approx_eq(back.q_b_plus, 0.3, 1e-12));
    }

    #[test]
    fn short_mass_adversary_achieves_eq34() {
        let m = moments(5.0, 0.3);
        for &x in &[9.0, 14.0, 20.0, 28.0] {
            let adv = short_mass_adversary(&m, x).unwrap();
            let p = BDet::new(BreakEven::new(28.0).unwrap(), x).unwrap();
            let cost = expected_cost_under_discrete(&p, &adv);
            let want = (x + 28.0) * (5.0 / x + 0.3);
            assert!(approx_eq(cost, want, 1e-12), "x={x}: {cost} vs {want}");
        }
    }

    #[test]
    fn short_mass_adversary_is_worst_among_alternatives() {
        // The eq.-(34) cost upper-bounds the cost under a "nicer"
        // distribution with the same moments (short mass spread at x/2,
        // paying only x/2 < x + B when it ends early).
        let x = 14.0;
        let adv_cost = (x + 28.0) * (5.0 / x + 0.3);
        // Same moments (μ = 0.5·10 = 5, q = 0.3), but the short mass sits
        // below the threshold so it pays 10 instead of x + B.
        let nice = Discrete::new(vec![(10.0, 0.5), (0.0, 0.2), (28.0, 0.3)]).unwrap();
        let p = BDet::new(BreakEven::new(28.0).unwrap(), x).unwrap();
        let nice_cost = expected_cost_under_discrete(&p, &nice);
        assert!(nice_cost < adv_cost, "nice {nice_cost} vs adversary {adv_cost}");
    }

    #[test]
    fn short_mass_adversary_infeasible_below_vmin() {
        // mu/(1-q) = 5/0.5 = 10: x below that is infeasible.
        let m = moments(5.0, 0.5);
        assert!(short_mass_adversary(&m, 9.0).is_err());
        assert!(short_mass_adversary(&m, 10.0).is_ok());
    }

    #[test]
    fn short_mass_adversary_rejects_bad_threshold() {
        let m = moments(5.0, 0.3);
        assert!(short_mass_adversary(&m, 0.0).is_err());
        assert!(short_mass_adversary(&m, 29.0).is_err());
        assert!(short_mass_adversary(&m, f64::NAN).is_err());
    }

    #[test]
    fn short_mass_adversary_zero_mu() {
        let m = moments(0.0, 0.4);
        let adv = short_mass_adversary(&m, 10.0).unwrap();
        // Mass only at 0 and B.
        assert_eq!(adv.atoms().len(), 2);
        assert!(approx_eq(adv.tail_prob(28.0), 0.4, 1e-12));
    }

    #[test]
    fn appendix_a_adversary_dominance() {
        // Against any c > B the adversary makes threshold-c at least as
        // expensive as DET (eq. (40)).
        let be = BreakEven::new(28.0).unwrap();
        for &(mu, q) in &[(5.0, 0.3), (0.0, 0.5), (10.0, 0.1), (13.0, 0.5)] {
            let m = moments(mu, q);
            for &c in &[30.0, 56.0, 280.0] {
                let adv = appendix_a_adversary(&m, c).unwrap();
                // Expected cost of the threshold-c policy: stops below B pay
                // their own length (they end before c); the atom at c pays
                // c + B.
                let cost_c: f64 =
                    adv.atoms().iter().map(|&(v, p)| p * if v >= c { c + 28.0 } else { v }).sum();
                let det = Det::new(be);
                let cost_det = expected_cost_under_discrete(&det, &adv);
                assert!(
                    cost_c >= cost_det - 1e-9,
                    "mu={mu} q={q} c={c}: threshold-c {cost_c} < DET {cost_det}"
                );
                assert!(approx_eq(cost_c, mu + q * (c + 28.0), 1e-9));
            }
        }
    }

    #[test]
    fn appendix_a_adversary_realizes_moments() {
        let m = moments(8.0, 0.25);
        let adv = appendix_a_adversary(&m, 60.0).unwrap();
        let back = moments_of(&adv, BreakEven::new(28.0).unwrap());
        assert!(approx_eq(back.mu_b_minus, 8.0, 1e-12));
        assert!(approx_eq(back.q_b_plus, 0.25, 1e-12));
    }

    #[test]
    fn appendix_a_adversary_rejects_c_below_b() {
        let m = moments(5.0, 0.3);
        assert!(appendix_a_adversary(&m, 28.0).is_err());
        assert!(appendix_a_adversary(&m, 10.0).is_err());
    }

    #[test]
    fn appendix_a_adversary_edge_mu_at_cap() {
        // mu = (1-q)·B exactly: v_min = B, cannot sit strictly below B.
        let m = moments(14.0, 0.5);
        assert!(appendix_a_adversary(&m, 60.0).is_err());
    }

    #[test]
    fn appendix_a_adversary_all_long() {
        let m = moments(0.0, 1.0);
        let adv = appendix_a_adversary(&m, 60.0).unwrap();
        assert_eq!(adv.atoms(), &[(60.0, 1.0)]);
    }

    #[test]
    fn lp_certifies_det_worst_case() {
        // eq. (14): the worst case of DET is μ + 2qB, and the LP recovers
        // it without knowing the closed form.
        let be = BreakEven::new(28.0).unwrap();
        let m = moments(5.0, 0.3);
        let (dist, cost) = worst_distribution_lp(&Det::new(be), &m, 280).unwrap();
        assert!(approx_eq(cost, 5.0 + 2.0 * 0.3 * 28.0, 1e-6), "LP cost {cost}");
        // The worst distribution realizes the prescribed moments.
        let back = moments_of(&dist, be);
        assert!(approx_eq(back.mu_b_minus, 5.0, 1e-9));
        assert!(approx_eq(back.q_b_plus, 0.3, 1e-9));
    }

    #[test]
    fn lp_certifies_toi_and_nrand_worst_cases() {
        use crate::policy::{NRand, Toi};
        let be = BreakEven::new(28.0).unwrap();
        let m = moments(5.0, 0.3);
        // TOI costs B on every positive stop, so the maximizing adversary
        // simply avoids a zero atom (e.g. all short mass at μ/(1−q)) and
        // the worst cost is exactly B — the paper's E[cost_TOI] = B.
        let (_, cost_toi) = worst_distribution_lp(&Toi::new(be), &m, 280).unwrap();
        assert!(approx_eq(cost_toi, 28.0, 1e-6), "TOI LP {cost_toi}");
        // N-Rand's expected cost is e/(e−1)·offline pointwise, so any
        // consistent distribution costs exactly e/(e−1)·(μ + qB).
        let (_, cost_nr) = worst_distribution_lp(&NRand::new(be), &m, 280).unwrap();
        assert!(
            approx_eq(cost_nr, crate::e_ratio() * (5.0 + 0.3 * 28.0), 1e-6),
            "N-Rand LP {cost_nr}"
        );
    }

    #[test]
    fn lp_certifies_bdet_worst_case_eq34() {
        let be = BreakEven::new(28.0).unwrap();
        let m = moments(5.0, 0.3);
        // Use a grid that contains the threshold exactly (x = 14 = 140/280·28).
        let x = 14.0;
        let p = BDet::new(be, x).unwrap();
        let (dist, cost) = worst_distribution_lp(&p, &m, 280).unwrap();
        let want = (x + 28.0) * (5.0 / x + 0.3);
        assert!(approx_eq(cost, want, 1e-6), "LP {cost} vs eq34 {want}");
        // The LP rediscovers the paper's two-point short-mass structure:
        // all short mass at {0, x}.
        for &(y, p_mass) in dist.atoms() {
            assert!(
                y == 0.0 || approx_eq(y, x, 1e-9) || y >= 28.0,
                "unexpected support point {y} with mass {p_mass}"
            );
        }
    }

    #[test]
    fn lp_never_beats_proposed_guarantee() {
        // For the proposed policy, the LP-certified worst cost stays at or
        // below the closed-form guarantee (up to grid resolution).
        use crate::constrained::ConstrainedStats;
        let be = BreakEven::new(28.0).unwrap();
        for &(mu, q) in &[(5.0, 0.3), (0.56, 0.3), (10.0, 0.1), (1.0, 0.7)] {
            let stats = ConstrainedStats::new(be, mu, q).unwrap();
            let policy = stats.optimal_policy();
            let m = *stats.moments();
            let (_, cost) = worst_distribution_lp(&policy, &m, 560).unwrap();
            assert!(
                cost <= stats.worst_case_cost() + 1e-6,
                "mu={mu} q={q}: LP {cost} exceeds guarantee {}",
                stats.worst_case_cost()
            );
        }
    }

    #[test]
    fn lp_rejects_nothing_feasible() {
        // Moments are validated upstream, so the LP is always feasible;
        // grid = 1 (support {0, B}) still works when μ = 0.
        let be = BreakEven::new(28.0).unwrap();
        let m = moments(0.0, 0.4);
        let (dist, cost) = worst_distribution_lp(&Det::new(be), &m, 1).unwrap();
        assert!(approx_eq(cost, 2.0 * 0.4 * 28.0, 1e-9), "cost {cost}");
        assert!(dist.atoms().len() <= 2);
    }
}
