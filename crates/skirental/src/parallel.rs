//! Deterministic chunked map-reduce on scoped OS threads (std-only).
//!
//! The fleet experiments are embarrassingly parallel over vehicles,
//! bootstrap resamples, and sweep grid points, but each call site used to
//! hand-roll its own `std::thread::scope` sharding. This module extracts
//! that pattern once, with two guarantees the experiments rely on:
//!
//! 1. **Input order is preserved.** Results come back in the order of the
//!    input slice regardless of which worker computed them, so downstream
//!    reductions see the same sequence a serial loop would.
//! 2. **Bit-identical output for any thread count.** Each item's result
//!    depends only on the item (and its index) — never on chunk
//!    boundaries — so `threads = 1` and `threads = 64` produce the exact
//!    same bytes. `tests/determinism.rs` locks this in for the fleet
//!    evaluator and the parallel bootstrap.
//!
//! Work is split into `ceil(n / threads)`-sized contiguous chunks, one
//! scoped thread per chunk (no work stealing — the per-item cost in this
//! codebase is uniform enough that static sharding is within noise of a
//! dynamic queue, and it keeps the module dependency-free). Small inputs
//! (`n < 2·threads`) skip thread spawning entirely.
//!
//! When the [`obsv::global`] registry is enabled, each call records chunk
//! wall times (`skirental.parallel.chunk_seconds`), item/chunk counters,
//! and a thread-utilization gauge (busy time over `threads × wall`).
//! Instrumentation never touches the per-item computation, so the
//! bit-identical guarantee is unaffected; with the registry disabled the
//! overhead is a handful of relaxed atomic loads per call.

use crate::obs;
use std::time::Instant;

/// Maps `f` over `items` on up to `threads` scoped threads, returning
/// results in input order. `f` receives `(index, &item)` with `index`
/// the item's position in `items`.
///
/// # Panics
///
/// Panics if `threads == 0`, or propagates a panic from `f`.
pub fn chunked_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let res: Result<Vec<R>, std::convert::Infallible> =
        try_chunked_map(items, threads, |i, item| Ok(f(i, item)));
    match res {
        Ok(v) => v,
        Err(e) => match e {},
    }
}

/// Fallible variant of [`chunked_map`]: maps `f` over `items` and returns
/// the first error in **input order**, or all results in input order.
///
/// With `threads == 1` (or an input too small to shard) the map runs
/// serially on the caller's thread and short-circuits at the first error;
/// the sharded path evaluates every chunk but still reports the
/// earliest-indexed error, so the observable `Err` value is independent
/// of the thread count.
///
/// # Errors
///
/// Returns the error of the earliest-indexed item for which `f` fails.
///
/// # Panics
///
/// Panics if `threads == 0`, or propagates a panic from `f`.
pub fn try_chunked_map<T, R, E, F>(items: &[T], threads: usize, f: F) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(usize, &T) -> Result<R, E> + Sync,
{
    assert!(threads > 0, "need at least one thread");
    let m = obs::metrics();
    m.parallel_calls.inc();
    m.parallel_items.add(items.len() as u64);
    if threads == 1 || items.len() < 2 * threads {
        m.parallel_serial_calls.inc();
        return items.iter().enumerate().map(|(i, item)| f(i, item)).collect();
    }
    let chunk = items.len().div_ceil(threads);
    m.parallel_chunks.add(items.len().div_ceil(chunk) as u64);
    m.parallel_threads.set(threads as f64);
    // Utilization = Σ chunk busy time / (threads × wall). Busy time goes
    // through a shared counter so concurrent calls stay approximately
    // right; the clock is only read when the registry is enabled.
    let instrumented = m.parallel_calls.is_enabled();
    let busy_before = m.parallel_busy_micros.get();
    let wall_start = instrumented.then(Instant::now);
    let shards: Vec<Result<Vec<R>, E>> = std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = items
            .chunks(chunk)
            .enumerate()
            .map(|(ci, shard)| {
                scope.spawn(move || {
                    let chunk_start = instrumented.then(Instant::now);
                    let out = shard
                        .iter()
                        .enumerate()
                        .map(|(i, item)| f(ci * chunk + i, item))
                        .collect::<Result<Vec<R>, E>>();
                    if let Some(start) = chunk_start {
                        let secs = start.elapsed().as_secs_f64();
                        m.parallel_chunk_seconds.record_seconds(secs);
                        m.parallel_busy_micros.add((secs * 1e6) as u64);
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
            .collect()
    });
    if let Some(start) = wall_start {
        let wall = start.elapsed().as_secs_f64();
        if wall > 0.0 {
            let busy = m.parallel_busy_micros.get().saturating_sub(busy_before) as f64 / 1e6;
            m.parallel_utilization.set(busy / (threads as f64 * wall));
        }
    }
    let mut out = Vec::with_capacity(items.len());
    for shard in shards {
        out.extend(shard?);
    }
    Ok(out)
}

/// Maps `f` over contiguous **shards** of `items` on up to `threads`
/// scoped threads, returning one result per shard in input order. `f`
/// receives `(base, shard)` where `base` is the index of the shard's
/// first item in `items`.
///
/// Unlike [`chunked_map`], which calls `f` once per item and therefore
/// shards *items*, this shards *calls*: callers that amortize work
/// across a whole shard (the batched decision engine flushes metrics
/// and evaluates its SoA kernel per shard, not per vehicle) get one
/// `f` invocation per chunk. The shard layout — `ceil(n / threads)`
/// items per shard — is the same as [`chunked_map`]'s, and results
/// concatenate in input order. Bit-identical output across thread
/// counts is the *caller's* responsibility: `f` must derive per-item
/// state from global indices (`base + i`), never from shard boundaries.
///
/// # Panics
///
/// Panics if `threads == 0`, or propagates a panic from `f`.
pub fn shard_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> R + Sync,
{
    let res: Result<Vec<R>, std::convert::Infallible> =
        try_shard_map(items, threads, |base, shard| Ok(f(base, shard)));
    match res {
        Ok(v) => v,
        Err(e) => match e {},
    }
}

/// Fallible variant of [`shard_map`]: returns the error of the shard
/// with the earliest base index for which `f` fails, or all shard
/// results in input order.
///
/// With `threads == 1` the map runs serially on the caller's thread
/// (still as one shard per `ceil(n / threads)` items — i.e. a single
/// shard) and short-circuits at the first error; the threaded path
/// evaluates every shard but reports the earliest-based error, so the
/// observable `Err` is independent of the thread count **when `f`'s
/// error for a given shard layout is deterministic**.
///
/// # Errors
///
/// Returns the error of the earliest-based shard for which `f` fails.
///
/// # Panics
///
/// Panics if `threads == 0`, or propagates a panic from `f`.
pub fn try_shard_map<T, R, E, F>(items: &[T], threads: usize, f: F) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(usize, &[T]) -> Result<R, E> + Sync,
{
    assert!(threads > 0, "need at least one thread");
    if items.is_empty() {
        return Ok(Vec::new());
    }
    let m = obs::metrics();
    m.parallel_calls.inc();
    m.parallel_items.add(items.len() as u64);
    let chunk = items.len().div_ceil(threads);
    let shard_count = items.len().div_ceil(chunk);
    m.parallel_chunks.add(shard_count as u64);
    if threads == 1 || shard_count == 1 {
        m.parallel_serial_calls.inc();
        return Ok(vec![f(0, items)?]);
    }
    m.parallel_threads.set(threads as f64);
    let instrumented = m.parallel_calls.is_enabled();
    let busy_before = m.parallel_busy_micros.get();
    let wall_start = instrumented.then(Instant::now);
    let shards: Vec<Result<R, E>> = std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = items
            .chunks(chunk)
            .enumerate()
            .map(|(ci, shard)| {
                scope.spawn(move || {
                    let chunk_start = instrumented.then(Instant::now);
                    let out = f(ci * chunk, shard);
                    if let Some(start) = chunk_start {
                        let secs = start.elapsed().as_secs_f64();
                        m.parallel_chunk_seconds.record_seconds(secs);
                        m.parallel_busy_micros.add((secs * 1e6) as u64);
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
            .collect()
    });
    if let Some(start) = wall_start {
        let wall = start.elapsed().as_secs_f64();
        if wall > 0.0 {
            let busy = m.parallel_busy_micros.get().saturating_sub(busy_before) as f64 / 1e6;
            m.parallel_utilization.set(busy / (threads as f64 * wall));
        }
    }
    shards.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..103).collect();
        for threads in [1, 2, 4, 7, 64] {
            let out = chunked_map(&items, threads, |i, &x| {
                assert_eq!(i as u64, x);
                x * x
            });
            assert_eq!(out, items.iter().map(|&x| x * x).collect::<Vec<_>>(), "t={threads}");
        }
    }

    #[test]
    fn bit_identical_across_thread_counts() {
        // Floating-point work whose result would change if chunking
        // leaked into the per-item computation.
        let items: Vec<f64> = (0..1000).map(|i| 1.0 + i as f64 * 0.37).collect();
        let reference = chunked_map(&items, 1, |i, &x| (x.sin() + i as f64).to_bits());
        for threads in [2, 3, 4, 7, 64] {
            let out = chunked_map(&items, threads, |i, &x| (x.sin() + i as f64).to_bits());
            assert_eq!(out, reference, "threads = {threads}");
        }
    }

    #[test]
    fn small_inputs_run_serially() {
        let items = [1, 2, 3];
        let out = chunked_map(&items, 64, |_, &x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn error_is_earliest_in_input_order() {
        let items: Vec<usize> = (0..100).collect();
        for threads in [1, 2, 4, 7] {
            let res: Result<Vec<usize>, usize> =
                try_chunked_map(
                    &items,
                    threads,
                    |_, &x| {
                        if x == 13 || x == 77 {
                            Err(x)
                        } else {
                            Ok(x)
                        }
                    },
                );
            assert_eq!(res, Err(13), "threads = {threads}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        let _ = chunked_map(&[1], 0, |_, &x: &i32| x);
    }

    #[test]
    fn empty_input_ok() {
        let out: Vec<i32> = chunked_map(&[] as &[i32], 4, |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn shard_map_covers_input_in_order() {
        let items: Vec<usize> = (0..103).collect();
        for threads in [1, 2, 4, 7, 64] {
            let shards = shard_map(&items, threads, |base, shard| {
                // Every shard sees its global base index.
                assert_eq!(shard[0], base, "t={threads}");
                (base, shard.to_vec())
            });
            let flat: Vec<usize> = shards.into_iter().flat_map(|(_, s)| s).collect();
            assert_eq!(flat, items, "t={threads}");
        }
    }

    #[test]
    fn shard_map_empty_input_ok() {
        let out: Vec<usize> = shard_map(&[] as &[i32], 4, |base, _| base);
        assert!(out.is_empty());
    }

    #[test]
    fn try_shard_map_reports_earliest_shard_error() {
        let items: Vec<usize> = (0..100).collect();
        for threads in [2, 4, 7] {
            let res: Result<Vec<()>, usize> =
                try_shard_map(&items, threads, |base, _| if base > 0 { Err(base) } else { Ok(()) });
            let first_failing_base = items.len().div_ceil(threads);
            assert_eq!(res, Err(first_failing_base), "threads = {threads}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn shard_map_zero_threads_rejected() {
        let _ = shard_map(&[1], 0, |_, s: &[i32]| s.len());
    }
}
