//! Batched structure-of-arrays decision engine: per-stop decisions for a
//! whole shard of vehicles per call, at memory bandwidth.
//!
//! The per-stop decision of the adaptive controller is a four-vertex
//! argmin over closed-form worst-case costs — embarrassingly
//! data-parallel across vehicles. The scalar path
//! ([`crate::estimator::AdaptiveController`]) walks vehicles one
//! `decide` at a time through a virtual `&mut dyn RngCore`, a span
//! timer, and (when tracing) a per-stop event; this module evaluates a
//! whole shard per call instead:
//!
//! * [`BatchStore`] holds the per-vehicle sufficient statistics
//!   `(n, Σy·1{y<B}, Σy², #{y ≥ B})` as parallel arrays (plus a flat
//!   ring buffer in sliding-window mode), so the decision loop streams
//!   over contiguous memory with no pointer chasing;
//! * [`BatchStore::decide_batch`] computes one threshold per lane in a
//!   flat, allocation-free inner loop: the four vertex costs are
//!   evaluated as straight-line lane arithmetic (the infeasible b-DET
//!   lane is masked with `+∞` rather than branched around) and the
//!   argmin preserves the scalar tie order DET → TOI → b-DET → N-Rand;
//! * [`CounterRng`] is a counter-based per-vehicle generator (SplitMix64
//!   finalizer over `key + ctr·γ`): the kernel computes the next draw as
//!   a pure function of the lane's `(key, ctr)` state and advances the
//!   counter **only when the selected vertex actually consumes a draw**,
//!   which is exactly how the scalar policies consume a `dyn RngCore` —
//!   so batch and scalar paths see identical draws.
//!
//! **Bit-identity.** Every floating-point expression in the kernel is
//! copied verbatim from the scalar path (`MomentEstimator::stats`,
//! `ConstrainedStats::vertex_costs`/`b_det_vertex`/`optimal_choice`,
//! `NRand::sample_threshold`, `stopmodel::uniform01`), so a batch run
//! produces bit-for-bit the thresholds, vertex choices, and cost sums of
//! the equivalent per-vehicle [`run_fleet_scalar`] reference — pinned by
//! `tests/batch.rs` across cold start, windowed, min-history, and
//! ladder-handoff regimes, and across 1/2/8 worker threads.
//!
//! **Observability amortization.** The batch path records no per-stop
//! metric or span: each shard flushes bulk counters once
//! (`skirental.batch.*` plus the shared `skirental.policy.*` vertex
//! tallies), and when the decision tracer is active it emits a single
//! [`obsv::TraceEvent::BatchShardDigest`] per shard instead of per-stop
//! events. With the registry disabled the whole shard costs one relaxed
//! load.

use crate::cost::BreakEven;
use crate::estimator::{realized_cr, AdaptiveController, AdaptiveOutcome};
use crate::obs;
use crate::{e_ratio, Error};
use rand::RngCore;
use std::f64::consts::E;

/// Weyl increment of SplitMix64 (the golden ratio in 2⁻⁶⁴ fixed point).
const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// SplitMix64 finalizer: bijective avalanche mix of one `u64`.
#[inline(always)]
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A counter-based random-number generator: the `i`-th output is the
/// SplitMix64 finalizer applied to `key + i·γ`, a pure function of the
/// `(key, ctr)` state.
///
/// Unlike a mutable-state generator, the batch kernel can *peek* the
/// next draw without committing it, then advance the counter only for
/// lanes whose selected vertex consumed randomness — matching how the
/// scalar policies consume a `&mut dyn RngCore` (deterministic vertices
/// draw nothing; N-Rand and the cold start draw exactly one `u64`).
/// It also implements [`rand::RngCore`], so the *same* per-vehicle
/// stream can drive the scalar [`AdaptiveController`] for bit-identity
/// checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterRng {
    key: u64,
    ctr: u64,
}

impl CounterRng {
    /// A generator for logical stream `stream` (e.g. a global vehicle
    /// index) under `seed`. Two finalizer rounds decorrelate adjacent
    /// stream ids.
    #[must_use]
    pub fn for_stream(seed: u64, stream: u64) -> Self {
        let key = mix64(mix64(seed ^ GOLDEN_GAMMA).wrapping_add(stream.wrapping_mul(GOLDEN_GAMMA)));
        Self { key, ctr: 0 }
    }

    /// The `(key, counter)` state, for diagnostics, state-identity
    /// assertions, and crash-safe persistence.
    #[must_use]
    pub fn state(&self) -> (u64, u64) {
        (self.key, self.ctr)
    }

    /// Reconstructs a generator from a persisted `(key, counter)` pair
    /// (the inverse of [`CounterRng::state`]): the restored generator
    /// produces exactly the draws the original would have from that
    /// point on, which is what makes snapshot-resume bit-identical.
    #[must_use]
    pub fn from_state(key: u64, ctr: u64) -> Self {
        Self { key, ctr }
    }

    /// The output at counter position `ctr` for `key` — the pure
    /// function both the kernel and [`RngCore::next_u64`] evaluate.
    #[inline(always)]
    fn value_at(key: u64, ctr: u64) -> u64 {
        mix64(key.wrapping_add(ctr.wrapping_mul(GOLDEN_GAMMA)))
    }
}

impl RngCore for CounterRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let v = Self::value_at(self.key, self.ctr);
        self.ctr = self.ctr.wrapping_add(1);
        v
    }
}

/// Which decision the batch kernel made for a lane — the four vertex
/// strategies plus the N-Rand cold start (insufficient history).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum VertexKind {
    /// Fewer than `min_history` observations: distribution-free N-Rand.
    ColdStart = 0,
    /// Deterministic threshold at `B`.
    Det = 1,
    /// Turn off immediately.
    Toi = 2,
    /// Deterministic threshold at `b* = √(μ_B⁻·B/q_B⁺)`.
    BDet = 3,
    /// The e/(e−1) randomized strategy.
    NRand = 4,
}

impl VertexKind {
    /// Short display name matching the paper's legends (cold start
    /// renders as the N-Rand fallback it plays).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::ColdStart => "N-Rand",
            Self::Det => "DET",
            Self::Toi => "TOI",
            Self::BDet => "b-DET",
            Self::NRand => "N-Rand",
        }
    }

    /// Decodes the stable discriminant (the `as u8` value) — the form
    /// vertices travel in on the `fleetd` wire and in persisted state.
    #[must_use]
    pub fn from_u8(code: u8) -> Option<Self> {
        match code {
            0 => Some(Self::ColdStart),
            1 => Some(Self::Det),
            2 => Some(Self::Toi),
            3 => Some(Self::BDet),
            4 => Some(Self::NRand),
            _ => None,
        }
    }
}

/// Per-vertex decision counts of a shard (or an aggregate over shards).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct VertexTally {
    /// Cold-start (insufficient-history) decisions.
    pub cold_start: u64,
    /// DET decisions.
    pub det: u64,
    /// TOI decisions.
    pub toi: u64,
    /// b-DET decisions.
    pub b_det: u64,
    /// N-Rand decisions (estimator-backed, not cold start).
    pub n_rand: u64,
}

impl VertexTally {
    /// Tallies one decision.
    #[inline]
    pub fn count(&mut self, v: VertexKind) {
        match v {
            VertexKind::ColdStart => self.cold_start += 1,
            VertexKind::Det => self.det += 1,
            VertexKind::Toi => self.toi += 1,
            VertexKind::BDet => self.b_det += 1,
            VertexKind::NRand => self.n_rand += 1,
        }
    }

    /// Total decisions tallied.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.cold_start + self.det + self.toi + self.b_det + self.n_rand
    }

    /// Element-wise sum.
    #[must_use]
    pub fn merged(&self, other: &Self) -> Self {
        Self {
            cold_start: self.cold_start + other.cold_start,
            det: self.det + other.det,
            toi: self.toi + other.toi,
            b_det: self.b_det + other.b_det,
            n_rand: self.n_rand + other.n_rand,
        }
    }
}

/// One lane decision: threshold, vertex, and the lane's advanced RNG
/// counter. Returned by the shared kernel so the batched loop and the
/// per-lane straggler path are the same code (and therefore the same
/// floating-point expressions).
#[derive(Debug, Clone, Copy)]
struct LaneDecision {
    threshold: f64,
    vertex: VertexKind,
    ctr: u64,
}

/// The per-lane decision kernel. `#[inline(always)]` so the flat loop in
/// [`BatchStore::decide_batch`] sees straight-line lane arithmetic with
/// no call — the b-DET feasibility conditions reduce to an `+∞` cost
/// mask and the argmin to a chain of compare-selects.
///
/// Every expression mirrors the scalar path bit for bit:
/// `MomentEstimator::stats` (the `μ̂` clamp), `vertex_costs`,
/// `b_det_vertex` (condition (36), `b* ≤ B`), `optimal_choice` (tie
/// order DET → TOI → b-DET → N-Rand with strict `<`), and the policy
/// samplers (`Det → B`, `Toi → 0`, `BDet → b*`, `N-Rand` inverse CDF on
/// one 53-bit uniform draw).
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn decide_kernel(
    b: f64,
    min_history: usize,
    n: u32,
    short_sum: f64,
    long_count: u32,
    key: u64,
    ctr: u64,
) -> LaneDecision {
    // Peek the next draw unconditionally — pure function of (key, ctr),
    // committed below only if the selected vertex consumes randomness.
    let bits = CounterRng::value_at(key, ctr);
    // `stopmodel::uniform01`: top 53 bits of one u64 draw.
    let u = (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    // `NRand::sample_threshold`: x = B·ln(1 + u(e−1)).
    let nrand_x = b * (1.0 + u * (E - 1.0)).ln();

    if (n as usize) < min_history {
        return LaneDecision { threshold: nrand_x, vertex: VertexKind::ColdStart, ctr: ctr + 1 };
    }

    // `MomentEstimator::stats`: plug-in moments with the window-residue
    // clamp.
    let nf = f64::from(n);
    let q = f64::from(long_count) / nf;
    let mu_cap = (1.0 - q) * b;
    let mu = (short_sum / nf).clamp(0.0, mu_cap);

    // `ConstrainedStats::vertex_costs`.
    let offline = mu + q * b;
    let n_rand_cost = e_ratio() * offline;
    let toi_cost = b;
    let det_cost = mu + 2.0 * q * b;

    // `ConstrainedStats::b_det_vertex`, as an ∞-masked lane instead of
    // an Option: infeasible regimes can never win the strict-< argmin.
    let b_star = (mu * b / q).sqrt();
    let b_det_feasible =
        mu > 0.0 && q > 0.0 && q < 1.0 && mu / b < (1.0 - q) * (1.0 - q) / q && b_star <= b;
    let b_det_cost =
        if b_det_feasible { (mu.sqrt() + (q * b).sqrt()).powi(2) } else { f64::INFINITY };

    // `ConstrainedStats::optimal_choice`: tie order DET → TOI → b-DET →
    // N-Rand, strict `<` replacement.
    let mut vertex = VertexKind::Det;
    let mut best_cost = det_cost;
    if toi_cost < best_cost {
        vertex = VertexKind::Toi;
        best_cost = toi_cost;
    }
    if b_det_cost < best_cost {
        vertex = VertexKind::BDet;
        best_cost = b_det_cost;
    }
    if n_rand_cost < best_cost {
        vertex = VertexKind::NRand;
    }

    // Sample: only N-Rand consumes the peeked draw (`ProposedPolicy`
    // delegates to the vertex policy, and Det/Toi/BDet ignore the RNG).
    match vertex {
        VertexKind::Det => LaneDecision { threshold: b, vertex, ctr },
        VertexKind::Toi => LaneDecision { threshold: 0.0, vertex, ctr },
        VertexKind::BDet => LaneDecision { threshold: b_star.min(b), vertex, ctr },
        VertexKind::NRand | VertexKind::ColdStart => {
            LaneDecision { threshold: nrand_x, vertex, ctr: ctr + 1 }
        }
    }
}

/// A full copy of one lane's estimator state, as exported by
/// [`BatchStore::export_lane`] and re-installed by
/// [`BatchStore::restore_lane`] — the unit of crash-safe persistence for
/// the batched engine.
///
/// The ring carries the lane's **entire** window segment (including
/// never-written slots, which are zero from construction), so a
/// restored store is byte-identical to the original in memory, not just
/// behaviorally equivalent: re-exporting and re-encoding it reproduces
/// the same snapshot bytes.
#[derive(Debug, Clone, PartialEq)]
pub struct LaneState {
    /// Observations currently contributing to the estimate.
    pub count: u32,
    /// Running short-stop sum `Σy·1{y<B}` (raw, unclamped).
    pub short_sum: f64,
    /// Running raw second moment `Σy²`.
    pub sum_sq: f64,
    /// Long-stop count `#{y ≥ B}`.
    pub long_count: u32,
    /// Window mode: index of the oldest element in the ring segment
    /// (zero in full-history mode).
    pub head: u32,
    /// Window mode: the lane's full ring segment, oldest slot at
    /// `head` (empty in full-history mode).
    pub ring: Vec<f64>,
}

/// Structure-of-arrays store of per-vehicle estimator state.
///
/// Lane `i` carries the sufficient statistics of vehicle `i` in the
/// shard: observation count `n`, short-stop sum `Σy·1{y<B}`, raw second
/// moment `Σy²` (diagnostics; not used by the decision kernel), long
/// count `#{y ≥ B}`, and — in sliding-window mode — a segment of the
/// flat ring buffer. All arrays are allocated once at construction;
/// observing and deciding never allocate.
#[derive(Debug, Clone)]
pub struct BatchStore {
    break_even: BreakEven,
    window: Option<usize>,
    min_history: usize,
    lanes: usize,
    count: Vec<u32>,
    short_sum: Vec<f64>,
    sum_sq: Vec<f64>,
    long_count: Vec<u32>,
    /// Window mode: lane `i` owns `ring[i·w .. (i+1)·w]`.
    ring: Vec<f64>,
    /// Window mode: index of the oldest element within each lane segment.
    head: Vec<u32>,
}

impl BatchStore {
    /// A store of `lanes` vehicles over their full history.
    ///
    /// # Panics
    ///
    /// Panics if `lanes == 0`.
    #[must_use]
    pub fn new(break_even: BreakEven, lanes: usize) -> Self {
        assert!(lanes > 0, "batch store needs at least one lane");
        Self {
            break_even,
            window: None,
            min_history: 1,
            lanes,
            count: vec![0; lanes],
            short_sum: vec![0.0; lanes],
            sum_sq: vec![0.0; lanes],
            long_count: vec![0; lanes],
            ring: Vec::new(),
            head: Vec::new(),
        }
    }

    /// A store of `lanes` vehicles over a sliding window of the last
    /// `window` stops each.
    ///
    /// # Panics
    ///
    /// Panics if `lanes == 0` or `window == 0`.
    #[must_use]
    pub fn with_window(break_even: BreakEven, lanes: usize, window: usize) -> Self {
        assert!(window > 0, "window must be non-empty");
        let mut s = Self::new(break_even, lanes);
        s.window = Some(window);
        s.ring = vec![0.0; lanes * window];
        s.head = vec![0; lanes];
        s
    }

    /// Requires `n` observed stops per lane before trusting the
    /// estimate (before that, N-Rand cold start); returns `self`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn min_history(mut self, n: usize) -> Self {
        assert!(n > 0, "min history must be positive");
        self.min_history = n;
        self
    }

    /// Number of lanes (vehicles) in the store.
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// The sliding window (`None` = full history), as configured.
    #[must_use]
    pub fn window(&self) -> Option<usize> {
        self.window
    }

    /// Stops required per lane before the estimate is trusted.
    #[must_use]
    pub fn required_history(&self) -> usize {
        self.min_history
    }

    /// The break-even interval the store classifies against.
    #[must_use]
    pub fn break_even(&self) -> BreakEven {
        self.break_even
    }

    /// Observations currently contributing to lane `i`'s estimate.
    #[must_use]
    pub fn lane_len(&self, lane: usize) -> usize {
        self.count[lane] as usize
    }

    /// Lane `i`'s raw second moment `Σy²` over the contributing stops
    /// (windowed when the store is windowed). Diagnostics only — the
    /// decision kernel never reads it.
    #[must_use]
    pub fn lane_sum_sq(&self, lane: usize) -> f64 {
        self.sum_sq[lane]
    }

    /// Lane `i`'s plug-in moments `(μ̂_B⁻, q̂_B⁺)`, or `None` before the
    /// first observation. Matches `MomentEstimator::stats` bit for bit.
    #[must_use]
    pub fn lane_moments(&self, lane: usize) -> Option<(f64, f64)> {
        let n = self.count[lane];
        if n == 0 {
            return None;
        }
        let nf = f64::from(n);
        let q = f64::from(self.long_count[lane]) / nf;
        let mu_cap = (1.0 - q) * self.break_even.seconds();
        let mu = (self.short_sum[lane] / nf).clamp(0.0, mu_cap);
        Some((mu, q))
    }

    /// Discards lane `i`'s observed history (window configuration kept),
    /// mirroring `MomentEstimator::clear` — the degradation-ladder
    /// handoff that forgets statistics from an untrusted stream.
    pub fn clear_lane(&mut self, lane: usize) {
        self.count[lane] = 0;
        self.short_sum[lane] = 0.0;
        self.sum_sq[lane] = 0.0;
        self.long_count[lane] = 0;
        if !self.head.is_empty() {
            self.head[lane] = 0;
        }
    }

    /// Exports lane `i`'s complete state for persistence (the inverse of
    /// [`BatchStore::restore_lane`]).
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    #[must_use]
    pub fn export_lane(&self, lane: usize) -> LaneState {
        assert!(lane < self.lanes, "lane {lane} out of range for {} lanes", self.lanes);
        let ring = match self.window {
            Some(w) => self.ring[lane * w..(lane + 1) * w].to_vec(),
            None => Vec::new(),
        };
        LaneState {
            count: self.count[lane],
            short_sum: self.short_sum[lane],
            sum_sq: self.sum_sq[lane],
            long_count: self.long_count[lane],
            head: if self.head.is_empty() { 0 } else { self.head[lane] },
            ring,
        }
    }

    /// Installs a previously exported [`LaneState`] into lane `i`,
    /// validating it against this store's configuration. On success the
    /// lane is byte-identical to the lane [`BatchStore::export_lane`]
    /// read, including unused ring slots.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidPersistedState`] if the state's shape or
    /// invariants don't fit this store: ring length differing from the
    /// configured window, count exceeding the window, head out of
    /// range, long count exceeding the observation count, or non-finite
    /// running sums. The lane is untouched on error.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    pub fn restore_lane(&mut self, lane: usize, state: &LaneState) -> Result<(), Error> {
        assert!(lane < self.lanes, "lane {lane} out of range for {} lanes", self.lanes);
        match self.window {
            Some(w) => {
                if state.ring.len() != w {
                    return Err(Error::InvalidPersistedState {
                        reason: "ring length differs from the configured window",
                    });
                }
                if state.count as usize > w {
                    return Err(Error::InvalidPersistedState {
                        reason: "observation count exceeds the window",
                    });
                }
                if state.head as usize >= w {
                    return Err(Error::InvalidPersistedState {
                        reason: "ring head outside the window",
                    });
                }
            }
            None => {
                if !state.ring.is_empty() || state.head != 0 {
                    return Err(Error::InvalidPersistedState {
                        reason: "ring state present for a full-history store",
                    });
                }
            }
        }
        if state.long_count > state.count {
            return Err(Error::InvalidPersistedState {
                reason: "long count exceeds observation count",
            });
        }
        if !state.short_sum.is_finite() || !state.sum_sq.is_finite() {
            return Err(Error::InvalidPersistedState { reason: "non-finite running sum" });
        }
        self.count[lane] = state.count;
        self.short_sum[lane] = state.short_sum;
        self.sum_sq[lane] = state.sum_sq;
        self.long_count[lane] = state.long_count;
        if let Some(w) = self.window {
            self.head[lane] = state.head;
            self.ring[lane * w..(lane + 1) * w].copy_from_slice(&state.ring);
        }
        Ok(())
    }

    /// Records one completed stop on lane `i`, mirroring
    /// `MomentEstimator::observe` arithmetic exactly (evict-then-push in
    /// window mode, same add/subtract order on the running sums).
    ///
    /// # Panics
    ///
    /// Panics if `y` is negative or non-finite, or `lane` is out of
    /// range.
    pub fn observe(&mut self, lane: usize, y: f64) {
        assert!(y.is_finite() && y >= 0.0, "stop length must be finite and >= 0, got {y}");
        let b = self.break_even.seconds();
        if let Some(w) = self.window {
            let seg = lane * w;
            if self.count[lane] as usize == w {
                let head = self.head[lane] as usize;
                let front = self.ring[seg + head];
                if front >= b {
                    self.long_count[lane] -= 1;
                } else {
                    self.short_sum[lane] -= front;
                }
                self.sum_sq[lane] -= front * front;
                self.ring[seg + head] = y;
                self.head[lane] = ((head + 1) % w) as u32;
            } else {
                let pos = (self.head[lane] as usize + self.count[lane] as usize) % w;
                self.ring[seg + pos] = y;
                self.count[lane] += 1;
            }
        } else {
            self.count[lane] += 1;
        }
        if y >= b {
            self.long_count[lane] += 1;
        } else {
            self.short_sum[lane] += y;
        }
        self.sum_sq[lane] += y * y;
    }

    /// Records one completed stop per lane (`ys[i]` on lane `i`),
    /// validating shape and values **before** mutating any lane.
    ///
    /// # Errors
    ///
    /// [`Error::ShardShapeMismatch`] if `ys.len() != self.lanes()`;
    /// [`Error::InvalidStop`] (naming the first offender) if any reading
    /// is negative or non-finite — the store is untouched in both cases.
    pub fn observe_batch(&mut self, ys: &[f64]) -> Result<(), Error> {
        if ys.len() != self.lanes {
            return Err(Error::ShardShapeMismatch {
                lanes: self.lanes,
                slot: "observations",
                len: ys.len(),
            });
        }
        for &y in ys {
            if !(y.is_finite() && y >= 0.0) {
                return Err(Error::InvalidStop { bits: y.to_bits() });
            }
        }
        for (lane, &y) in ys.iter().enumerate() {
            self.observe(lane, y);
        }
        Ok(())
    }

    /// Decides one lane — the shared kernel, for stragglers of ragged
    /// shards. Identical expressions (and therefore bits) to the batched
    /// loop.
    #[must_use]
    pub fn decide_lane(&self, lane: usize, rng: &mut CounterRng) -> (f64, VertexKind) {
        let d = decide_kernel(
            self.break_even.seconds(),
            self.min_history,
            self.count[lane],
            self.short_sum[lane],
            self.long_count[lane],
            rng.key,
            rng.ctr,
        );
        rng.ctr = d.ctr;
        (d.threshold, d.vertex)
    }

    /// Decides every lane in one flat pass: `thresholds[i]` and
    /// `vertices[i]` receive lane `i`'s decision, `rngs[i]` advances by
    /// exactly the number of draws the scalar policy would consume
    /// (1 for N-Rand / cold start, 0 for the deterministic vertices).
    ///
    /// Zero allocation, no per-lane calls, no metric or trace writes —
    /// callers flush observability per shard.
    ///
    /// # Errors
    ///
    /// [`Error::ShardShapeMismatch`] naming the first slice whose length
    /// differs from [`BatchStore::lanes`]; no lane is decided and no RNG
    /// advanced.
    pub fn decide_batch(
        &self,
        rngs: &mut [CounterRng],
        thresholds: &mut [f64],
        vertices: &mut [VertexKind],
    ) -> Result<(), Error> {
        if rngs.len() != self.lanes {
            return Err(Error::ShardShapeMismatch {
                lanes: self.lanes,
                slot: "rngs",
                len: rngs.len(),
            });
        }
        if thresholds.len() != self.lanes {
            return Err(Error::ShardShapeMismatch {
                lanes: self.lanes,
                slot: "thresholds",
                len: thresholds.len(),
            });
        }
        if vertices.len() != self.lanes {
            return Err(Error::ShardShapeMismatch {
                lanes: self.lanes,
                slot: "vertices",
                len: vertices.len(),
            });
        }
        let b = self.break_even.seconds();
        let min_history = self.min_history;
        // Flat zipped loop over the parallel arrays: no bounds checks,
        // no indirection — the kernel inlines to lane arithmetic.
        for ((((&n, &short_sum), &long_count), rng), (threshold, vertex)) in self
            .count
            .iter()
            .zip(&self.short_sum)
            .zip(&self.long_count)
            .zip(rngs.iter_mut())
            .zip(thresholds.iter_mut().zip(vertices.iter_mut()))
        {
            let d = decide_kernel(b, min_history, n, short_sum, long_count, rng.key, rng.ctr);
            *threshold = d.threshold;
            *vertex = d.vertex;
            rng.ctr = d.ctr;
        }
        Ok(())
    }
}

/// The canonical contiguous shard layout of a fleet: `ceil(n / shards)`
/// lanes per shard, the same layout [`crate::parallel::try_shard_map`]
/// and [`run_fleet_batch`] use. External batch drivers (the crash-safe
/// fleet runner, the decision daemon's shard router) build their shards
/// through this so every engine in the workspace agrees on which global
/// lane index lives in which shard — and, because all lane arithmetic is
/// keyed by *global* index, on the exact bits each lane produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPlan {
    lanes: usize,
    shard_size: usize,
}

impl ShardPlan {
    /// Plans `lanes` lanes over at most `max_shards` shards.
    ///
    /// # Panics
    ///
    /// Panics if `lanes == 0` or `max_shards == 0`.
    #[must_use]
    pub fn new(lanes: usize, max_shards: usize) -> Self {
        assert!(lanes > 0, "shard plan needs at least one lane");
        assert!(max_shards > 0, "shard plan needs at least one shard");
        Self { lanes, shard_size: lanes.div_ceil(max_shards) }
    }

    /// Total lanes planned over.
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Lanes per full shard (the final shard may be shorter).
    #[must_use]
    pub fn shard_size(&self) -> usize {
        self.shard_size
    }

    /// Number of non-empty shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.lanes.div_ceil(self.shard_size)
    }

    /// The shard holding global lane `lane`.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    #[must_use]
    pub fn shard_of(&self, lane: usize) -> usize {
        assert!(lane < self.lanes, "lane {lane} outside a {}-lane plan", self.lanes);
        lane / self.shard_size
    }

    /// `(base, len)` of every shard, in lane order. Bases are global
    /// lane indices; the `len`s sum to [`ShardPlan::lanes`].
    pub fn ranges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..self.lanes)
            .step_by(self.shard_size)
            .map(move |base| (base, self.shard_size.min(self.lanes - base)))
    }
}

/// Configuration of a batched (or scalar-reference) adaptive fleet run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchConfig {
    /// Sliding window per vehicle (`None` = full history).
    pub window: Option<usize>,
    /// Stops required before trusting the estimate (N-Rand before).
    pub min_history: usize,
    /// Seed of the per-vehicle counter RNG streams (keyed by *global*
    /// vehicle index, so results are independent of shard boundaries).
    pub seed: u64,
    /// Base stream id for per-shard trace digests when the decision
    /// tracer is active.
    pub trace_stream_base: u64,
}

impl Default for BatchConfig {
    fn default() -> Self {
        Self { window: None, min_history: 1, seed: 0, trace_stream_base: 0 }
    }
}

/// Per-shard summary of a batched fleet run: decision counts by vertex
/// and an order-sensitive FNV-1a digest of every `(threshold bits,
/// vertex)` pair the shard produced. Two runs of the same shard with the
/// same config hash identically; any single-bit threshold drift changes
/// the digest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardDigest {
    /// Global index of the shard's first vehicle.
    pub base: usize,
    /// Vehicles in the shard.
    pub vehicles: usize,
    /// Total decisions made.
    pub decisions: u64,
    /// FNV-1a over `(threshold.to_bits(), vertex)` in decision order.
    pub threshold_hash: u64,
    /// Decision counts by vertex.
    pub tally: VertexTally,
}

/// Result of a batched adaptive fleet run.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetBatchReport {
    /// Per-vehicle outcomes, in input order — bit-identical to the
    /// scalar reference ([`run_fleet_scalar`]) for any thread count.
    pub outcomes: Vec<AdaptiveOutcome>,
    /// Per-shard digests (shard layout depends on the thread count; the
    /// aggregate [`FleetBatchReport::vertex_totals`] does not).
    pub digests: Vec<ShardDigest>,
}

impl FleetBatchReport {
    /// Total decisions across all shards.
    #[must_use]
    pub fn total_decisions(&self) -> u64 {
        self.digests.iter().map(|d| d.decisions).sum()
    }

    /// Vertex decision counts aggregated over shards — independent of
    /// the shard layout, so comparable across thread counts.
    #[must_use]
    pub fn vertex_totals(&self) -> VertexTally {
        self.digests.iter().fold(VertexTally::default(), |acc, d| acc.merged(&d.tally))
    }

    /// Fleet-aggregate realized CR: total online cost over total
    /// offline cost (same degenerate-zero convention as
    /// [`realized_cr`]).
    #[must_use]
    pub fn fleet_cr(&self) -> f64 {
        let online: f64 = self.outcomes.iter().map(|o| o.online_cost).sum();
        let offline: f64 = self.outcomes.iter().map(|o| o.offline_cost).sum();
        realized_cr(online, offline)
    }

    /// Largest per-vehicle realized CR.
    #[must_use]
    pub fn worst_cr(&self) -> f64 {
        self.outcomes.iter().map(|o| o.cr).fold(1.0, f64::max)
    }
}

/// Flushes one batched shard's worth of observability counters
/// (`skirental.batch.*` plus the shared `skirental.policy.*` vertex
/// tallies) — the same bulk flush [`run_fleet_batch`] performs per
/// shard, exposed for external batch drivers (such as the crash-safe
/// fleet runner) so dashboards see identical totals whichever engine
/// served the fleet.
pub fn flush_shard_observability(
    vehicles: u64,
    decisions: u64,
    observations: u64,
    tally: &VertexTally,
) {
    obs::metrics().flush_batch_shard(vehicles, decisions, observations, tally);
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

#[inline(always)]
fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// One shard's worth of work for [`run_fleet_batch`]: time-major batched
/// decide/observe over the shard's vehicles, per-vehicle cost ledgers,
/// one metrics flush and (optionally) one trace digest at the end.
fn process_shard(
    base: usize,
    shard: &[Vec<f64>],
    break_even: BreakEven,
    cfg: &BatchConfig,
) -> Result<(Vec<AdaptiveOutcome>, ShardDigest), Error> {
    let lanes = shard.len();
    let mut store = match cfg.window {
        Some(w) => BatchStore::with_window(break_even, lanes, w),
        None => BatchStore::new(break_even, lanes),
    }
    .min_history(cfg.min_history);

    let mut rngs: Vec<CounterRng> =
        (0..lanes).map(|i| CounterRng::for_stream(cfg.seed, (base + i) as u64)).collect();
    let mut thresholds = vec![0.0_f64; lanes];
    let mut vertices = vec![VertexKind::ColdStart; lanes];
    let mut online = vec![0.0_f64; lanes];
    let mut offline = vec![0.0_f64; lanes];

    // Every lane is live for the common prefix; stragglers of ragged
    // shards run one lane at a time through the same kernel.
    let common_len = shard.iter().map(Vec::len).min().unwrap_or(0);
    let max_len = shard.iter().map(Vec::len).max().unwrap_or(0);
    let mut tally = VertexTally::default();
    let mut hash = FNV_OFFSET;
    let mut observations = 0u64;

    let settle = |lane: usize,
                  y: f64,
                  x: f64,
                  v: VertexKind,
                  online: &mut [f64],
                  offline: &mut [f64],
                  store: &mut BatchStore,
                  tally: &mut VertexTally,
                  hash: &mut u64| {
        // Same cost expression as `AdaptiveController::run` (the batch
        // vertices never draw an infinite threshold, but keeping the
        // guard keeps the expression — and its FP result — identical).
        let cost = if x.is_infinite() { y } else { break_even.online_cost(x, y) };
        online[lane] += cost;
        offline[lane] += break_even.offline_cost(y);
        tally.count(v);
        *hash = fnv1a(*hash, &x.to_bits().to_le_bytes());
        *hash = fnv1a(*hash, &[v as u8]);
        store.observe(lane, y);
    };

    // Time-major so one `decide_batch` serves every lane per step;
    // `t` indexes the ragged per-lane traces, which an iterator over
    // `shard` can't express.
    #[allow(clippy::needless_range_loop)]
    for t in 0..common_len {
        store.decide_batch(&mut rngs, &mut thresholds, &mut vertices)?;
        for lane in 0..lanes {
            let y = shard[lane][t];
            settle(
                lane,
                y,
                thresholds[lane],
                vertices[lane],
                &mut online,
                &mut offline,
                &mut store,
                &mut tally,
                &mut hash,
            );
            observations += 1;
        }
    }
    for t in common_len..max_len {
        for lane in 0..lanes {
            if t < shard[lane].len() {
                let (x, v) = store.decide_lane(lane, &mut rngs[lane]);
                let y = shard[lane][t];
                settle(lane, y, x, v, &mut online, &mut offline, &mut store, &mut tally, &mut hash);
                observations += 1;
            }
        }
    }

    let m = obs::metrics();
    m.flush_batch_shard(lanes as u64, tally.total(), observations, &tally);

    let outcomes: Vec<AdaptiveOutcome> = (0..lanes)
        .map(|i| {
            let cr = realized_cr(online[i], offline[i]);
            m.record_cr(cr);
            AdaptiveOutcome {
                online_cost: online[i],
                offline_cost: offline[i],
                cr,
                stops: shard[i].len(),
            }
        })
        .collect();

    let digest = ShardDigest {
        base,
        vehicles: lanes,
        decisions: tally.total(),
        threshold_hash: hash,
        tally,
    };
    if obsv::tracer::observing() {
        obsv::tracer::set_stream(cfg.trace_stream_base + base as u64);
        obsv::tracer::emit(obsv::TraceEvent::BatchShardDigest {
            shard: base as u64,
            vehicles: lanes as u64,
            decisions: digest.decisions,
            threshold_hash: digest.threshold_hash,
            cold_start: tally.cold_start,
            det: tally.det,
            toi: tally.toi,
            b_det: tally.b_det,
            n_rand: tally.n_rand,
        });
    }
    Ok((outcomes, digest))
}

/// Runs the honest adaptive online loop over a whole fleet through the
/// batched engine: vehicles are sharded contiguously across `threads`
/// worker threads ([`crate::parallel::try_shard_map`]), each shard is
/// decided time-major through [`BatchStore::decide_batch`], and
/// observability is flushed once per shard.
///
/// Per-vehicle outcomes are **bit-identical** to [`run_fleet_scalar`]
/// with the same config, for any thread count: the per-vehicle RNG
/// streams are keyed by global vehicle index and each lane's estimator
/// state and cost ledger evolve independently of shard boundaries.
///
/// # Errors
///
/// [`Error::EmptyTrace`] if the fleet is empty or any vehicle's trace
/// is.
///
/// # Panics
///
/// Panics if `threads == 0` or a stop length is negative or non-finite
/// (matching the scalar controller's contract).
pub fn run_fleet_batch(
    vehicle_stops: &[Vec<f64>],
    break_even: BreakEven,
    cfg: &BatchConfig,
    threads: usize,
) -> Result<FleetBatchReport, Error> {
    assert!(threads > 0, "need at least one thread");
    if vehicle_stops.is_empty() || vehicle_stops.iter().any(Vec::is_empty) {
        return Err(Error::EmptyTrace);
    }
    let shards = crate::parallel::try_shard_map(vehicle_stops, threads, |base, shard| {
        process_shard(base, shard, break_even, cfg)
    })?;
    let mut outcomes = Vec::with_capacity(vehicle_stops.len());
    let mut digests = Vec::with_capacity(shards.len());
    for (shard_outcomes, digest) in shards {
        outcomes.extend(shard_outcomes);
        digests.push(digest);
    }
    Ok(FleetBatchReport { outcomes, digests })
}

/// The scalar reference for [`run_fleet_batch`]: one
/// [`AdaptiveController`] per vehicle, driven serially through the
/// `&mut dyn RngCore` path with the *same* per-vehicle [`CounterRng`]
/// streams. Exists so tests, benches, and the perf gate can compare the
/// batch engine against the exact per-vehicle semantics it replaces.
///
/// # Errors
///
/// [`Error::EmptyTrace`] if the fleet is empty or any vehicle's trace
/// is.
pub fn run_fleet_scalar(
    vehicle_stops: &[Vec<f64>],
    break_even: BreakEven,
    cfg: &BatchConfig,
) -> Result<Vec<AdaptiveOutcome>, Error> {
    if vehicle_stops.is_empty() {
        return Err(Error::EmptyTrace);
    }
    let mut outcomes = Vec::with_capacity(vehicle_stops.len());
    for (i, stops) in vehicle_stops.iter().enumerate() {
        let mut ctl = match cfg.window {
            Some(w) => AdaptiveController::with_window(break_even, w),
            None => AdaptiveController::new(break_even),
        }
        .min_history(cfg.min_history);
        let mut rng = CounterRng::for_stream(cfg.seed, i as u64);
        outcomes.push(ctl.run(stops, &mut rng)?);
    }
    Ok(outcomes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::MomentEstimator;

    fn b28() -> BreakEven {
        BreakEven::new(28.0).unwrap()
    }

    #[test]
    fn shard_plan_covers_every_lane_once() {
        for lanes in [1usize, 2, 7, 96, 100, 4096] {
            for shards in [1usize, 2, 3, 8, 64, 200] {
                let plan = ShardPlan::new(lanes, shards);
                assert!(plan.shard_count() <= shards.min(lanes));
                let mut next = 0usize;
                for (si, (base, len)) in plan.ranges().enumerate() {
                    assert_eq!(base, next);
                    assert!(len > 0);
                    for lane in base..base + len {
                        assert_eq!(plan.shard_of(lane), si);
                    }
                    next = base + len;
                }
                assert_eq!(next, lanes);
                assert_eq!(plan.lanes(), lanes);
            }
        }
    }

    #[test]
    fn shard_plan_matches_try_shard_map_layout() {
        // The plan must agree with the layout `run_fleet_batch` gets from
        // `parallel::try_shard_map`, or external drivers would disagree
        // with the engine about shard membership.
        let items: Vec<usize> = (0..37).collect();
        for threads in [1usize, 2, 4, 7, 16] {
            let plan = ShardPlan::new(items.len(), threads);
            let observed: Vec<(usize, usize)> =
                crate::parallel::try_shard_map(&items, threads, |base, shard| {
                    Ok::<_, Error>((base, shard.len()))
                })
                .unwrap();
            assert_eq!(plan.ranges().collect::<Vec<_>>(), observed);
        }
    }

    #[test]
    fn counter_rng_matches_its_pure_function() {
        let mut rng = CounterRng::for_stream(7, 3);
        let (key, _) = rng.state();
        for i in 0..100 {
            assert_eq!(rng.next_u64(), CounterRng::value_at(key, i));
        }
        assert_eq!(rng.state(), (key, 100));
    }

    #[test]
    fn counter_rng_streams_differ() {
        let a: Vec<u64> = {
            let mut r = CounterRng::for_stream(1, 0);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = CounterRng::for_stream(1, 1);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, b);
    }

    #[test]
    fn store_moments_match_scalar_estimator() {
        let stops = [3.0, 40.0, 7.0, 28.0, 12.0, 100.0, 0.5];
        for window in [None, Some(3), Some(5)] {
            let mut est = match window {
                Some(w) => MomentEstimator::with_window(b28(), w),
                None => MomentEstimator::new(b28()),
            };
            let mut store = match window {
                Some(w) => BatchStore::with_window(b28(), 2, w),
                None => BatchStore::new(b28(), 2),
            };
            for &y in &stops {
                est.observe(y);
                store.observe(0, y);
            }
            let s = est.stats().unwrap();
            let (mu, q) = store.lane_moments(0).unwrap();
            assert_eq!(mu.to_bits(), s.moments().mu_b_minus.to_bits(), "window {window:?}");
            assert_eq!(q.to_bits(), s.moments().q_b_plus.to_bits(), "window {window:?}");
            assert_eq!(store.lane_len(0), est.len());
            // The untouched lane stays empty.
            assert!(store.lane_moments(1).is_none());
        }
    }

    #[test]
    fn decide_batch_rejects_mismatched_shapes() {
        let store = BatchStore::new(b28(), 3);
        let mut rngs: Vec<CounterRng> = (0..3).map(|i| CounterRng::for_stream(0, i)).collect();
        let mut short_rngs = rngs.clone();
        short_rngs.pop();
        let mut thresholds = vec![0.0; 3];
        let mut vertices = vec![VertexKind::ColdStart; 3];

        let err = store.decide_batch(&mut short_rngs, &mut thresholds, &mut vertices).unwrap_err();
        assert_eq!(err, Error::ShardShapeMismatch { lanes: 3, slot: "rngs", len: 2 });

        let mut short_thresholds = vec![0.0; 2];
        let err = store.decide_batch(&mut rngs, &mut short_thresholds, &mut vertices).unwrap_err();
        assert_eq!(err, Error::ShardShapeMismatch { lanes: 3, slot: "thresholds", len: 2 });
        // Rejected calls must not advance any RNG.
        assert!(rngs.iter().all(|r| r.state().1 == 0));

        let mut short_vertices = vec![VertexKind::ColdStart; 4];
        let err = store.decide_batch(&mut rngs, &mut thresholds, &mut short_vertices).unwrap_err();
        assert_eq!(err, Error::ShardShapeMismatch { lanes: 3, slot: "vertices", len: 4 });
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn observe_batch_validates_before_mutating() {
        let mut store = BatchStore::new(b28(), 2);
        assert_eq!(
            store.observe_batch(&[1.0]),
            Err(Error::ShardShapeMismatch { lanes: 2, slot: "observations", len: 1 })
        );
        assert_eq!(
            store.observe_batch(&[1.0, f64::NAN]),
            Err(Error::InvalidStop { bits: f64::NAN.to_bits() })
        );
        // Nothing entered either lane.
        assert_eq!(store.lane_len(0), 0);
        assert_eq!(store.lane_len(1), 0);
        store.observe_batch(&[1.0, 50.0]).unwrap();
        assert_eq!(store.lane_len(0), 1);
        let (mu, q) = store.lane_moments(1).unwrap();
        assert_eq!(mu, 0.0);
        assert_eq!(q, 1.0);
    }

    #[test]
    fn cold_start_consumes_exactly_one_draw() {
        let store = BatchStore::new(b28(), 1).min_history(5);
        let mut rng = CounterRng::for_stream(9, 0);
        let (x, v) = store.decide_lane(0, &mut rng);
        assert_eq!(v, VertexKind::ColdStart);
        assert!((0.0..=28.0).contains(&x));
        assert_eq!(rng.state().1, 1);
    }

    #[test]
    fn deterministic_vertices_consume_no_draws() {
        // All-long history → TOI; threshold 0, RNG untouched.
        let mut store = BatchStore::new(b28(), 1);
        for _ in 0..10 {
            store.observe(0, 500.0);
        }
        let mut rng = CounterRng::for_stream(2, 0);
        let (x, v) = store.decide_lane(0, &mut rng);
        assert_eq!(v, VertexKind::Toi);
        assert_eq!(x, 0.0);
        assert_eq!(rng.state().1, 0);
    }

    #[test]
    fn clear_lane_returns_to_cold_start() {
        let mut store = BatchStore::with_window(b28(), 2, 4);
        for _ in 0..6 {
            store.observe(0, 500.0);
        }
        store.clear_lane(0);
        assert_eq!(store.lane_len(0), 0);
        assert!(store.lane_moments(0).is_none());
        assert_eq!(store.lane_sum_sq(0), 0.0);
        let mut rng = CounterRng::for_stream(3, 0);
        let (_, v) = store.decide_lane(0, &mut rng);
        assert_eq!(v, VertexKind::ColdStart);
        // Refill behaves like a fresh lane.
        store.observe(0, 2.0);
        assert_eq!(store.lane_moments(0), Some((2.0, 0.0)));
    }

    #[test]
    fn sum_sq_tracks_window() {
        let mut store = BatchStore::with_window(b28(), 1, 2);
        store.observe(0, 3.0);
        store.observe(0, 4.0);
        assert_eq!(store.lane_sum_sq(0), 25.0);
        store.observe(0, 5.0); // evicts the 3
        assert_eq!(store.lane_sum_sq(0), 41.0);
    }

    #[test]
    fn fleet_batch_matches_scalar_bitwise() {
        // Mixed-regime traces: short, long, and alternating stops with
        // ragged lengths.
        let fleet: Vec<Vec<f64>> = (0..13)
            .map(|i| {
                let mut r = CounterRng::for_stream(77, i as u64);
                (0..(40 + 17 * i))
                    .map(|_| {
                        let u = (r.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                        if u < 0.3 {
                            40.0 + 100.0 * u
                        } else {
                            30.0 * u
                        }
                    })
                    .collect()
            })
            .collect();
        for cfg in [
            BatchConfig::default(),
            BatchConfig { window: Some(10), min_history: 3, seed: 5, trace_stream_base: 0 },
        ] {
            let scalar = run_fleet_scalar(&fleet, b28(), &cfg).unwrap();
            for threads in [1, 2, 8] {
                let batch = run_fleet_batch(&fleet, b28(), &cfg, threads).unwrap();
                assert_eq!(batch.outcomes.len(), scalar.len());
                for (got, want) in batch.outcomes.iter().zip(&scalar) {
                    assert_eq!(got.online_cost.to_bits(), want.online_cost.to_bits());
                    assert_eq!(got.offline_cost.to_bits(), want.offline_cost.to_bits());
                    assert_eq!(got.cr.to_bits(), want.cr.to_bits());
                    assert_eq!(got.stops, want.stops);
                }
                assert_eq!(
                    batch.total_decisions(),
                    fleet.iter().map(Vec::len).sum::<usize>() as u64
                );
            }
        }
    }

    #[test]
    fn vertex_totals_shard_layout_independent() {
        let fleet: Vec<Vec<f64>> =
            (0..16).map(|i| (0..50).map(|t| ((i * 53 + t * 7) % 90) as f64).collect()).collect();
        let cfg = BatchConfig { window: Some(20), ..BatchConfig::default() };
        let one = run_fleet_batch(&fleet, b28(), &cfg, 1).unwrap();
        let eight = run_fleet_batch(&fleet, b28(), &cfg, 8).unwrap();
        assert_eq!(one.vertex_totals(), eight.vertex_totals());
        assert_eq!(one.fleet_cr().to_bits(), eight.fleet_cr().to_bits());
        assert_eq!(one.worst_cr().to_bits(), eight.worst_cr().to_bits());
    }

    #[test]
    fn fleet_batch_rejects_empty() {
        let cfg = BatchConfig::default();
        assert_eq!(run_fleet_batch(&[], b28(), &cfg, 2), Err(Error::EmptyTrace));
        assert_eq!(run_fleet_batch(&[vec![1.0], vec![]], b28(), &cfg, 2), Err(Error::EmptyTrace));
        assert!(run_fleet_scalar(&[], b28(), &cfg).is_err());
    }

    #[test]
    fn lane_roundtrip_is_lossless() {
        let mut store = BatchStore::with_window(b28(), 2, 4).min_history(2);
        for &y in &[3.0, 50.0, 7.0, 28.0, 12.0, 100.0] {
            store.observe(0, y);
        }
        let state = store.export_lane(0);
        let mut fresh = BatchStore::with_window(b28(), 2, 4).min_history(2);
        fresh.restore_lane(0, &state).unwrap();
        assert_eq!(fresh.export_lane(0), state);
        assert_eq!(fresh.lane_moments(0), store.lane_moments(0));
        // Identical decisions and future evolution after restore.
        let mut a = CounterRng::for_stream(11, 0);
        let mut b = CounterRng::for_stream(11, 0);
        assert_eq!(store.decide_lane(0, &mut a), fresh.decide_lane(0, &mut b));
        store.observe(0, 9.0);
        fresh.observe(0, 9.0);
        assert_eq!(store.export_lane(0), fresh.export_lane(0));
    }

    #[test]
    fn restore_lane_rejects_invalid_states() {
        let mut store = BatchStore::with_window(b28(), 1, 4);
        let good = store.export_lane(0);
        let cases: Vec<(LaneState, &str)> = vec![
            (LaneState { ring: vec![0.0; 3], ..good.clone() }, "ring length"),
            (LaneState { count: 5, ..good.clone() }, "count exceeds window"),
            (LaneState { head: 4, ..good.clone() }, "head out of range"),
            (LaneState { count: 2, long_count: 3, ..good.clone() }, "long > count"),
            (LaneState { short_sum: f64::NAN, ..good.clone() }, "non-finite sum"),
        ];
        for (bad, what) in cases {
            let err = store.restore_lane(0, &bad).unwrap_err();
            assert!(
                matches!(err, Error::InvalidPersistedState { .. }),
                "{what}: unexpected {err:?}"
            );
        }
        // Full-history store rejects ring-bearing state.
        let mut flat = BatchStore::new(b28(), 1);
        assert!(matches!(flat.restore_lane(0, &good), Err(Error::InvalidPersistedState { .. })));
        assert!(flat.restore_lane(0, &LaneState { ring: Vec::new(), ..good }).is_ok());
    }

    #[test]
    fn from_state_resumes_rng_stream() {
        let mut rng = CounterRng::for_stream(5, 42);
        for _ in 0..7 {
            rng.next_u64();
        }
        let (key, ctr) = rng.state();
        let mut resumed = CounterRng::from_state(key, ctr);
        for _ in 0..10 {
            assert_eq!(resumed.next_u64(), rng.next_u64());
        }
    }

    #[test]
    fn store_config_getters() {
        let store = BatchStore::with_window(b28(), 3, 7).min_history(4);
        assert_eq!(store.window(), Some(7));
        assert_eq!(store.required_history(), 4);
        assert_eq!(BatchStore::new(b28(), 1).window(), None);
    }

    #[test]
    fn vertex_names_match_paper() {
        assert_eq!(VertexKind::Det.name(), "DET");
        assert_eq!(VertexKind::Toi.name(), "TOI");
        assert_eq!(VertexKind::BDet.name(), "b-DET");
        assert_eq!(VertexKind::NRand.name(), "N-Rand");
        assert_eq!(VertexKind::ColdStart.name(), "N-Rand");
    }
}
