//! The paper's equations as an executable index.
//!
//! Every numbered formula from the paper that the library relies on is
//! exposed here under its equation number, implemented directly from the
//! text (not via the production code), and unit tests cross-check each
//! one against the corresponding production implementation. This is the
//! place to look when auditing the reproduction equation by equation:
//!
//! | eq. | function | also implemented in |
//! |---|---|---|
//! | (1) | [`eq1_break_even`] | [`crate::BreakEven`] |
//! | (2) | [`eq2_offline_cost`] | [`BreakEven::offline_cost`] |
//! | (3) | [`eq3_online_cost`] | [`BreakEven::online_cost`] |
//! | (6) | [`eq6_deterministic_minimax`] | `cr(B, ·) ≤ 2` tests |
//! | (7) | [`eq7_n_rand_pdf`] | [`crate::policy::NRand`] |
//! | (9) | [`eq9_mom_rand_pdf`] | [`crate::policy::MomRand`] |
//! | (13) | [`eq13_expected_offline_cost`] | [`ConstrainedMoments::expected_offline_cost`] |
//! | (14) | [`eq14_expected_det_cost`] | [`crate::VertexCosts::det`] |
//! | (31) | [`eq31_lagrange_multipliers`] | verified affine-cost identity |
//! | (32) | [`eq32_k_coefficients`] | [`crate::ConstrainedStats::solve_lp`] |
//! | (34) | [`eq34_b_det_worst_cost`] | [`crate::adversary::short_mass_adversary`] |
//! | (35) | [`eq35_b_det_optimal_cost`] | [`crate::ConstrainedStats::b_det_vertex`] |
//! | (36) | [`eq36_b_det_condition`] | same |
//! | (38) | [`eq38_b_det_worst_cr`] | [`crate::ConstrainedStats::worst_case_cr`] |
//!
//! (Appendix C's eqs. (45)–(47) live in the `powertrain` crate.)
//!
//! [`BreakEven::offline_cost`]: crate::BreakEven::offline_cost
//! [`BreakEven::online_cost`]: crate::BreakEven::online_cost
//! [`ConstrainedMoments::expected_offline_cost`]: stopmodel::ConstrainedMoments::expected_offline_cost

use std::f64::consts::E;

/// Eq. (1): the break-even interval `B = cost_restart / cost_idling_per_s`.
///
/// # Panics
///
/// Panics unless both costs are positive and finite.
#[must_use]
pub fn eq1_break_even(cost_restart: f64, cost_idling_per_s: f64) -> f64 {
    assert!(cost_restart.is_finite() && cost_restart > 0.0, "restart cost must be positive");
    assert!(
        cost_idling_per_s.is_finite() && cost_idling_per_s > 0.0,
        "idling rate must be positive"
    );
    cost_restart / cost_idling_per_s
}

/// Eq. (2): the offline cost `min(y, B)`.
#[must_use]
pub fn eq2_offline_cost(b: f64, y: f64) -> f64 {
    if y < b {
        y
    } else {
        b
    }
}

/// Eq. (3): the online cost for threshold `x` — `y` if `y < x`, else
/// `x + B`.
#[must_use]
pub fn eq3_online_cost(b: f64, x: f64, y: f64) -> f64 {
    if y < x {
        y
    } else {
        x + b
    }
}

/// Eq. (6): `min_x max_y cr(x, y)`, evaluated by brute force on a grid.
/// Returns `(x*, cr*)`; the paper's result is `x* = B`, `cr* = 2`.
///
/// # Panics
///
/// Panics if `grid < 4` or `b ≤ 0`.
#[must_use]
pub fn eq6_deterministic_minimax(b: f64, grid: usize) -> (f64, f64) {
    assert!(grid >= 4, "grid must have at least 4 points");
    assert!(b > 0.0, "break-even must be positive");
    let mut best = (0.0, f64::INFINITY);
    for i in 0..=grid {
        // Threshold sweep beyond B too, to show B is the global argmin.
        let x = 2.0 * b * i as f64 / grid as f64;
        let mut worst: f64 = 0.0;
        for j in 1..=4 * grid {
            let y = 4.0 * b * j as f64 / (4 * grid) as f64;
            let cr = eq3_online_cost(b, x, y) / eq2_offline_cost(b, y);
            worst = worst.max(cr);
            // The adversary also probes just at the threshold (the jump).
            if x > 0.0 && x <= 4.0 * b {
                let cr_at_x = eq3_online_cost(b, x, x) / eq2_offline_cost(b, x);
                worst = worst.max(cr_at_x);
            }
        }
        if worst < best.1 {
            best = (x, worst);
        }
    }
    best
}

/// Eq. (7): the N-Rand threshold density `e^{x/B} / (B(e−1))` on `[0, B]`.
#[must_use]
pub fn eq7_n_rand_pdf(b: f64, x: f64) -> f64 {
    if (0.0..=b).contains(&x) {
        (x / b).exp() / (b * (E - 1.0))
    } else {
        0.0
    }
}

/// Eq. (9): the MOM-Rand threshold density `(e^{x/B} − 1) / (B(e−2))` on
/// `[0, B]` (applicable when the mean is at most `2(e−2)/(e−1)·B`).
#[must_use]
pub fn eq9_mom_rand_pdf(b: f64, x: f64) -> f64 {
    if (0.0..=b).contains(&x) {
        ((x / b).exp() - 1.0) / (b * (E - 2.0))
    } else {
        0.0
    }
}

/// Eq. (13): `E[cost_offline] = μ_B⁻ + q_B⁺·B`.
#[must_use]
pub fn eq13_expected_offline_cost(mu_b_minus: f64, q_b_plus: f64, b: f64) -> f64 {
    mu_b_minus + q_b_plus * b
}

/// Eq. (14): `E[cost_DET] = μ_B⁻ + 2·q_B⁺·B`.
#[must_use]
pub fn eq14_expected_det_cost(mu_b_minus: f64, q_b_plus: f64, b: f64) -> f64 {
    mu_b_minus + 2.0 * q_b_plus * b
}

/// Eq. (31): the Lagrange multipliers as functions of the atom masses,
/// `λ₁ = α·B` and `λ₂ = (1 − α − β − γ)·e/(e−1) + β`.
#[must_use]
pub fn eq31_lagrange_multipliers(alpha: f64, beta: f64, gamma: f64, b: f64) -> (f64, f64) {
    (alpha * b, (1.0 - alpha - beta - gamma) * E / (E - 1.0) + beta)
}

/// Eq. (32): the LP coefficients `(K_α, K_β, K_γ)` given the statistics
/// and the b-DET cost at the candidate `b` (the worst-case cost with the
/// short mass at `{0, b}`, i.e. `μ₁ = 0`, `q₂ = μ_B⁻/b`).
#[must_use]
pub fn eq32_k_coefficients(
    mu_b_minus: f64,
    q_b_plus: f64,
    b: f64,
    b_det_b: f64,
) -> (f64, f64, f64) {
    let base = E / (E - 1.0) * eq13_expected_offline_cost(mu_b_minus, q_b_plus, b);
    let k_alpha = b - base;
    let k_beta = eq14_expected_det_cost(mu_b_minus, q_b_plus, b) - base;
    let k_gamma = eq34_b_det_worst_cost(mu_b_minus, q_b_plus, b, b_det_b) - base;
    (k_alpha, k_beta, k_gamma)
}

/// Eq. (34): the worst-case expected cost of b-DET with threshold `x`:
/// `(x + B)·(μ_B⁻/x + q_B⁺)`.
///
/// # Panics
///
/// Panics if `x ≤ 0`.
#[must_use]
pub fn eq34_b_det_worst_cost(mu_b_minus: f64, q_b_plus: f64, b: f64, x: f64) -> f64 {
    assert!(x > 0.0, "threshold must be positive");
    (x + b) * (mu_b_minus / x + q_b_plus)
}

/// Eq. (35): the minimized b-DET cost `(√μ_B⁻ + √(q_B⁺·B))²`, attained at
/// `b* = √(μ_B⁻·B / q_B⁺)`. Returns `(b*, cost)`.
///
/// # Panics
///
/// Panics if `q_b_plus ≤ 0` (the optimum is undefined without long
/// stops).
#[must_use]
pub fn eq35_b_det_optimal_cost(mu_b_minus: f64, q_b_plus: f64, b: f64) -> (f64, f64) {
    assert!(q_b_plus > 0.0, "needs a positive long-stop probability");
    let b_star = (mu_b_minus * b / q_b_plus).sqrt();
    let cost = (mu_b_minus.sqrt() + (q_b_plus * b).sqrt()).powi(2);
    (b_star, cost)
}

/// Eq. (36): the feasibility condition `μ_B⁻/B < (1 − q_B⁺)²/q_B⁺`.
#[must_use]
pub fn eq36_b_det_condition(mu_b_minus: f64, q_b_plus: f64, b: f64) -> bool {
    q_b_plus > 0.0 && mu_b_minus / b < (1.0 - q_b_plus).powi(2) / q_b_plus
}

/// Eq. (38): the b-DET worst-case CR
/// `(√μ_B⁻ + √(q_B⁺·B))² / (μ_B⁻ + q_B⁺·B)`.
#[must_use]
pub fn eq38_b_det_worst_cr(mu_b_minus: f64, q_b_plus: f64, b: f64) -> f64 {
    (mu_b_minus.sqrt() + (q_b_plus * b).sqrt()).powi(2)
        / eq13_expected_offline_cost(mu_b_minus, q_b_plus, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::BreakEven;
    use crate::policy::{MomRand, NRand};
    use crate::{e_ratio, ConstrainedStats};
    use numeric::approx_eq;
    use numeric::quadrature::integrate;

    const B: f64 = 28.0;

    fn be() -> BreakEven {
        BreakEven::new(B).unwrap()
    }

    #[test]
    fn eq1_matches_newtype() {
        assert_eq!(eq1_break_even(28.0, 1.0), 28.0);
        // The paper's SSV: 0.0258 cents/s idling, 28·0.0258 cents restart.
        let b = eq1_break_even(28.0 * 0.0258, 0.0258);
        assert!(approx_eq(b, 28.0, 1e-12));
    }

    #[test]
    fn eq2_eq3_match_production_cost_model() {
        for yi in 0..120 {
            let y = yi as f64;
            assert_eq!(eq2_offline_cost(B, y), be().offline_cost(y));
            for xi in 0..60 {
                let x = xi as f64;
                assert_eq!(eq3_online_cost(B, x, y), be().online_cost(x, y));
            }
        }
    }

    #[test]
    fn eq6_minimax_is_b_and_two() {
        let (x_star, cr_star) = eq6_deterministic_minimax(B, 200);
        assert!(approx_eq(x_star, B, 0.02 * B), "x* = {x_star}");
        assert!(approx_eq(cr_star, 2.0, 1e-6), "cr* = {cr_star}");
    }

    #[test]
    fn eq7_matches_nrand_and_normalizes() {
        let p = NRand::new(be());
        let mass = integrate(|x| eq7_n_rand_pdf(B, x), 0.0, B, 1e-11);
        assert!(approx_eq(mass, 1.0, 1e-9));
        for &x in &[0.0, 7.0, 21.0, 28.0] {
            assert!(approx_eq(eq7_n_rand_pdf(B, x), p.threshold_pdf(x), 1e-12));
        }
    }

    #[test]
    fn eq9_matches_momrand_and_normalizes() {
        let p = MomRand::new(be(), 10.0).unwrap();
        let mass = integrate(|x| eq9_mom_rand_pdf(B, x), 0.0, B, 1e-11);
        assert!(approx_eq(mass, 1.0, 1e-9));
        for &x in &[1.0, 14.0, 27.0] {
            assert!(approx_eq(eq9_mom_rand_pdf(B, x), p.threshold_pdf(x), 1e-12));
        }
    }

    #[test]
    fn eq13_eq14_match_constrained_stats() {
        let s = ConstrainedStats::new(be(), 5.0, 0.3).unwrap();
        assert!(approx_eq(
            eq13_expected_offline_cost(5.0, 0.3, B),
            s.expected_offline_cost(),
            1e-12
        ));
        assert!(approx_eq(eq14_expected_det_cost(5.0, 0.3, B), s.vertex_costs().det, 1e-12));
    }

    #[test]
    fn eq31_affine_cost_identity() {
        // The multipliers are defined by C(P̃, y) = λ₁ + λ₂·y for y in
        // [0, B], where P̃ = α·δ(ε) + β·δ(B) + (1−α−β−γ)·(N-Rand density).
        // Verify the identity numerically at several y.
        let (alpha, beta, gamma) = (0.2, 0.3, 0.1);
        let (l1, l2) = eq31_lagrange_multipliers(alpha, beta, gamma, B);
        let cont = 1.0 - alpha - beta - gamma;
        for &y in &[0.1, 5.0, 14.0, 27.9] {
            // α at ε→0 always pays B; β at B pays y (stop ends first);
            // the continuous part pays cont·e/(e−1)·y (scaled N-Rand).
            let c = alpha * B + beta * y + cont * e_ratio() * y;
            assert!(approx_eq(c, l1 + l2 * y, 1e-9), "y={y}: C = {c} vs λ1+λ2y = {}", l1 + l2 * y);
        }
    }

    #[test]
    fn eq32_signs_select_the_region() {
        // The most negative K picks the vertex; cross-check against the
        // production solver on the three pure regions.
        let cases = [
            (10.0, 0.01), // DET region → K_β most negative
            (0.05, 0.95), // TOI region → K_α most negative
            (0.56, 0.3),  // b-DET region → K_γ most negative
        ];
        for (mu, q) in cases {
            let s = ConstrainedStats::new(be(), mu, q).unwrap();
            let b_det_b = s.b_det_vertex().map_or(B, |v| v.b);
            let (ka, kb, kg) = eq32_k_coefficients(mu, q, B, b_det_b);
            let min = ka.min(kb).min(kg).min(0.0);
            let choice = s.optimal_choice();
            match choice.name() {
                "TOI" => assert!(approx_eq(ka, min, 1e-12), "mu={mu} q={q}"),
                "DET" => assert!(approx_eq(kb, min, 1e-12), "mu={mu} q={q}"),
                "b-DET" => assert!(approx_eq(kg, min, 1e-12), "mu={mu} q={q}"),
                _ => assert!(min == 0.0),
            }
        }
    }

    #[test]
    fn eq34_matches_adversary_and_eq35_is_its_minimum() {
        let (mu, q) = (5.0, 0.3);
        let (b_star, cost) = eq35_b_det_optimal_cost(mu, q, B);
        assert!(approx_eq(eq34_b_det_worst_cost(mu, q, B, b_star), cost, 1e-12));
        // b* is a stationary minimum of eq. (34).
        let eps = 1e-5;
        let up = eq34_b_det_worst_cost(mu, q, B, b_star + eps);
        let down = eq34_b_det_worst_cost(mu, q, B, b_star - eps);
        assert!(up >= cost && down >= cost);
        // And matches the production vertex.
        let s = ConstrainedStats::new(be(), mu, q).unwrap();
        let v = s.b_det_vertex().unwrap();
        assert!(approx_eq(v.b, b_star, 1e-12));
        assert!(approx_eq(v.cost, cost, 1e-12));
    }

    #[test]
    fn eq36_matches_production_gate() {
        for &(mu, q) in &[(0.56, 0.3), (13.0, 0.5), (14.0, 0.5), (5.0, 0.0), (0.0, 0.3)] {
            let s = ConstrainedStats::new(be(), mu, q).unwrap();
            let gate = eq36_b_det_condition(mu, q, B) && mu > 0.0 && q < 1.0 && {
                let (b_star, _) = if q > 0.0 {
                    eq35_b_det_optimal_cost(mu.max(1e-300), q, B)
                } else {
                    (f64::INFINITY, 0.0)
                };
                b_star <= B
            };
            assert_eq!(s.b_det_vertex().is_some(), gate, "mu={mu}, q={q}");
        }
    }

    #[test]
    fn eq38_matches_worst_case_cr_in_bdet_region() {
        let (mu, q) = (0.56, 0.3);
        let s = ConstrainedStats::new(be(), mu, q).unwrap();
        assert_eq!(s.optimal_choice().name(), "b-DET");
        assert!(approx_eq(s.worst_case_cr(), eq38_b_det_worst_cr(mu, q, B), 1e-12));
    }
}
