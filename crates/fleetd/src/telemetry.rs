//! The daemon's telemetry plane: a `fleetd`-owned metrics registry with
//! per-stage latency histograms and service health gauges, rendered in
//! the Prometheus text exposition format by [`obsv::telemetry`].
//!
//! The registry here is **separate from** [`obsv::global`]: the global
//! registry stays disabled (and its benchmark-report contents stay
//! byte-stable for the CI perf gate) while the daemon records service
//! telemetry unconditionally. Recording is off the determinism contract
//! by construction — timing feeds histograms only, never the canonical
//! trace or any RNG path.
//!
//! Stage histograms are [`obsv::LatencyHisto`]s (~2 buckets per octave,
//! 1 ns … minutes), fine enough to separate a p50 from a p99 inside one
//! decade. Counters that mirror the server's shared atomics are synced
//! at scrape time (delta under a lock, so concurrent scrapes cannot
//! double-count); gauges are last-write-wins snapshots.

use obsv::{Counter, Gauge, LatencyHisto, MetricsRegistry, MetricsSnapshot};
use std::sync::{Mutex, PoisonError};

/// The per-stage latency histogram series every healthy daemon exports.
/// Drills use this to assert the exposition is complete.
pub const STAGE_HISTOGRAMS: &[&str] = &[
    "fleetd_stage_queue_wait_seconds",
    "fleetd_stage_frame_decode_seconds",
    "fleetd_stage_engine_decide_seconds",
    "fleetd_stage_journal_append_seconds",
    "fleetd_stage_journal_fsync_seconds",
    "fleetd_stage_reply_write_seconds",
];

/// The daemon's metrics: stage histograms recorded on the hot paths,
/// health gauges refreshed at scrape time.
pub struct Telemetry {
    registry: MetricsRegistry,
    /// Time a submitted block waited in the ingest queue before the
    /// engine dequeued it.
    pub queue_wait: LatencyHisto,
    /// Time to decode one CRC-framed request.
    pub frame_decode: LatencyHisto,
    /// Time the engine spent deciding a block (post-journal).
    pub engine_decide: LatencyHisto,
    /// Time to append a block's write-ahead frames to the journal.
    pub journal_append: LatencyHisto,
    /// Time the journal `fsync` took for a block.
    pub journal_fsync: LatencyHisto,
    /// Time to write one reply frame back to the client.
    pub reply_write: LatencyHisto,
    /// Subscribers dropped for falling behind their bounded queue.
    pub subscriber_drops: Counter,
    /// Journal file length in bytes (header + every appended frame).
    pub journal_bytes: Gauge,
    /// Journal frames written since the last accepted snapshot.
    pub frames_since_snapshot: Gauge,
    /// Engine steps elapsed since the last accepted snapshot.
    pub snapshot_age_steps: Gauge,
    /// Serializes counter delta-syncs so two concurrent scrapes cannot
    /// both observe the same delta and double-add it.
    sync: Mutex<()>,
}

impl Telemetry {
    /// A fresh telemetry plane with every stage histogram registered, so
    /// the exposition lists all stages even before traffic arrives.
    #[must_use]
    pub fn new() -> Self {
        let registry = MetricsRegistry::new();
        let stage = |name: &str| registry.latency_histo(name);
        Self {
            queue_wait: stage(STAGE_HISTOGRAMS[0]),
            frame_decode: stage(STAGE_HISTOGRAMS[1]),
            engine_decide: stage(STAGE_HISTOGRAMS[2]),
            journal_append: stage(STAGE_HISTOGRAMS[3]),
            journal_fsync: stage(STAGE_HISTOGRAMS[4]),
            reply_write: stage(STAGE_HISTOGRAMS[5]),
            subscriber_drops: registry.counter("fleetd_subscriber_drops_total"),
            journal_bytes: registry.gauge("fleetd_journal_bytes"),
            frames_since_snapshot: registry.gauge("fleetd_journal_frames_since_snapshot"),
            snapshot_age_steps: registry.gauge("fleetd_snapshot_age_steps"),
            sync: Mutex::new(()),
            registry,
        }
    }

    /// Sets (registering on first use) the named gauge.
    pub fn set_gauge(&self, name: &str, value: f64) {
        self.registry.gauge(name).set(value);
    }

    /// Brings the named counter up to `observed` (a monotone reading of
    /// some authoritative atomic elsewhere). Locked so concurrent
    /// scrapes apply the delta exactly once; a smaller `observed` (never
    /// expected) is ignored rather than wrapped.
    pub fn sync_counter(&self, name: &str, observed: u64) {
        let _guard = self.sync.lock().unwrap_or_else(PoisonError::into_inner);
        let counter = self.registry.counter(name);
        let current = counter.get();
        if observed > current {
            counter.add(observed - current);
        }
    }

    /// Captures every metric's current value.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }

    /// Renders the current values in the Prometheus text exposition
    /// format (no timestamps — the scraper assigns scrape time).
    #[must_use]
    pub fn render_text(&self) -> String {
        obsv::telemetry::render(&self.registry.snapshot(), None)
    }
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_histograms_all_present_before_traffic() {
        let telemetry = Telemetry::new();
        let text = telemetry.render_text();
        let scrape = obsv::telemetry::parse(&text).unwrap();
        for name in STAGE_HISTOGRAMS {
            let hist = scrape.histograms.get(*name).unwrap();
            assert_eq!(hist.count, 0.0, "{name} should start empty");
        }
    }

    #[test]
    fn sync_counter_is_idempotent_per_observation() {
        let telemetry = Telemetry::new();
        telemetry.sync_counter("fleetd_busy_rejections_total", 3);
        telemetry.sync_counter("fleetd_busy_rejections_total", 3);
        telemetry.sync_counter("fleetd_busy_rejections_total", 5);
        // A stale (smaller) observation must not rewind the counter.
        telemetry.sync_counter("fleetd_busy_rejections_total", 2);
        let snap = telemetry.snapshot();
        assert_eq!(snap.counters["fleetd_busy_rejections_total"], 5);
    }

    #[test]
    fn stage_spans_record_into_the_exposition() {
        let telemetry = Telemetry::new();
        telemetry.queue_wait.record_seconds(0.25);
        let span = telemetry.frame_decode.start();
        span.finish();
        telemetry.set_gauge("fleetd_queue_depth", 7.0);
        let scrape = obsv::telemetry::parse(&telemetry.render_text()).unwrap();
        assert_eq!(scrape.histograms["fleetd_stage_queue_wait_seconds"].count, 1.0);
        assert_eq!(scrape.histograms["fleetd_stage_frame_decode_seconds"].count, 1.0);
        assert_eq!(scrape.gauge("fleetd_queue_depth"), Some(7.0));
    }
}
