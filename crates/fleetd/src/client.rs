//! Blocking client for the fleet daemon, plus the session recorder
//! that makes a live session byte-identically replayable offline.

use crate::proto::{self, Reply, Request, StatsInfo};
use fleetstate::FleetConfig;
use obsv::TraceRecord;
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::os::unix::net::UnixStream;
use std::path::Path;

/// Client-side failure: transport, framing, or a daemon-reported error.
#[derive(Debug)]
pub enum ClientError {
    /// Socket I/O failed (includes wrapped framing errors from
    /// [`proto::read_frame`]).
    Io(std::io::Error),
    /// A frame arrived intact but was not decodable as a reply.
    Wire(proto::WireError),
    /// The daemon answered with [`Reply::Error`].
    Daemon(String),
    /// The daemon answered with a reply kind the call did not expect.
    Unexpected(&'static str),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "i/o: {e}"),
            Self::Wire(e) => write!(f, "wire: {e}"),
            Self::Daemon(msg) => write!(f, "daemon: {msg}"),
            Self::Unexpected(what) => write!(f, "unexpected reply: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<proto::WireError> for ClientError {
    fn from(e: proto::WireError) -> Self {
        Self::Wire(e)
    }
}

/// Either transport, unified behind the client.
enum Transport {
    Unix(UnixStream),
    Tcp(std::net::TcpStream),
}

impl Read for Transport {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Self::Unix(s) => s.read(buf),
            Self::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Transport {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Self::Unix(s) => s.write(buf),
            Self::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Self::Unix(s) => s.flush(),
            Self::Tcp(s) => s.flush(),
        }
    }
}

/// A blocking connection to a fleet daemon.
pub struct Client {
    transport: Transport,
}

impl Client {
    /// Connects over a unix socket.
    ///
    /// # Errors
    ///
    /// I/O error if the socket does not exist or refuses.
    pub fn connect_unix(path: &Path) -> Result<Self, ClientError> {
        Ok(Self { transport: Transport::Unix(UnixStream::connect(path)?) })
    }

    /// Connects over TCP.
    ///
    /// # Errors
    ///
    /// I/O error if the address does not resolve or refuses.
    pub fn connect_tcp(addr: &str) -> Result<Self, ClientError> {
        Ok(Self { transport: Transport::Tcp(std::net::TcpStream::connect(addr)?) })
    }

    /// One request → one reply. `Reply::Error` becomes
    /// [`ClientError::Daemon`] so callers only match success shapes.
    fn call(&mut self, request: &Request) -> Result<Reply, ClientError> {
        proto::write_frame(&mut self.transport, &proto::encode_request(request))?;
        self.read_reply()
    }

    fn read_reply(&mut self) -> Result<Reply, ClientError> {
        let frame = proto::read_frame(&mut self.transport)?.ok_or_else(|| {
            ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "daemon closed the connection",
            ))
        })?;
        match proto::decode_reply(&frame)? {
            Reply::Error { message } => Err(ClientError::Daemon(message)),
            reply => Ok(reply),
        }
    }

    /// Introduces the client; returns the daemon's fleet configuration,
    /// its current step, and this connection's client id.
    ///
    /// # Errors
    ///
    /// Transport, framing, or daemon error.
    pub fn hello(&mut self, name: &str) -> Result<(FleetConfig, u64, u64), ClientError> {
        match self.call(&Request::Hello { name: name.to_string() })? {
            Reply::HelloAck { config, step, client_id } => Ok((config, step, client_id)),
            _ => Err(ClientError::Unexpected("hello wants HelloAck")),
        }
    }

    /// Submits a block of per-step idle rows (time-major,
    /// `rows[t][lane]`). Returns the raw reply so callers can
    /// distinguish `Decisions` from `Busy` backpressure. Pass
    /// `u64::MAX` as `first_step` to skip the step-continuity check.
    ///
    /// # Errors
    ///
    /// Transport, framing, or daemon error (e.g. step mismatch).
    pub fn submit(&mut self, first_step: u64, rows: &[Vec<f64>]) -> Result<Reply, ClientError> {
        match self.call(&Request::Submit { first_step, rows: rows.to_vec() })? {
            reply @ (Reply::Decisions { .. } | Reply::Busy { .. }) => Ok(reply),
            _ => Err(ClientError::Unexpected("submit wants Decisions or Busy")),
        }
    }

    /// Fetches the daemon's live counters.
    ///
    /// # Errors
    ///
    /// Transport, framing, or daemon error.
    pub fn stats(&mut self) -> Result<StatsInfo, ClientError> {
        match self.call(&Request::Stats)? {
            Reply::Stats(info) => Ok(info),
            _ => Err(ClientError::Unexpected("stats wants Stats")),
        }
    }

    /// Exports the full estimator state in the canonical
    /// `fleetstate` byte encoding — the byte-comparison oracle the
    /// service drill uses to prove recovery was lossless.
    ///
    /// # Errors
    ///
    /// Transport, framing, or daemon error.
    pub fn export_state(&mut self) -> Result<Vec<u8>, ClientError> {
        match self.call(&Request::ExportState)? {
            Reply::State(bytes) => Ok(bytes),
            _ => Err(ClientError::Unexpected("export wants State")),
        }
    }

    /// Asks the daemon to write a snapshot now; returns the ack text.
    ///
    /// # Errors
    ///
    /// Transport, framing, or daemon error.
    pub fn snapshot(&mut self) -> Result<String, ClientError> {
        match self.call(&Request::Snapshot)? {
            Reply::Ack { info } => Ok(info),
            _ => Err(ClientError::Unexpected("snapshot wants Ack")),
        }
    }

    /// Fetches the daemon's telemetry page (Prometheus text exposition;
    /// parse with [`obsv::telemetry::parse`]).
    ///
    /// # Errors
    ///
    /// Transport, framing, or daemon error.
    pub fn telemetry(&mut self) -> Result<String, ClientError> {
        match self.call(&Request::Telemetry)? {
            Reply::Telemetry { text } => Ok(text),
            _ => Err(ClientError::Unexpected("telemetry wants Telemetry")),
        }
    }

    /// Asks the daemon to shut down gracefully; returns the ack text.
    ///
    /// # Errors
    ///
    /// Transport, framing, or daemon error.
    pub fn shutdown(&mut self) -> Result<String, ClientError> {
        match self.call(&Request::Shutdown)? {
            Reply::Ack { info } => Ok(info),
            _ => Err(ClientError::Unexpected("shutdown wants Ack")),
        }
    }

    /// Replays the daemon's complete journal into canonical trace
    /// records: every event since the fleet was created, regenerated
    /// deterministically (the journal is never truncated by
    /// snapshots). Streams arrive chunked; this collects them all.
    ///
    /// # Errors
    ///
    /// Transport, framing, daemon error, or malformed JSONL.
    pub fn replay_events(&mut self) -> Result<Vec<TraceRecord>, ClientError> {
        proto::write_frame(&mut self.transport, &proto::encode_request(&Request::ReplayEvents))?;
        let mut records = Vec::new();
        loop {
            match self.read_reply()? {
                Reply::Events { last, jsonl } => {
                    let batch = obsv::event::parse_jsonl(&jsonl)
                        .map_err(|e| ClientError::Daemon(format!("bad event stream: {e}")))?;
                    records.extend(batch);
                    if last {
                        return Ok(records);
                    }
                }
                _ => return Err(ClientError::Unexpected("replay wants Events")),
            }
        }
    }

    /// Switches the connection to push mode: the daemon streams event
    /// batches as it processes blocks. `on_batch` is called per batch;
    /// return `false` to stop tailing (the connection is consumed
    /// either way — subscribing is the connection's final act).
    ///
    /// Returns normally when the daemon closes the stream or the
    /// callback stops it.
    ///
    /// # Errors
    ///
    /// Transport or framing error, or malformed JSONL.
    pub fn subscribe<F>(mut self, mut on_batch: F) -> Result<(), ClientError>
    where
        F: FnMut(Vec<TraceRecord>) -> bool,
    {
        proto::write_frame(&mut self.transport, &proto::encode_request(&Request::Subscribe))?;
        loop {
            let frame = match proto::read_frame(&mut self.transport)? {
                Some(f) => f,
                None => return Ok(()),
            };
            match proto::decode_reply(&frame)? {
                Reply::Events { jsonl, .. } => {
                    let batch = obsv::event::parse_jsonl(&jsonl)
                        .map_err(|e| ClientError::Daemon(format!("bad event stream: {e}")))?;
                    if !on_batch(batch) {
                        return Ok(());
                    }
                }
                Reply::Error { message } => return Err(ClientError::Daemon(message)),
                _ => return Err(ClientError::Unexpected("subscribe wants Events")),
            }
        }
    }
}

/// Accumulates trace records from a live session, deduplicated by their
/// canonical `(stream, stop, seq)` key, so the capture can be compared
/// byte-for-byte against an offline replay of the same journal.
#[derive(Debug, Default)]
pub struct SessionRecorder {
    records: BTreeMap<(u64, u64, u64), TraceRecord>,
}

impl SessionRecorder {
    /// An empty recorder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Absorbs a batch. Records seen twice (e.g. a tail overlapping a
    /// replay) collapse onto one copy — the keys are globally unique
    /// per event, so duplicates are identical.
    pub fn absorb(&mut self, batch: Vec<TraceRecord>) {
        for record in batch {
            self.records.insert(record.key(), record);
        }
    }

    /// Number of distinct records captured.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether nothing was captured.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// All records in canonical key order.
    #[must_use]
    pub fn records(&self) -> Vec<TraceRecord> {
        self.records.values().cloned().collect()
    }

    /// Records on streams strictly below `limit` — pass the fleet's
    /// meta stream to keep only per-lane decision records (dropping
    /// checkpoint and session chatter) for byte-identity comparison.
    #[must_use]
    pub fn records_below_stream(&self, limit: u64) -> Vec<TraceRecord> {
        self.records.values().filter(|r| r.stream < limit).cloned().collect()
    }

    /// Serializes the capture (key order) as canonical JSONL.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let records = self.records();
        obsv::event::to_jsonl(&records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obsv::TraceEvent;

    fn rec(stream: u64, stop: u64, seq: u64) -> TraceRecord {
        TraceRecord {
            stream,
            stop,
            seq,
            event: TraceEvent::Session {
                what: "hello".into(),
                client: 0,
                step: stop,
                detail: String::new(),
            },
        }
    }

    #[test]
    fn recorder_dedupes_and_sorts() {
        let mut recorder = SessionRecorder::new();
        recorder.absorb(vec![rec(2, 0, 0), rec(1, 5, 1)]);
        recorder.absorb(vec![rec(1, 5, 1), rec(1, 5, 0)]);
        assert_eq!(recorder.len(), 3);
        let keys: Vec<_> = recorder.records().iter().map(TraceRecord::key).collect();
        assert_eq!(keys, vec![(1, 5, 0), (1, 5, 1), (2, 0, 0)]);
    }

    #[test]
    fn stream_filter_drops_meta() {
        let mut recorder = SessionRecorder::new();
        recorder.absorb(vec![rec(0, 1, 0), rec(7, 1, 0), rec(9, 1, 0)]);
        let lanes = recorder.records_below_stream(7);
        assert_eq!(lanes.len(), 1);
        assert_eq!(lanes[0].stream, 0);
    }

    #[test]
    fn jsonl_roundtrip() {
        let mut recorder = SessionRecorder::new();
        recorder.absorb(vec![rec(3, 2, 1), rec(0, 0, 0)]);
        let text = recorder.to_jsonl();
        let parsed = obsv::event::parse_jsonl(&text).unwrap();
        assert_eq!(parsed, recorder.records());
    }
}
