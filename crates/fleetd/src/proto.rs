//! The `fleetd` wire protocol: length-prefixed, CRC-framed binary
//! messages over a byte stream.
//!
//! Every message is one **frame**, mirroring the
//! [`fleetstate::format`] container conventions with
//! its own magic so the two can never be confused:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  "FLTD"
//! 4       2     protocol version (little-endian u16, currently 1)
//! 6       1     message kind (see [`Request`] / [`Reply`] kind bytes)
//! 7       1     reserved (zero)
//! 8       4     payload length (little-endian u32)
//! 12      n     payload
//! 12+n    4     CRC-32 (IEEE) over bytes [0, 12+n)
//! ```
//!
//! All integers are little-endian; floats are IEEE-754 bit patterns.
//! Request kinds live in `[1, 63]`, reply kinds in `[64, 127]`, so a
//! stray reply can never parse as a request. The decoder is total:
//! arbitrary bytes produce a typed, offset-carrying [`WireError`] —
//! never a panic, never an unbounded allocation (`payload length` is
//! capped at [`MAX_PAYLOAD`] *before* any buffer is sized).

use fleetstate::FleetConfig;
use numeric::crc32;
use skirental::batch::VertexKind;
use std::io::{Read, Write};

/// The four magic bytes opening every protocol frame.
pub const MAGIC: [u8; 4] = *b"FLTD";

/// The current protocol version.
pub const VERSION: u16 = 1;

/// Bytes of the fixed frame header (before the payload).
pub const HEADER_LEN: usize = 12;

/// Bytes of the trailing checksum.
pub const TRAILER_LEN: usize = 4;

/// Hard cap on a frame's payload: a 4096-step block for a 262k-vehicle
/// fleet still fits, while a crafted length field cannot demand an
/// absurd allocation.
pub const MAX_PAYLOAD: u32 = 1 << 26;

/// Cap on string fields (client names, error messages).
const MAX_STRING: u32 = 1 << 16;

/// Why decoding a frame or payload failed. Every variant names the byte
/// offset (within the frame buffer handed to the decoder) at which the
/// problem was detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ends before the frame does.
    Truncated {
        /// Offset where more bytes were needed.
        offset: u64,
        /// Bytes the frame claims to need from offset 0.
        needed: u64,
        /// Bytes actually available.
        available: u64,
    },
    /// The first four bytes are not the protocol magic.
    BadMagic {
        /// Offset of the expected magic (always 0 for a frame decode).
        offset: u64,
    },
    /// A frame from a different protocol version.
    UnsupportedVersion {
        /// Offset of the version field.
        offset: u64,
        /// The version the header claims.
        version: u16,
    },
    /// The payload length field exceeds [`MAX_PAYLOAD`].
    OversizedPayload {
        /// Offset of the length field.
        offset: u64,
        /// The length the header claims.
        len: u32,
    },
    /// The frame's CRC-32 does not match its contents.
    ChecksumMismatch {
        /// Offset of the stored checksum.
        offset: u64,
        /// The checksum stored in the frame.
        stored: u32,
        /// The checksum computed over the frame's bytes.
        computed: u32,
    },
    /// A structurally valid frame whose kind byte is not a message this
    /// decoder accepts.
    UnknownKind {
        /// Offset of the kind byte.
        offset: u64,
        /// The kind byte the header carries.
        kind: u8,
    },
    /// A CRC-valid frame whose payload does not decode.
    BadPayload {
        /// Offset (within the frame) where decoding failed.
        offset: u64,
        /// What was wrong.
        what: &'static str,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Truncated { offset, needed, available } => write!(
                f,
                "truncated frame at offset {offset}: needs {needed} bytes, {available} available"
            ),
            Self::BadMagic { offset } => write!(f, "bad magic at offset {offset}"),
            Self::UnsupportedVersion { offset, version } => {
                write!(f, "unsupported protocol version {version} at offset {offset}")
            }
            Self::OversizedPayload { offset, len } => {
                write!(f, "oversized payload length {len} at offset {offset}")
            }
            Self::ChecksumMismatch { offset, stored, computed } => write!(
                f,
                "checksum mismatch at offset {offset}: stored {stored:#010x}, computed {computed:#010x}"
            ),
            Self::UnknownKind { offset, kind } => {
                write!(f, "unknown message kind {kind} at offset {offset}")
            }
            Self::BadPayload { offset, what } => {
                write!(f, "bad payload at offset {offset}: {what}")
            }
        }
    }
}

impl std::error::Error for WireError {}

// ---------------------------------------------------------------------
// Payload reader (total: every access bounds-checked).
// ---------------------------------------------------------------------

struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, at: 0 }
    }

    fn err(&self, what: &'static str) -> WireError {
        WireError::BadPayload { offset: self.at as u64, what }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.at.checked_add(n).ok_or(self.err("length overflow"))?;
        if end > self.bytes.len() {
            return Err(self.err("payload ends early"));
        }
        let s = &self.bytes[self.at..end];
        self.at = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn string(&mut self) -> Result<String, WireError> {
        let len = self.u32()?;
        if len > MAX_STRING {
            return Err(self.err("string too long"));
        }
        let bytes = self.take(len as usize)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| self.err("string is not UTF-8"))
    }

    fn finish(self) -> Result<(), WireError> {
        if self.at != self.bytes.len() {
            Err(WireError::BadPayload { offset: self.at as u64, what: "trailing payload bytes" })
        } else {
            Ok(())
        }
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

fn put_string(out: &mut Vec<u8>, s: &str) {
    let bytes = &s.as_bytes()[..s.len().min(MAX_STRING as usize)];
    put_u32(out, bytes.len() as u32);
    out.extend_from_slice(bytes);
}

fn put_config(out: &mut Vec<u8>, config: &FleetConfig) {
    put_u32(out, config.lanes as u32);
    put_f64(out, config.break_even);
    put_u32(out, config.window.map_or(0, |w| w as u32));
    put_u32(out, config.min_history as u32);
    put_u64(out, config.seed);
    put_u64(out, config.trace_stream_base);
}

fn read_config(r: &mut Reader<'_>) -> Result<FleetConfig, WireError> {
    let lanes = r.u32()? as usize;
    let break_even = r.f64()?;
    let window = match r.u32()? {
        0 => None,
        w => Some(w as usize),
    };
    let min_history = r.u32()? as usize;
    let seed = r.u64()?;
    let trace_stream_base = r.u64()?;
    Ok(FleetConfig { lanes, break_even, window, min_history, seed, trace_stream_base })
}

// ---------------------------------------------------------------------
// Messages.
// ---------------------------------------------------------------------

/// A client → daemon message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Handshake: identify the client, learn the fleet configuration and
    /// current step.
    Hello {
        /// A short client name (for session trace events).
        name: String,
    },
    /// Ingest a block of observations, time-major: `rows[t][lane]` is
    /// lane `lane`'s stop duration at step `first_step + t`. Answered
    /// with [`Reply::Decisions`], [`Reply::Busy`] (backpressure), or
    /// [`Reply::Error`].
    Submit {
        /// The step the client believes the block starts at
        /// (`u64::MAX` = don't check). The daemon rejects a mismatch so
        /// a resumed client can't silently double-feed.
        first_step: u64,
        /// The observation rows.
        rows: Vec<Vec<f64>>,
    },
    /// Serving statistics. Answered with [`Reply::Stats`].
    Stats,
    /// The complete fleet state ([`fleetstate::encode_fleet_state`]
    /// bytes) — the byte-comparison oracle drills use. Answered with
    /// [`Reply::State`].
    ExportState,
    /// Switch this connection into an event tail: the daemon pushes
    /// [`Reply::Events`] frames (never `last`) until the connection
    /// closes. No further requests are read.
    Subscribe,
    /// Replay the complete journal through a fresh engine, regenerating
    /// the canonical event history of the whole session. Answered with a
    /// sequence of [`Reply::Events`] frames, the final one marked
    /// `last`.
    ReplayEvents,
    /// Take a snapshot now. Answered with [`Reply::Ack`].
    Snapshot,
    /// The daemon's telemetry page (Prometheus text exposition:
    /// per-stage latency histograms, health gauges). Answered with
    /// [`Reply::Telemetry`].
    Telemetry,
    /// Gracefully stop the daemon. Answered with [`Reply::Ack`], then
    /// the daemon exits.
    Shutdown,
}

/// Serving statistics carried by [`Reply::Stats`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StatsInfo {
    /// Steps processed per lane so far.
    pub step: u64,
    /// Vehicles in the fleet.
    pub lanes: u32,
    /// Ingest blocks currently queued.
    pub queue_depth: u32,
    /// Ingest queue capacity (blocks).
    pub queue_capacity: u32,
    /// Connections accepted so far.
    pub connections: u32,
    /// Live event subscribers.
    pub subscribers: u32,
    /// Submits rejected with [`Reply::Busy`] so far.
    pub busy_rejections: u64,
    /// Blocks ingested so far.
    pub blocks_ingested: u64,
    /// Journal frames written so far.
    pub journal_frames: u64,
    /// Total online cost across the fleet.
    pub online_total: f64,
    /// Total offline (clairvoyant) cost across the fleet.
    pub offline_total: f64,
}

/// A daemon → client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// Handshake answer: the fleet configuration, the current step, and
    /// the id the daemon assigned this client (its session trace events
    /// ride stream `meta_stream + 1 + client_id`).
    HelloAck {
        /// The daemon's fleet configuration.
        config: FleetConfig,
        /// Steps processed per lane so far.
        step: u64,
        /// This connection's client id.
        client_id: u64,
    },
    /// The decisions for a submitted block, lane-major: index
    /// `lane * steps + t` holds lane `lane`'s decision at block-relative
    /// step `t`.
    Decisions {
        /// First step the block covered.
        first_step: u64,
        /// Steps in the block.
        steps: u32,
        /// Lanes in the fleet.
        lanes: u32,
        /// Idle-threshold decisions, seconds (`+inf` = never restart).
        thresholds: Vec<f64>,
        /// The vertex each decision came from.
        vertices: Vec<VertexKind>,
    },
    /// Explicit backpressure: the ingest queue is full, nothing was
    /// journaled or processed — resubmit later.
    Busy {
        /// Blocks queued at rejection time.
        queued: u32,
        /// The queue's capacity.
        capacity: u32,
    },
    /// Serving statistics.
    Stats(StatsInfo),
    /// The complete fleet state, [`fleetstate::encode_fleet_state`]
    /// bytes.
    State(Vec<u8>),
    /// A batch of trace events as canonical JSONL (one record per
    /// line). Subscribe tails never set `last`; replay answers end with
    /// `last = true`.
    Events {
        /// Whether this is the final frame of a replay answer.
        last: bool,
        /// Canonical JSONL, possibly empty.
        jsonl: String,
    },
    /// Command acknowledged.
    Ack {
        /// Human-readable detail (e.g. the snapshot step).
        info: String,
    },
    /// The daemon's telemetry page.
    Telemetry {
        /// Prometheus text exposition ([`obsv::telemetry::render`]
        /// output; parse with [`obsv::telemetry::parse`]).
        text: String,
    },
    /// The request failed; nothing changed.
    Error {
        /// What went wrong.
        message: String,
    },
}

const KIND_HELLO: u8 = 1;
const KIND_SUBMIT: u8 = 2;
const KIND_STATS: u8 = 3;
const KIND_EXPORT_STATE: u8 = 4;
const KIND_SUBSCRIBE: u8 = 5;
const KIND_REPLAY_EVENTS: u8 = 6;
const KIND_SNAPSHOT: u8 = 7;
const KIND_SHUTDOWN: u8 = 8;
const KIND_TELEMETRY: u8 = 9;

const KIND_HELLO_ACK: u8 = 64;
const KIND_DECISIONS: u8 = 65;
const KIND_BUSY: u8 = 66;
const KIND_STATS_REPLY: u8 = 67;
const KIND_STATE: u8 = 68;
const KIND_EVENTS: u8 = 69;
const KIND_ACK: u8 = 70;
const KIND_ERROR: u8 = 71;
const KIND_TELEMETRY_REPLY: u8 = 72;

impl Request {
    fn kind(&self) -> u8 {
        match self {
            Self::Hello { .. } => KIND_HELLO,
            Self::Submit { .. } => KIND_SUBMIT,
            Self::Stats => KIND_STATS,
            Self::ExportState => KIND_EXPORT_STATE,
            Self::Subscribe => KIND_SUBSCRIBE,
            Self::ReplayEvents => KIND_REPLAY_EVENTS,
            Self::Snapshot => KIND_SNAPSHOT,
            Self::Telemetry => KIND_TELEMETRY,
            Self::Shutdown => KIND_SHUTDOWN,
        }
    }

    fn payload(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Self::Hello { name } => put_string(&mut out, name),
            Self::Submit { first_step, rows } => {
                put_u64(&mut out, *first_step);
                put_u32(&mut out, rows.len() as u32);
                put_u32(&mut out, rows.first().map_or(0, |r| r.len() as u32));
                for row in rows {
                    for &y in row {
                        put_f64(&mut out, y);
                    }
                }
            }
            Self::Stats
            | Self::ExportState
            | Self::Subscribe
            | Self::ReplayEvents
            | Self::Snapshot
            | Self::Telemetry
            | Self::Shutdown => {}
        }
        out
    }

    fn decode_payload(kind: u8, payload: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(payload);
        let req = match kind {
            KIND_HELLO => Self::Hello { name: r.string()? },
            KIND_SUBMIT => {
                let first_step = r.u64()?;
                let steps = r.u32()? as usize;
                let lanes = r.u32()? as usize;
                let cells = steps
                    .checked_mul(lanes)
                    .and_then(|c| c.checked_mul(8))
                    .ok_or(r.err("block size overflow"))?;
                if cells != payload.len().saturating_sub(16) {
                    return Err(r.err("block size does not match payload length"));
                }
                let mut rows = Vec::with_capacity(steps);
                for _ in 0..steps {
                    let mut row = Vec::with_capacity(lanes);
                    for _ in 0..lanes {
                        row.push(r.f64()?);
                    }
                    rows.push(row);
                }
                Self::Submit { first_step, rows }
            }
            KIND_STATS => Self::Stats,
            KIND_EXPORT_STATE => Self::ExportState,
            KIND_SUBSCRIBE => Self::Subscribe,
            KIND_REPLAY_EVENTS => Self::ReplayEvents,
            KIND_SNAPSHOT => Self::Snapshot,
            KIND_TELEMETRY => Self::Telemetry,
            KIND_SHUTDOWN => Self::Shutdown,
            other => return Err(WireError::UnknownKind { offset: 6, kind: other }),
        };
        r.finish()?;
        Ok(req)
    }
}

impl Reply {
    fn kind(&self) -> u8 {
        match self {
            Self::HelloAck { .. } => KIND_HELLO_ACK,
            Self::Decisions { .. } => KIND_DECISIONS,
            Self::Busy { .. } => KIND_BUSY,
            Self::Stats(_) => KIND_STATS_REPLY,
            Self::State(_) => KIND_STATE,
            Self::Events { .. } => KIND_EVENTS,
            Self::Ack { .. } => KIND_ACK,
            Self::Error { .. } => KIND_ERROR,
            Self::Telemetry { .. } => KIND_TELEMETRY_REPLY,
        }
    }

    fn payload(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Self::HelloAck { config, step, client_id } => {
                put_config(&mut out, config);
                put_u64(&mut out, *step);
                put_u64(&mut out, *client_id);
            }
            Self::Decisions { first_step, steps, lanes, thresholds, vertices } => {
                put_u64(&mut out, *first_step);
                put_u32(&mut out, *steps);
                put_u32(&mut out, *lanes);
                for &x in thresholds {
                    put_f64(&mut out, x);
                }
                for &v in vertices {
                    out.push(v as u8);
                }
            }
            Self::Busy { queued, capacity } => {
                put_u32(&mut out, *queued);
                put_u32(&mut out, *capacity);
            }
            Self::Stats(s) => {
                put_u64(&mut out, s.step);
                put_u32(&mut out, s.lanes);
                put_u32(&mut out, s.queue_depth);
                put_u32(&mut out, s.queue_capacity);
                put_u32(&mut out, s.connections);
                put_u32(&mut out, s.subscribers);
                put_u64(&mut out, s.busy_rejections);
                put_u64(&mut out, s.blocks_ingested);
                put_u64(&mut out, s.journal_frames);
                put_f64(&mut out, s.online_total);
                put_f64(&mut out, s.offline_total);
            }
            Self::State(bytes) => out.extend_from_slice(bytes),
            Self::Events { last, jsonl } => {
                out.push(u8::from(*last));
                put_u32(&mut out, jsonl.len() as u32);
                out.extend_from_slice(jsonl.as_bytes());
            }
            Self::Ack { info } => put_string(&mut out, info),
            Self::Error { message } => put_string(&mut out, message),
            Self::Telemetry { text } => {
                // A full exposition page can exceed the short-string cap,
                // so it rides as length-prefixed raw bytes like `Events`.
                put_u32(&mut out, text.len() as u32);
                out.extend_from_slice(text.as_bytes());
            }
        }
        out
    }

    fn decode_payload(kind: u8, payload: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(payload);
        let reply = match kind {
            KIND_HELLO_ACK => {
                Self::HelloAck { config: read_config(&mut r)?, step: r.u64()?, client_id: r.u64()? }
            }
            KIND_DECISIONS => {
                let first_step = r.u64()?;
                let steps = r.u32()?;
                let lanes = r.u32()?;
                let cells = (steps as usize)
                    .checked_mul(lanes as usize)
                    .ok_or(r.err("decision count overflow"))?;
                if cells.checked_mul(9).ok_or(r.err("decision count overflow"))?
                    != payload.len().saturating_sub(16)
                {
                    return Err(r.err("decision count does not match payload length"));
                }
                let mut thresholds = Vec::with_capacity(cells);
                for _ in 0..cells {
                    thresholds.push(r.f64()?);
                }
                let mut vertices = Vec::with_capacity(cells);
                for _ in 0..cells {
                    let code = r.u8()?;
                    vertices.push(
                        VertexKind::from_u8(code).ok_or(r.err("unknown vertex discriminant"))?,
                    );
                }
                Self::Decisions { first_step, steps, lanes, thresholds, vertices }
            }
            KIND_BUSY => Self::Busy { queued: r.u32()?, capacity: r.u32()? },
            KIND_STATS_REPLY => Self::Stats(StatsInfo {
                step: r.u64()?,
                lanes: r.u32()?,
                queue_depth: r.u32()?,
                queue_capacity: r.u32()?,
                connections: r.u32()?,
                subscribers: r.u32()?,
                busy_rejections: r.u64()?,
                blocks_ingested: r.u64()?,
                journal_frames: r.u64()?,
                online_total: r.f64()?,
                offline_total: r.f64()?,
            }),
            KIND_STATE => {
                let bytes = payload.to_vec();
                return Ok(Self::State(bytes));
            }
            KIND_EVENTS => {
                let last = match r.u8()? {
                    0 => false,
                    1 => true,
                    _ => return Err(r.err("last flag is not 0 or 1")),
                };
                let len = r.u32()?;
                let bytes = r.take(len as usize)?;
                let jsonl = String::from_utf8(bytes.to_vec())
                    .map_err(|_| WireError::BadPayload { offset: 5, what: "jsonl is not UTF-8" })?;
                Self::Events { last, jsonl }
            }
            KIND_ACK => Self::Ack { info: r.string()? },
            KIND_ERROR => Self::Error { message: r.string()? },
            KIND_TELEMETRY_REPLY => {
                let len = r.u32()?;
                let bytes = r.take(len as usize)?;
                let text = String::from_utf8(bytes.to_vec())
                    .map_err(|_| WireError::BadPayload { offset: 4, what: "text is not UTF-8" })?;
                Self::Telemetry { text }
            }
            other => return Err(WireError::UnknownKind { offset: 6, kind: other }),
        };
        r.finish()?;
        Ok(reply)
    }
}

// ---------------------------------------------------------------------
// Framing.
// ---------------------------------------------------------------------

fn encode_frame(kind: u8, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + TRAILER_LEN);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.push(kind);
    out.push(0);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&crc32::crc32(&out).to_le_bytes());
    out
}

/// Decodes the frame header alone: `(kind, payload_len)`. Used by stream
/// readers to learn how many more bytes to read before the full frame
/// can be verified.
///
/// # Errors
///
/// [`WireError::Truncated`], [`WireError::BadMagic`],
/// [`WireError::UnsupportedVersion`], or [`WireError::OversizedPayload`].
pub fn decode_header(bytes: &[u8]) -> Result<(u8, u32), WireError> {
    if bytes.len() < HEADER_LEN {
        return Err(WireError::Truncated {
            offset: bytes.len() as u64,
            needed: HEADER_LEN as u64,
            available: bytes.len() as u64,
        });
    }
    if bytes[0..4] != MAGIC {
        return Err(WireError::BadMagic { offset: 0 });
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version != VERSION {
        return Err(WireError::UnsupportedVersion { offset: 4, version });
    }
    let len = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
    if len > MAX_PAYLOAD {
        return Err(WireError::OversizedPayload { offset: 8, len });
    }
    Ok((bytes[6], len))
}

/// Verifies a complete frame buffer (header + payload + checksum) and
/// returns `(kind, payload)`.
///
/// # Errors
///
/// Any [`decode_header`] error, [`WireError::Truncated`] if the buffer
/// is shorter than the frame, or [`WireError::ChecksumMismatch`].
pub fn decode_frame(bytes: &[u8]) -> Result<(u8, &[u8]), WireError> {
    let (kind, len) = decode_header(bytes)?;
    let total = HEADER_LEN + len as usize + TRAILER_LEN;
    if bytes.len() < total {
        return Err(WireError::Truncated {
            offset: bytes.len() as u64,
            needed: total as u64,
            available: bytes.len() as u64,
        });
    }
    let body = &bytes[..HEADER_LEN + len as usize];
    let at = HEADER_LEN + len as usize;
    let stored = u32::from_le_bytes([bytes[at], bytes[at + 1], bytes[at + 2], bytes[at + 3]]);
    let computed = crc32::crc32(body);
    if stored != computed {
        return Err(WireError::ChecksumMismatch { offset: at as u64, stored, computed });
    }
    Ok((kind, &bytes[HEADER_LEN..at]))
}

/// Encodes a request as one frame.
#[must_use]
pub fn encode_request(req: &Request) -> Vec<u8> {
    encode_frame(req.kind(), &req.payload())
}

/// Decodes a complete request frame.
///
/// # Errors
///
/// Any [`decode_frame`] error, [`WireError::UnknownKind`], or
/// [`WireError::BadPayload`].
pub fn decode_request(bytes: &[u8]) -> Result<Request, WireError> {
    let (kind, payload) = decode_frame(bytes)?;
    Request::decode_payload(kind, payload)
}

/// Encodes a reply as one frame.
#[must_use]
pub fn encode_reply(reply: &Reply) -> Vec<u8> {
    encode_frame(reply.kind(), &reply.payload())
}

/// Decodes a complete reply frame.
///
/// # Errors
///
/// Any [`decode_frame`] error, [`WireError::UnknownKind`], or
/// [`WireError::BadPayload`].
pub fn decode_reply(bytes: &[u8]) -> Result<Reply, WireError> {
    let (kind, payload) = decode_frame(bytes)?;
    Reply::decode_payload(kind, payload)
}

// ---------------------------------------------------------------------
// Stream I/O.
// ---------------------------------------------------------------------

/// Reads one complete frame from a stream: header first (to size the
/// rest), then payload + checksum. Returns the whole frame buffer;
/// `Ok(None)` on clean EOF at a frame boundary.
///
/// # Errors
///
/// `std::io::Error` on transport failure; a [`WireError`] from the
/// header (wrapped as `InvalidData`) aborts before reading the body, so
/// garbage cannot make the reader wait for gigabytes.
pub fn read_frame<R: Read>(stream: &mut R) -> std::io::Result<Option<Vec<u8>>> {
    let mut header = [0u8; HEADER_LEN];
    let mut got = 0usize;
    while got < HEADER_LEN {
        let n = stream.read(&mut header[got..])?;
        if n == 0 {
            if got == 0 {
                return Ok(None);
            }
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed mid-frame",
            ));
        }
        got += n;
    }
    let (_, len) = decode_header(&header)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    let mut frame = vec![0u8; HEADER_LEN + len as usize + TRAILER_LEN];
    frame[..HEADER_LEN].copy_from_slice(&header);
    stream.read_exact(&mut frame[HEADER_LEN..])?;
    Ok(Some(frame))
}

/// Writes one already-encoded frame to a stream and flushes it.
///
/// # Errors
///
/// `std::io::Error` on transport failure.
pub fn write_frame<W: Write>(stream: &mut W, frame: &[u8]) -> std::io::Result<()> {
    stream.write_all(frame)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_requests() -> Vec<Request> {
        vec![
            Request::Hello { name: "drill".to_string() },
            Request::Submit {
                first_step: 7,
                rows: vec![vec![1.0, 2.5, f64::INFINITY], vec![0.0, 4.25, 9.75]],
            },
            Request::Submit { first_step: u64::MAX, rows: Vec::new() },
            Request::Stats,
            Request::ExportState,
            Request::Subscribe,
            Request::ReplayEvents,
            Request::Snapshot,
            Request::Telemetry,
            Request::Shutdown,
        ]
    }

    fn sample_replies() -> Vec<Reply> {
        let config = FleetConfig {
            lanes: 3,
            break_even: 28.0,
            window: Some(8),
            min_history: 4,
            seed: 99,
            trace_stream_base: 1000,
        };
        vec![
            Reply::HelloAck { config, step: 41, client_id: 2 },
            Reply::Decisions {
                first_step: 41,
                steps: 2,
                lanes: 3,
                thresholds: vec![28.0, f64::INFINITY, 0.0, 1.5, 2.5, 3.5],
                vertices: vec![
                    VertexKind::ColdStart,
                    VertexKind::Det,
                    VertexKind::Toi,
                    VertexKind::BDet,
                    VertexKind::NRand,
                    VertexKind::Det,
                ],
            },
            Reply::Busy { queued: 8, capacity: 8 },
            Reply::Stats(StatsInfo {
                step: 41,
                lanes: 3,
                queue_depth: 1,
                queue_capacity: 8,
                connections: 4,
                subscribers: 1,
                busy_rejections: 2,
                blocks_ingested: 20,
                journal_frames: 41,
                online_total: 123.5,
                offline_total: 100.25,
            }),
            Reply::State(vec![1, 2, 3, 250]),
            Reply::Events { last: true, jsonl: "{\"a\":1}\n".to_string() },
            Reply::Events { last: false, jsonl: String::new() },
            Reply::Ack { info: "snapshot at step 41".to_string() },
            Reply::Error { message: "step mismatch".to_string() },
            Reply::Telemetry {
                text: "# TYPE fleetd_queue_depth gauge\nfleetd_queue_depth 3\n".to_string(),
            },
        ]
    }

    #[test]
    fn request_roundtrip() {
        for req in sample_requests() {
            let frame = encode_request(&req);
            assert_eq!(decode_request(&frame).unwrap(), req, "{req:?}");
        }
    }

    #[test]
    fn reply_roundtrip() {
        for reply in sample_replies() {
            let frame = encode_reply(&reply);
            assert_eq!(decode_reply(&frame).unwrap(), reply, "{reply:?}");
        }
    }

    #[test]
    fn truncation_at_every_boundary_is_typed() {
        let frame = encode_request(&Request::Submit {
            first_step: 3,
            rows: vec![vec![1.0, 2.0], vec![3.0, 4.0]],
        });
        for cut in 0..frame.len() {
            let err = decode_request(&frame[..cut]).unwrap_err();
            assert!(
                matches!(err, WireError::Truncated { .. }),
                "cut {cut}: expected Truncated, got {err:?}"
            );
        }
    }

    #[test]
    fn bit_flips_are_rejected() {
        let frame = encode_reply(&Reply::Busy { queued: 1, capacity: 2 });
        // Payload flip → checksum mismatch.
        let mut bad = frame.clone();
        bad[HEADER_LEN] ^= 0x10;
        assert!(matches!(decode_reply(&bad), Err(WireError::ChecksumMismatch { .. })));
        // Magic flip → bad magic before anything else.
        let mut bad = frame.clone();
        bad[0] ^= 0x01;
        assert!(matches!(decode_reply(&bad), Err(WireError::BadMagic { offset: 0 })));
        // Version flip → unsupported version.
        let mut bad = frame;
        bad[4] = 9;
        assert!(matches!(
            decode_reply(&bad),
            Err(WireError::UnsupportedVersion { version: 9, .. })
        ));
    }

    #[test]
    fn oversized_length_rejected_before_allocation() {
        let mut frame = encode_request(&Request::Stats);
        frame[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_request(&frame),
            Err(WireError::OversizedPayload { len: u32::MAX, .. })
        ));
    }

    #[test]
    fn request_reply_kind_spaces_disjoint() {
        let frame = encode_reply(&Reply::Ack { info: String::new() });
        assert!(matches!(decode_request(&frame), Err(WireError::UnknownKind { .. })));
        let frame = encode_request(&Request::Stats);
        assert!(matches!(decode_reply(&frame), Err(WireError::UnknownKind { .. })));
    }

    #[test]
    fn stream_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &encode_request(&Request::Hello { name: "x".into() })).unwrap();
        write_frame(&mut buf, &encode_request(&Request::Stats)).unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        let f1 = read_frame(&mut cursor).unwrap().unwrap();
        assert_eq!(decode_request(&f1).unwrap(), Request::Hello { name: "x".into() });
        let f2 = read_frame(&mut cursor).unwrap().unwrap();
        assert_eq!(decode_request(&f2).unwrap(), Request::Stats);
        assert!(read_frame(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn mid_frame_eof_is_unexpected_eof() {
        let frame = encode_request(&Request::Stats);
        let mut cursor = std::io::Cursor::new(frame[..5].to_vec());
        let err = read_frame(&mut cursor).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
    }
}
