//! `fleetctl` — the daemon's control and console client.
//!
//! ```text
//! fleetctl status    --socket PATH [--json]    daemon counters
//! fleetctl telemetry --socket PATH [--raw]     stage latencies + health
//! fleetctl top       --socket PATH [...]       live telemetry view
//! fleetctl risk      --socket PATH [--delta F] fleet tail-risk view
//! fleetctl snapshot  --socket PATH             force a snapshot now
//! fleetctl state     --socket PATH --out FILE  export estimator state bytes
//! fleetctl replay    --socket PATH [--out F]   full canonical event history
//! fleetctl tail      --socket PATH [...]       live TUI console
//! fleetctl shutdown  --socket PATH             graceful stop
//! ```
//!
//! `tail` subscribes to the daemon's event stream and runs a local
//! [`obsv::Monitor`] over it — the same drift/CR analysis as the
//! offline `monitor` bin, rendered with the shared
//! [`obsv::dashboard`] (alarm log, windowed-CR sparklines, ladder
//! occupancy). `--record FILE` additionally captures every event as
//! canonical JSONL so the session can be byte-compared against an
//! offline journal replay.

use fleetd::client::{Client, SessionRecorder};
use fleetd::proto::StatsInfo;
use obsv::dashboard::{cr_series, render_dashboard};
use obsv::{Monitor, MonitorConfig, TraceEvent, TraceRecord};
use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: fleetctl COMMAND --socket PATH [options]\n\
         \n\
         commands:\n\
         \x20 status [--json]             print daemon counters\n\
         \x20 telemetry [--raw]           stage latency quantiles + health gauges\n\
         \x20                             (--raw dumps the Prometheus exposition)\n\
         \x20 top [--interval-ms N] [--frames N] [--plain]\n\
         \x20                             live per-stage latency / queue view\n\
         \x20 risk [--delta F]            fleet CVaR, riskiest vehicles, and\n\
         \x20                             tail-budget headroom vs δ (default 0.05)\n\
         \x20 snapshot                    force a snapshot now\n\
         \x20 state --out FILE            export estimator state bytes\n\
         \x20 replay [--out FILE]         full canonical event history (JSONL)\n\
         \x20 tail [--record FILE] [--frame-every N] [--max-batches N]\n\
         \x20      [--window N] [--plain]  live monitor console\n\
         \x20 shutdown                    stop the daemon gracefully\n\
         \n\
         --tcp ADDR may replace --socket PATH for any command."
    );
    ExitCode::from(2)
}

struct Cli {
    command: String,
    socket: Option<PathBuf>,
    tcp: Option<String>,
    out: Option<PathBuf>,
    record: Option<PathBuf>,
    frame_every: u64,
    max_batches: u64,
    window: usize,
    plain: bool,
    json: bool,
    raw: bool,
    interval_ms: u64,
    frames: u64,
    delta: f64,
}

fn parse() -> Option<Cli> {
    let mut args = std::env::args().skip(1);
    let mut cli = Cli {
        command: String::new(),
        socket: None,
        tcp: None,
        out: None,
        record: None,
        frame_every: 20,
        max_batches: 0,
        window: 64,
        plain: false,
        json: false,
        raw: false,
        interval_ms: 1000,
        frames: 0,
        delta: 0.05,
    };
    while let Some(a) = args.next() {
        let value = |a: &str, key: &str, rest: &mut dyn Iterator<Item = String>| {
            a.strip_prefix(&format!("{key}=")).map(str::to_string).or_else(|| rest.next())
        };
        if a == "--socket" || a.starts_with("--socket=") {
            cli.socket = Some(PathBuf::from(value(&a, "--socket", &mut args)?));
        } else if a == "--tcp" || a.starts_with("--tcp=") {
            cli.tcp = Some(value(&a, "--tcp", &mut args)?);
        } else if a == "--out" || a.starts_with("--out=") {
            cli.out = Some(PathBuf::from(value(&a, "--out", &mut args)?));
        } else if a == "--record" || a.starts_with("--record=") {
            cli.record = Some(PathBuf::from(value(&a, "--record", &mut args)?));
        } else if a == "--frame-every" || a.starts_with("--frame-every=") {
            cli.frame_every = value(&a, "--frame-every", &mut args)?.parse().ok()?;
        } else if a == "--max-batches" || a.starts_with("--max-batches=") {
            cli.max_batches = value(&a, "--max-batches", &mut args)?.parse().ok()?;
        } else if a == "--window" || a.starts_with("--window=") {
            cli.window = value(&a, "--window", &mut args)?.parse().ok()?;
        } else if a == "--interval-ms" || a.starts_with("--interval-ms=") {
            cli.interval_ms = value(&a, "--interval-ms", &mut args)?.parse().ok()?;
        } else if a == "--frames" || a.starts_with("--frames=") {
            cli.frames = value(&a, "--frames", &mut args)?.parse().ok()?;
        } else if a == "--delta" || a.starts_with("--delta=") {
            cli.delta = value(&a, "--delta", &mut args)?.parse().ok()?;
        } else if a == "--plain" {
            cli.plain = true;
        } else if a == "--json" {
            cli.json = true;
        } else if a == "--raw" {
            cli.raw = true;
        } else if !a.starts_with('-') && cli.command.is_empty() {
            // The command may appear before or after the flags.
            cli.command = a;
        } else {
            return None;
        }
    }
    if cli.command.is_empty() || (cli.socket.is_none() && cli.tcp.is_none()) {
        return None;
    }
    Some(cli)
}

fn connect(cli: &Cli) -> Result<Client, String> {
    match (&cli.socket, &cli.tcp) {
        (Some(path), _) => Client::connect_unix(path).map_err(|e| e.to_string()),
        (None, Some(addr)) => Client::connect_tcp(addr).map_err(|e| e.to_string()),
        (None, None) => Err("no --socket or --tcp".to_string()),
    }
}

/// `status --json`: the counters as one canonical JSON object
/// (sorted keys, shortest-round-trip floats — [`obsv::json`] rules), so
/// scripts can diff two statuses byte-for-byte.
fn stats_json(info: &StatsInfo) -> String {
    use obsv::json::Value;
    let mut obj = std::collections::BTreeMap::new();
    let mut put = |k: &str, v: Value| obj.insert(k.to_string(), v);
    put("step", Value::UInt(info.step));
    put("lanes", Value::UInt(u64::from(info.lanes)));
    put("queue_depth", Value::UInt(u64::from(info.queue_depth)));
    put("queue_capacity", Value::UInt(u64::from(info.queue_capacity)));
    put("connections", Value::UInt(u64::from(info.connections)));
    put("subscribers", Value::UInt(u64::from(info.subscribers)));
    put("busy_rejections", Value::UInt(info.busy_rejections));
    put("blocks_ingested", Value::UInt(info.blocks_ingested));
    put("journal_frames", Value::UInt(info.journal_frames));
    put("online_total", Value::float(info.online_total));
    put("offline_total", Value::float(info.offline_total));
    let cr = obsv::dashboard::realized_cr(info.online_total, info.offline_total);
    put("realized_cr", Value::float(cr));
    Value::Obj(obj).to_string()
}

fn print_stats(info: &StatsInfo) {
    println!("step              {}", info.step);
    println!("lanes             {}", info.lanes);
    println!("queue             {}/{}", info.queue_depth, info.queue_capacity);
    println!("connections       {}", info.connections);
    println!("subscribers       {}", info.subscribers);
    println!("busy rejections   {}", info.busy_rejections);
    println!("blocks ingested   {}", info.blocks_ingested);
    println!("journal frames    {}", info.journal_frames);
    println!("online cost       {:.3}", info.online_total);
    println!("offline cost      {:.3}", info.offline_total);
    let cr = obsv::dashboard::realized_cr(info.online_total, info.offline_total);
    println!("realized CR       {}", obsv::dashboard::fmt_cr(cr).trim_start());
}

/// Human-scale duration: picks ns/µs/ms/s so a 40 ns decode and a 2 s
/// fsync stall read equally well in one table.
fn fmt_secs(s: f64) -> String {
    if s <= 0.0 {
        "0".to_string()
    } else if s < 1e-6 {
        format!("{:.0}ns", s * 1e9)
    } else if s < 1e-3 {
        format!("{:.1}\u{3bc}s", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{:.3}s", s)
    }
}

/// A quantile from a histogram that may have seen no samples yet:
/// `None` renders as `-` rather than a misleading `0`.
fn fmt_secs_opt(s: Option<f64>) -> String {
    s.map_or_else(|| "-".to_string(), fmt_secs)
}

/// Renders one telemetry scrape: per-stage latency quantiles, queue and
/// journal health, and (in `top`) a queue-occupancy sparkline.
fn render_telemetry(scrape: &obsv::telemetry::Scrape, queue_history: &[f64]) -> String {
    let g = |name: &str| scrape.gauge(name).unwrap_or(0.0);
    let c = |name: &str| scrape.counter(name).unwrap_or(0.0);
    let mut out = String::new();
    out.push_str(&format!(
        "fleetd @ step {}   blocks {}   queue {}/{} (peak {})\n",
        g("fleetd_step") as u64,
        c("fleetd_blocks_ingested_total") as u64,
        g("fleetd_queue_depth") as u64,
        g("fleetd_queue_capacity") as u64,
        g("fleetd_queue_depth_peak") as u64,
    ));
    out.push_str(&format!(
        "{:<16} {:>10} {:>9} {:>9} {:>9}\n",
        "stage", "count", "p50", "p95", "p99"
    ));
    for name in fleetd::STAGE_HISTOGRAMS {
        let Some(h) = scrape.histograms.get(*name) else { continue };
        let label = name.trim_start_matches("fleetd_stage_").trim_end_matches("_seconds");
        out.push_str(&format!(
            "{label:<16} {:>10} {:>9} {:>9} {:>9}\n",
            h.count as u64,
            fmt_secs_opt(h.quantile(0.50)),
            fmt_secs_opt(h.quantile(0.95)),
            fmt_secs_opt(h.quantile(0.99)),
        ));
    }
    out.push_str(&format!(
        "journal: {} bytes, {} frames total, {} since snapshot, age {} steps\n",
        g("fleetd_journal_bytes") as u64,
        c("fleetd_journal_frames_total") as u64,
        g("fleetd_journal_frames_since_snapshot") as u64,
        g("fleetd_snapshot_age_steps") as u64,
    ));
    out.push_str(&format!(
        "health: engine {}, journal {}, busy rejections {}, subscribers {} (lag {}, drops {})\n",
        if g("fleetd_engine_alive") > 0.0 { "alive" } else { "DOWN" },
        if g("fleetd_journal_writable") > 0.0 { "writable" } else { "FAILED" },
        c("fleetd_busy_rejections_total") as u64,
        g("fleetd_subscribers") as u64,
        g("fleetd_subscriber_lag") as u64,
        c("fleetd_subscriber_drops_total") as u64,
    ));
    if !queue_history.is_empty() {
        out.push_str(&format!(
            "queue occupancy: {}\n",
            obsv::dashboard::sparkline(queue_history, queue_history.len().min(40))
        ));
    }
    out
}

/// Renders the fleet tail-risk view from the labeled risk series the
/// daemon exports: fleet CVaR/quantiles, the top-k riskiest vehicles,
/// and per-rung exceedance rates with headroom against the tail
/// budget `δ` (headroom = δ − P(CR > τ); negative means over budget).
fn render_risk(scrape: &obsv::telemetry::Scrape, delta: f64) -> String {
    let samples = scrape.counter("fleet_cr_samples_total").unwrap_or(0.0);
    if samples <= 0.0 {
        return "no risk telemetry (risk plane disabled or no stops decided yet)\n".to_string();
    }
    let cr = |v: Option<f64>| {
        v.map_or_else(|| "-".to_string(), |x| obsv::dashboard::fmt_cr(x).trim_start().to_string())
    };
    let mut out = String::new();
    out.push_str(&format!("fleet realized-CR risk over {} stops\n", samples as u64));
    out.push_str(&format!(
        "  p50 {}   p90 {}   p99 {}   CVaR95 {}   CVaR99 {}\n",
        cr(scrape.gauge("fleet_cr_quantile{q=\"0.5\"}")),
        cr(scrape.gauge("fleet_cr_quantile{q=\"0.9\"}")),
        cr(scrape.gauge("fleet_cr_quantile{q=\"0.99\"}")),
        cr(scrape.gauge("fleet_cr_cvar{alpha=\"0.95\"}")),
        cr(scrape.gauge("fleet_cr_cvar{alpha=\"0.99\"}")),
    ));
    out.push_str(&format!("{:<6} {:>8} {:>10}\n", "rank", "lane", "CVaR95"));
    for rank in 1..=8u32 {
        let lane = scrape.gauge(&format!("fleet_cr_top_lane{{rank=\"{rank}\"}}"));
        let cvar = scrape.gauge(&format!("fleet_cr_top_cvar{{rank=\"{rank}\"}}"));
        let (Some(lane), Some(cvar)) = (lane, cvar) else { break };
        out.push_str(&format!("{rank:<6} {:>8} {:>10}\n", lane as u64, cr(Some(cvar))));
    }
    out.push_str(&format!(
        "{:<22} {:>10} {:>10} {:>10}\n",
        "tail budget (δ)", "exceeded", "P(CR>τ)", "headroom"
    ));
    for tau in obsv::risk::TAU_LADDER {
        let Some(exceed) = scrape.counter(&format!("fleet_cr_exceed_total{{tau=\"{tau}\"}}"))
        else {
            continue;
        };
        let rate = exceed / samples;
        let headroom = delta - rate;
        out.push_str(&format!(
            "{:<22} {:>10} {:>10.4} {:>+10.4}{}\n",
            format!("\u{3c4} = {tau:.4}"),
            exceed as u64,
            rate,
            headroom,
            if headroom < 0.0 { "  OVER BUDGET" } else { "" },
        ));
    }
    out
}

/// `top`: poll the telemetry page and redraw the stage/health view.
fn top(cli: &Cli) -> Result<(), String> {
    let mut client = connect(cli)?;
    client.hello("fleetctl-top").map_err(|e| e.to_string())?;
    let mut queue_history: Vec<f64> = Vec::new();
    let mut frame: u64 = 0;
    loop {
        let text = client.telemetry().map_err(|e| e.to_string())?;
        let scrape = obsv::telemetry::parse(&text).map_err(|e| format!("bad exposition: {e}"))?;
        queue_history.push(scrape.gauge("fleetd_queue_depth").unwrap_or(0.0));
        if queue_history.len() > 40 {
            let excess = queue_history.len() - 40;
            queue_history.drain(..excess);
        }
        let body = render_telemetry(&scrape, &queue_history);
        if cli.plain {
            println!("{body}");
        } else {
            print!("\x1b[2J\x1b[H{body}");
            let _ = std::io::stdout().flush();
        }
        frame += 1;
        if cli.frames != 0 && frame >= cli.frames {
            return Ok(());
        }
        std::thread::sleep(std::time::Duration::from_millis(cli.interval_ms.max(50)));
    }
}

/// One live console session: subscribe, analyze each batch with a
/// local monitor, redraw the dashboard every `frame_every` batches.
fn tail(cli: &Cli) -> Result<(), String> {
    let mut client = connect(cli)?;
    let (config, step, client_id) = client.hello("fleetctl-tail").map_err(|e| e.to_string())?;
    eprintln!(
        "tailing fleet of {} lanes from step {step} as client {client_id} (window {})",
        config.lanes, cli.window
    );
    let monitor = Monitor::new(MonitorConfig {
        break_even_s: config.break_even,
        window: cli.window,
        ..MonitorConfig::default()
    });
    let mut recorder = cli.record.as_ref().map(|_| SessionRecorder::new());
    let mut retained: Vec<TraceRecord> = Vec::new();
    let mut batches: u64 = 0;
    let max_batches = cli.max_batches;
    let frame_every = cli.frame_every.max(1);
    let plain = cli.plain;
    let mut recorder_ref = recorder.take();
    client
        .subscribe(|batch| {
            batches += 1;
            let alarms = monitor.replay(&batch);
            for alarm in &alarms {
                if let TraceEvent::MonitorAlarm { .. } = &alarm.event {
                    eprintln!("ALARM {}", alarm.event.describe());
                }
            }
            if let Some(recorder) = recorder_ref.as_mut() {
                recorder.absorb(batch.clone());
            }
            retained.extend(batch);
            if retained.len() > RETAIN_CAP {
                let excess = retained.len() - RETAIN_CAP;
                retained.drain(..excess);
            }
            if batches % frame_every == 0 {
                draw(&monitor, &retained, cli.window, plain);
            }
            max_batches == 0 || batches < max_batches
        })
        .map_err(|e| e.to_string())?;
    recorder = recorder_ref;
    // Final frame + capture flush.
    draw(&monitor, &retained, cli.window, plain);
    eprintln!("stream ended after {batches} batches");
    if let (Some(path), Some(recorder)) = (&cli.record, &recorder) {
        std::fs::write(path, recorder.to_jsonl())
            .map_err(|e| format!("write {}: {e}", path.display()))?;
        eprintln!("recorded {} events to {}", recorder.len(), path.display());
    }
    Ok(())
}

/// Sparkline ledger cap — enough for a long session's windowed CR
/// without unbounded growth.
const RETAIN_CAP: usize = 200_000;

fn draw(monitor: &Monitor, retained: &[TraceRecord], window: usize, plain: bool) {
    let report = monitor.report();
    let series = cr_series(retained, window);
    let body = render_dashboard(&report, &series);
    if plain {
        println!("{body}");
    } else {
        // ANSI: clear screen, home cursor, draw the frame.
        print!("\x1b[2J\x1b[H{body}");
        let _ = std::io::stdout().flush();
    }
}

fn run(cli: &Cli) -> Result<(), String> {
    match cli.command.as_str() {
        "status" => {
            let mut client = connect(cli)?;
            client.hello("fleetctl").map_err(|e| e.to_string())?;
            let info = client.stats().map_err(|e| e.to_string())?;
            if cli.json {
                println!("{}", stats_json(&info));
            } else {
                print_stats(&info);
            }
            Ok(())
        }
        "telemetry" => {
            let mut client = connect(cli)?;
            client.hello("fleetctl").map_err(|e| e.to_string())?;
            let text = client.telemetry().map_err(|e| e.to_string())?;
            if cli.raw {
                print!("{text}");
            } else {
                let scrape =
                    obsv::telemetry::parse(&text).map_err(|e| format!("bad exposition: {e}"))?;
                print!("{}", render_telemetry(&scrape, &[]));
            }
            Ok(())
        }
        "top" => top(cli),
        "risk" => {
            let mut client = connect(cli)?;
            client.hello("fleetctl").map_err(|e| e.to_string())?;
            let text = client.telemetry().map_err(|e| e.to_string())?;
            let scrape =
                obsv::telemetry::parse(&text).map_err(|e| format!("bad exposition: {e}"))?;
            print!("{}", render_risk(&scrape, cli.delta));
            Ok(())
        }
        "snapshot" => {
            let mut client = connect(cli)?;
            let ack = client.snapshot().map_err(|e| e.to_string())?;
            println!("{ack}");
            Ok(())
        }
        "state" => {
            let out = cli.out.as_ref().ok_or("state needs --out FILE")?;
            let mut client = connect(cli)?;
            let bytes = client.export_state().map_err(|e| e.to_string())?;
            std::fs::write(out, &bytes).map_err(|e| format!("write {}: {e}", out.display()))?;
            println!("{} bytes to {}", bytes.len(), out.display());
            Ok(())
        }
        "replay" => {
            let mut client = connect(cli)?;
            let records = client.replay_events().map_err(|e| e.to_string())?;
            let jsonl = obsv::event::to_jsonl(&records);
            match &cli.out {
                Some(path) => {
                    std::fs::write(path, jsonl)
                        .map_err(|e| format!("write {}: {e}", path.display()))?;
                    eprintln!("{} events to {}", records.len(), path.display());
                }
                None => print!("{jsonl}"),
            }
            Ok(())
        }
        "tail" => tail(cli),
        "shutdown" => {
            let mut client = connect(cli)?;
            let ack = client.shutdown().map_err(|e| e.to_string())?;
            println!("{ack}");
            Ok(())
        }
        _ => Err(format!("unknown command `{}`", cli.command)),
    }
}

fn main() -> ExitCode {
    let Some(cli) = parse() else {
        return usage();
    };
    match run(&cli) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("fleetctl: {e}");
            ExitCode::FAILURE
        }
    }
}
