//! `fleetd` — the fleet decision daemon.
//!
//! Serves stop/start decisions for a fleet of vehicles over a unix
//! socket (TCP optional), journaling every ingested block before
//! processing so a SIGKILL at any instant is recoverable
//! bit-identically with `--recover`.
//!
//! ```text
//! fleetd --socket /tmp/fleetd.sock --dir /var/lib/fleetd --lanes 10000
//! ```

use fleetd::server::{serve, ServeOptions};
use fleetstate::FleetConfig;
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: fleetd --socket PATH --dir DIR [--tcp ADDR] [--telemetry-addr ADDR]\n\
         \x20       [--lanes N] [--break-even SECS] [--window N] [--min-history N]\n\
         \x20       [--seed N] [--stream-base N]\n\
         \x20       [--threads N] [--snapshot-every N] [--queue N]\n\
         \x20       [--engine-delay-ms N] [--no-trace] [--recover]\n\
         \n\
         Starts fresh in DIR (refusing an existing journal) unless --recover,\n\
         which resumes the journaled state bit-identically.\n\
         --telemetry-addr serves GET /metrics (Prometheus text exposition)\n\
         and GET /healthz over plain HTTP."
    );
    ExitCode::from(2)
}

struct Cli {
    socket: Option<PathBuf>,
    tcp: Option<String>,
    telemetry_addr: Option<String>,
    dir: Option<PathBuf>,
    lanes: usize,
    break_even: f64,
    window: Option<usize>,
    min_history: usize,
    seed: u64,
    stream_base: u64,
    threads: usize,
    snapshot_every: u64,
    queue: usize,
    engine_delay_ms: u64,
    no_trace: bool,
    recover: bool,
}

impl Cli {
    fn defaults() -> Self {
        Self {
            socket: None,
            tcp: None,
            telemetry_addr: None,
            dir: None,
            lanes: 1024,
            break_even: 28.0,
            window: Some(64),
            min_history: 8,
            seed: 2014,
            stream_base: 0,
            threads: 2,
            snapshot_every: 4096,
            queue: 64,
            engine_delay_ms: 0,
            no_trace: false,
            recover: false,
        }
    }
}

#[allow(clippy::too_many_lines)]
fn parse() -> Option<Cli> {
    let mut cli = Cli::defaults();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let value = |a: &str, key: &str, rest: &mut dyn Iterator<Item = String>| {
            a.strip_prefix(&format!("{key}=")).map(str::to_string).or_else(|| rest.next())
        };
        macro_rules! arg {
            ($key:literal, $slot:expr, $ty:ty) => {
                if a == $key || a.starts_with(concat!($key, "=")) {
                    $slot = value(&a, $key, &mut args)?.parse::<$ty>().ok()?;
                    continue;
                }
            };
        }
        if a == "--socket" || a.starts_with("--socket=") {
            cli.socket = Some(PathBuf::from(value(&a, "--socket", &mut args)?));
            continue;
        }
        if a == "--dir" || a.starts_with("--dir=") {
            cli.dir = Some(PathBuf::from(value(&a, "--dir", &mut args)?));
            continue;
        }
        if a == "--tcp" || a.starts_with("--tcp=") {
            cli.tcp = Some(value(&a, "--tcp", &mut args)?);
            continue;
        }
        if a == "--telemetry-addr" || a.starts_with("--telemetry-addr=") {
            cli.telemetry_addr = Some(value(&a, "--telemetry-addr", &mut args)?);
            continue;
        }
        if a == "--window" || a.starts_with("--window=") {
            let v = value(&a, "--window", &mut args)?.parse::<usize>().ok()?;
            cli.window = if v == 0 { None } else { Some(v) };
            continue;
        }
        arg!("--lanes", cli.lanes, usize);
        arg!("--break-even", cli.break_even, f64);
        arg!("--min-history", cli.min_history, usize);
        arg!("--seed", cli.seed, u64);
        arg!("--stream-base", cli.stream_base, u64);
        arg!("--threads", cli.threads, usize);
        arg!("--snapshot-every", cli.snapshot_every, u64);
        arg!("--queue", cli.queue, usize);
        arg!("--engine-delay-ms", cli.engine_delay_ms, u64);
        if a == "--no-trace" {
            cli.no_trace = true;
        } else if a == "--recover" {
            cli.recover = true;
        } else {
            return None;
        }
    }
    if cli.socket.is_none() || cli.dir.is_none() || cli.lanes == 0 || cli.queue == 0 {
        return None;
    }
    Some(cli)
}

fn main() -> ExitCode {
    let Some(cli) = parse() else {
        return usage();
    };
    let (Some(socket), Some(dir)) = (cli.socket.clone(), cli.dir.clone()) else {
        return usage();
    };
    let config = FleetConfig {
        lanes: cli.lanes,
        break_even: cli.break_even,
        window: cli.window,
        min_history: cli.min_history,
        seed: cli.seed,
        trace_stream_base: cli.stream_base,
    };
    let options = ServeOptions {
        dir,
        config,
        threads: cli.threads.max(1),
        snapshot_every: cli.snapshot_every,
        queue_capacity: cli.queue,
        emit_trace: !cli.no_trace,
        engine_delay_ms: cli.engine_delay_ms,
        recover: cli.recover,
        telemetry_addr: cli.telemetry_addr.clone(),
    };
    match serve(&options, &socket, cli.tcp.as_deref()) {
        Ok(started) => {
            match &started.recovery {
                Some(outcome) => eprintln!(
                    "fleetd: recovered to step {} (snapshot at {}, {} journal steps replayed); listening on {}",
                    outcome.resumed_step,
                    outcome.snapshot_step,
                    outcome.frames_replayed,
                    socket.display()
                ),
                None => eprintln!(
                    "fleetd: fresh fleet of {} lanes; listening on {}",
                    config.lanes,
                    socket.display()
                ),
            }
            if let Some(addr) = started.telemetry_addr {
                eprintln!("fleetd: telemetry on http://{addr}/metrics");
            }
            started.handle.wait();
            eprintln!("fleetd: stopped");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("fleetd: {e}");
            ExitCode::FAILURE
        }
    }
}
