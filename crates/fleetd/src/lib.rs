//! Fleet decision daemon for the idling-reduction stack.
//!
//! `fleetd` turns the batch engine ([`skirental::batch`] sharded
//! estimators under a [`fleetstate::PersistentFleet`] write-ahead
//! journal) into a long-running service: clients stream per-step idle
//! observations for a fleet of vehicles over a unix socket (TCP
//! optional) and get back, per vehicle, the stop/start threshold and
//! the four-vertex policy ([`skirental::batch::VertexKind`]) that
//! produced it.
//!
//! The crate splits into three layers:
//!
//! * [`proto`] — the wire format: length-prefixed, CRC-framed binary
//!   messages following the `fleetstate::format` conventions (magic,
//!   version, kind, length, payload, CRC-32). Decoding arbitrary bytes
//!   never panics; every failure is a typed, offset-carrying
//!   [`proto::WireError`].
//! * [`server`] — the daemon: a single engine thread owning the
//!   journaled fleet, a bounded ingest queue with explicit
//!   [`proto::Reply::Busy`] backpressure, and per-connection threads.
//!   Because every block is journaled before it is processed, a
//!   SIGKILL at any instant loses nothing: restart with recovery and
//!   the estimator state `(μ̂_B⁻, q̂_B⁺)` is bit-identical.
//! * [`client`] — a thin blocking client used by `fleetctl`, the
//!   load generator, and the CI service drill; includes a session
//!   recorder that captures every event batch as canonical JSONL so a
//!   live session is byte-identically replayable offline.
//! * [`telemetry`] — the daemon's service-metrics plane: per-stage
//!   latency histograms and health gauges in a `fleetd`-owned
//!   [`obsv::MetricsRegistry`], rendered as a Prometheus text
//!   exposition via the [`Request::Telemetry`] message or the optional
//!   `--telemetry-addr` HTTP listener (`/metrics`, `/healthz`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod client;
pub mod proto;
pub mod server;
pub mod telemetry;

pub use client::{Client, SessionRecorder};
pub use proto::{Reply, Request, StatsInfo, WireError};
pub use server::{serve, ServeOptions, ServerHandle, Started};
pub use telemetry::{Telemetry, STAGE_HISTOGRAMS};
