//! The daemon: listener threads, bounded ingest queue, and the single
//! engine thread that owns the journaled fleet.
//!
//! # Architecture
//!
//! ```text
//! clients ──► connection threads ──► bounded job queue ──► engine thread
//!                  │   ▲                 (try_send →            │
//!                  │   └─ replies ◄──────  Busy on full)        │
//!                  └─ Subscribe: event batches ◄── broadcast ◄──┘
//! ```
//!
//! * One **engine thread** owns the [`fleetstate::PersistentFleet`]:
//!   every block is journaled before it is processed (write-ahead), so a
//!   SIGKILL at any instant recovers `(μ̂_B⁻, q̂_B⁺)` bit-identically.
//!   Being the only thread that touches the engine, it needs no locks
//!   and keeps the canonical trace deterministic.
//! * **Connection threads** (one per client) decode request frames and
//!   either answer directly (stats snapshots of shared atomics) or hand
//!   an `EngineJob` to the queue. The queue is a
//!   `std::sync::mpsc::sync_channel` with fixed capacity: a full queue
//!   answers [`Reply::Busy`] immediately — explicit backpressure, the
//!   client decides whether to retry — rather than buffering without
//!   bound or stalling the socket.
//! * **Subscribers** register a bounded channel; after each block the
//!   engine drains the global tracer and broadcasts the batch. A
//!   subscriber that falls behind its channel capacity is dropped (a
//!   tail is a *view*; the journal, not the tail, is the record).
//! * **Telemetry** rides a daemon-owned [`crate::telemetry::Telemetry`]
//!   registry: each request stage (queue wait, frame decode, engine
//!   decide, journal append, fsync, reply write) records into a
//!   log-bucketed latency histogram, and health gauges track the queue,
//!   journal, subscribers, and recovery. Exposed two ways — the
//!   [`Request::Telemetry`] protocol message, and an optional plain-HTTP
//!   listener ([`ServeOptions::telemetry_addr`]) serving `GET /metrics`
//!   (Prometheus text exposition) and `GET /healthz`. Timing feeds
//!   histograms only; it never touches the canonical trace, so the
//!   byte-identity contract is unaffected.
//!
//! # Trace streams
//!
//! With tracing on, the daemon lays out streams as: `base + lane` for
//! per-lane decision records, `base + lanes` (the meta stream) for
//! checkpoint/recovery events, and `base + lanes + 1 + client_id` for
//! per-connection [`obsv::TraceEvent::Session`] events. Offline tooling
//! compares lane streams only, so session chatter never perturbs the
//! byte-identical replay contract.

use crate::proto::{self, Reply, Request, StatsInfo};
use crate::telemetry::Telemetry;
use fleetstate::{FleetConfig, PersistentFleet, RecoveryOutcome, JOURNAL_FILE};
use obsv::{TraceEvent, TraceRecord};
use std::io::{Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Instant;

/// Records per [`Reply::Events`] frame when chunking a replay answer.
const EVENTS_CHUNK: usize = 4096;

/// Bounded batches a subscriber may fall behind before it is dropped.
const SUBSCRIBER_QUEUE: usize = 64;

/// How often the accept loop polls the shutdown flag.
const ACCEPT_POLL: std::time::Duration = std::time::Duration::from_millis(25);

/// Everything configurable about a daemon instance.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Persistence directory (journal + snapshots).
    pub dir: PathBuf,
    /// The fleet configuration.
    pub config: FleetConfig,
    /// Engine shard threads.
    pub threads: usize,
    /// Snapshot cadence in steps (`0` = only on explicit request).
    pub snapshot_every: u64,
    /// Ingest queue capacity, blocks. A full queue answers
    /// [`Reply::Busy`].
    pub queue_capacity: usize,
    /// Emit canonical trace events through the global tracer (enables
    /// subscribe tails and `--record`; costs a per-stop record).
    pub emit_trace: bool,
    /// Debug throttle: sleep this long before each ingested block.
    /// Drills use it (with a tiny queue) to make backpressure
    /// deterministic; production leaves it 0.
    pub engine_delay_ms: u64,
    /// Recover from an existing journal instead of starting fresh.
    pub recover: bool,
    /// Bind a plain-HTTP telemetry listener on this address
    /// (`GET /metrics` = Prometheus exposition, `GET /healthz` =
    /// readiness). `None` = no listener; the [`Request::Telemetry`]
    /// protocol message works either way.
    pub telemetry_addr: Option<String>,
}

impl ServeOptions {
    /// Defaults for a fresh daemon: 2 engine threads, queue of 64
    /// blocks, snapshots every 4096 steps, tracing on.
    #[must_use]
    pub fn new(dir: &Path, config: FleetConfig) -> Self {
        Self {
            dir: dir.to_path_buf(),
            config,
            threads: 2,
            snapshot_every: 4096,
            queue_capacity: 64,
            emit_trace: true,
            engine_delay_ms: 0,
            recover: false,
            telemetry_addr: None,
        }
    }
}

/// A job handed to the engine thread. Replies travel back over the
/// per-request channel; a dropped receiver (client gone) is ignored.
enum EngineJob {
    Submit {
        client: u64,
        first_step: u64,
        rows: Vec<Vec<f64>>,
        reply: SyncSender<Reply>,
        /// When the connection thread queued the job; the engine records
        /// the queue-wait stage from it at dequeue.
        enqueued: Instant,
    },
    ExportState {
        reply: SyncSender<Reply>,
    },
    Snapshot {
        reply: SyncSender<Reply>,
    },
    Replay {
        client: u64,
        reply: SyncSender<Reply>,
    },
    Shutdown {
        reply: SyncSender<Reply>,
    },
}

/// Counters shared between the engine, connections, and stats replies.
///
/// # Memory orderings
///
/// Every statistic here is an independent scalar: no reader derives an
/// invariant from *two* of them being mutually consistent (a `Stats`
/// reply is a racy point-in-time sample by design), so the counters use
/// `Relaxed` — each atomic is individually coherent, which is all a
/// monotone counter or last-write-wins sample needs. The exceptions are
/// documented on their fields.
struct Shared {
    /// Immutable after startup; connections read it lock-free.
    config: FleetConfig,
    step: AtomicU64,
    queue_depth: AtomicUsize,
    /// High-watermark of `queue_depth` (updated with `fetch_max` right
    /// after each enqueue).
    queue_depth_peak: AtomicUsize,
    connections: AtomicU32,
    subscribers: AtomicU32,
    busy_rejections: AtomicU64,
    blocks_ingested: AtomicU64,
    /// `Release` store / `Acquire` load: the flag is the *publication*
    /// that the engine finished mutating its state (or was asked to),
    /// so threads that observe it true must also observe everything the
    /// engine wrote before setting it.
    shutdown: AtomicBool,
    /// Cleared (`Release`) by the engine thread on exit; `/healthz`
    /// reads it (`Acquire`) as the liveness half of readiness.
    engine_alive: AtomicBool,
    /// Cleared when a block fails to persist ([`fleetstate::PersistError`]):
    /// the write-ahead guarantee is gone, so readiness drops. `Relaxed`
    /// — a lone health bit with no dependent data.
    journal_ok: AtomicBool,
    /// Bit totals of the fleet cost ledgers, updated after each block.
    online_bits: AtomicU64,
    offline_bits: AtomicU64,
    journal_frames: AtomicU64,
    /// The daemon's metrics plane (its own registry — the process-wide
    /// [`obsv::global`] registry stays untouched).
    telemetry: Telemetry,
}

impl Shared {
    fn new(config: FleetConfig) -> Self {
        Self {
            config,
            step: AtomicU64::new(0),
            queue_depth: AtomicUsize::new(0),
            queue_depth_peak: AtomicUsize::new(0),
            connections: AtomicU32::new(0),
            subscribers: AtomicU32::new(0),
            busy_rejections: AtomicU64::new(0),
            blocks_ingested: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            engine_alive: AtomicBool::new(true),
            journal_ok: AtomicBool::new(true),
            online_bits: AtomicU64::new(0),
            offline_bits: AtomicU64::new(0),
            journal_frames: AtomicU64::new(0),
            telemetry: Telemetry::new(),
        }
    }

    /// Readiness for `/healthz`: the engine thread is alive, the journal
    /// still accepts appends, and nobody asked us to stop.
    fn ready(&self) -> bool {
        self.engine_alive.load(Ordering::Acquire)
            && self.journal_ok.load(Ordering::Relaxed)
            && !self.shutdown.load(Ordering::Acquire)
    }
}

/// One registered event tail.
struct Subscriber {
    client: u64,
    tx: SyncSender<Arc<Vec<TraceRecord>>>,
    /// Batches handed to `tx` but not yet written to the client socket —
    /// the tail's *lag*, surfaced as a telemetry gauge.
    in_flight: Arc<AtomicU64>,
}

type Subscribers = Arc<Mutex<Vec<Subscriber>>>;

/// A running daemon: join it, or stop it programmatically.
pub struct ServerHandle {
    engine: Option<JoinHandle<()>>,
    accept: Vec<JoinHandle<()>>,
    jobs: SyncSender<EngineJob>,
    shared: Arc<Shared>,
    /// The unix socket path (removed on graceful stop).
    socket_path: Option<PathBuf>,
}

impl ServerHandle {
    /// Signals shutdown and waits for the engine and accept loops to
    /// finish. Detached connection threads exit when their clients
    /// disconnect.
    pub fn stop(mut self) {
        let (tx, _rx) = std::sync::mpsc::sync_channel(1);
        let _ = self.jobs.send(EngineJob::Shutdown { reply: tx });
        self.join_inner();
    }

    /// Waits for the daemon to stop (e.g. a client sent `Shutdown`).
    pub fn wait(mut self) {
        self.join_inner();
    }

    /// Whether the daemon has been told to shut down.
    #[must_use]
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::Acquire)
    }

    fn join_inner(&mut self) {
        if let Some(engine) = self.engine.take() {
            let _ = engine.join();
        }
        // Stop the (process-global) risk hub with the daemon so later
        // in-process work does not keep recording into its sketches.
        obsv::risk::global().disable();
        for h in self.accept.drain(..) {
            let _ = h.join();
        }
        if let Some(path) = self.socket_path.take() {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// What [`serve`] reports about daemon startup.
pub struct Started {
    /// The running daemon.
    pub handle: ServerHandle,
    /// The recovery outcome when `recover` was set.
    pub recovery: Option<RecoveryOutcome>,
    /// The bound telemetry listener address, when
    /// [`ServeOptions::telemetry_addr`] was set (resolves an `:0` port
    /// request to the actual port).
    pub telemetry_addr: Option<std::net::SocketAddr>,
}

/// Starts the daemon: opens (or recovers) the persistent fleet in
/// `options.dir`, binds `socket_path` (an existing socket file is
/// replaced — the expected leftover of a SIGKILL), optionally binds a
/// TCP listener, and spawns the engine + accept threads.
///
/// # Errors
///
/// [`fleetstate::PersistError`] (stringified) on persistence failure or
/// `std::io::Error` text on bind failure.
pub fn serve(
    options: &ServeOptions,
    socket_path: &Path,
    tcp_addr: Option<&str>,
) -> Result<Started, String> {
    if options.emit_trace {
        let tracer = obsv::tracer::global();
        // Capacity covers the largest block between drains; the engine
        // drains after every block.
        tracer.set_capacity((options.config.lanes * 8).max(1 << 16));
        tracer.enable();
    }
    let (fleet, recovery) = if options.recover {
        let (fleet, outcome) = PersistentFleet::recover(
            &options.dir,
            &options.config,
            options.threads,
            options.snapshot_every,
        )
        .map_err(|e| format!("recover {}: {e}", options.dir.display()))?;
        (fleet, Some(outcome))
    } else {
        let journal = options.dir.join(JOURNAL_FILE);
        if options.dir.exists() && journal.exists() {
            return Err(format!(
                "{} already holds a journal; pass recover to resume it (or point the daemon at a fresh directory)",
                options.dir.display()
            ));
        }
        let fleet = PersistentFleet::create(
            &options.dir,
            &options.config,
            options.threads,
            options.snapshot_every,
        )
        .map_err(|e| format!("create {}: {e}", options.dir.display()))?;
        (fleet, None)
    };

    // The realized-CR sketches are derived state over the *whole*
    // journal (a snapshot restores estimator state but replays no
    // stops), so a recovered daemon rebuilds them by replaying the full
    // journal through a throwaway engine with trace emission off — the
    // risk counters are then monotone across the crash. The hub is
    // reset/enabled only after `recover` so the journal-tail replay
    // inside it cannot double-count.
    let risk_hub = obsv::risk::global();
    risk_hub.reset();
    risk_hub.enable();
    if recovery.is_some() {
        let journal_path = options.dir.join(JOURNAL_FILE);
        let bytes =
            std::fs::read(&journal_path).map_err(|e| format!("{}: {e}", journal_path.display()))?;
        let journal = fleetstate::parse_journal(&bytes)
            .map_err(|e| format!("risk rebuild: {}: {e}", journal_path.display()))?;
        let mut rebuild = fleetstate::FleetRunner::new(&options.config, options.threads)
            .map_err(|e| format!("risk rebuild: {e}"))?;
        for block in journal.steps.chunks(4096) {
            rebuild.run_block(block, false).map_err(|e| format!("risk rebuild: {e}"))?;
        }
    }

    let shared = Arc::new(Shared::new(options.config));
    shared.step.store(fleet.runner().step(), Ordering::Relaxed);
    shared.journal_frames.store(fleet.journal().frames_written(), Ordering::Relaxed);
    let totals = fleet.runner().totals();
    shared.online_bits.store(totals.0.to_bits(), Ordering::Relaxed);
    shared.offline_bits.store(totals.1.to_bits(), Ordering::Relaxed);
    publish_journal_gauges(&shared.telemetry, &fleet);
    shared.telemetry.set_gauge("fleetd_recovered", f64::from(u8::from(recovery.is_some())));
    if let Some(outcome) = &recovery {
        let t = &shared.telemetry;
        t.set_gauge("fleetd_recovery_resumed_step", outcome.resumed_step as f64);
        t.set_gauge("fleetd_recovery_snapshot_step", outcome.snapshot_step as f64);
        t.set_gauge("fleetd_recovery_frames_replayed", outcome.frames_replayed as f64);
        t.set_gauge("fleetd_recovery_snapshots_rejected", outcome.snapshots_rejected as f64);
        t.set_gauge("fleetd_recovery_duplicates_skipped", outcome.duplicates_skipped as f64);
        t.set_gauge(
            "fleetd_recovery_torn_tail_dropped",
            f64::from(u8::from(outcome.torn_tail_dropped)),
        );
    }

    let subscribers: Subscribers = Arc::new(Mutex::new(Vec::new()));
    let (jobs_tx, jobs_rx) = std::sync::mpsc::sync_channel(options.queue_capacity);

    let engine = {
        let shared = Arc::clone(&shared);
        let subscribers = Arc::clone(&subscribers);
        let options = options.clone();
        std::thread::Builder::new()
            .name("fleetd-engine".to_string())
            .spawn(move || engine_loop(fleet, &jobs_rx, &shared, &subscribers, &options))
            .map_err(|e| format!("spawn engine thread: {e}"))?
    };

    if socket_path.exists() {
        std::fs::remove_file(socket_path)
            .map_err(|e| format!("remove stale socket {}: {e}", socket_path.display()))?;
    }
    let listener = UnixListener::bind(socket_path)
        .map_err(|e| format!("bind {}: {e}", socket_path.display()))?;
    listener.set_nonblocking(true).map_err(|e| format!("nonblocking: {e}"))?;

    let mut accept = Vec::new();
    {
        let shared = Arc::clone(&shared);
        let subscribers = Arc::clone(&subscribers);
        let jobs = jobs_tx.clone();
        let capacity = options.queue_capacity;
        accept.push(
            std::thread::Builder::new()
                .name("fleetd-accept-unix".to_string())
                .spawn(move || {
                    accept_loop(
                        || listener.accept().map(|(s, _)| Conn::Unix(s)),
                        &shared,
                        &subscribers,
                        &jobs,
                        capacity,
                    );
                })
                .map_err(|e| format!("spawn accept thread: {e}"))?,
        );
    }
    if let Some(addr) = tcp_addr {
        let tcp = std::net::TcpListener::bind(addr).map_err(|e| format!("bind {addr}: {e}"))?;
        tcp.set_nonblocking(true).map_err(|e| format!("nonblocking: {e}"))?;
        let shared = Arc::clone(&shared);
        let subscribers = Arc::clone(&subscribers);
        let jobs = jobs_tx.clone();
        let capacity = options.queue_capacity;
        accept.push(
            std::thread::Builder::new()
                .name("fleetd-accept-tcp".to_string())
                .spawn(move || {
                    accept_loop(
                        || tcp.accept().map(|(s, _)| Conn::Tcp(s)),
                        &shared,
                        &subscribers,
                        &jobs,
                        capacity,
                    );
                })
                .map_err(|e| format!("spawn accept thread: {e}"))?,
        );
    }

    let mut telemetry_addr = None;
    if let Some(addr) = options.telemetry_addr.as_deref() {
        let http = std::net::TcpListener::bind(addr).map_err(|e| format!("bind {addr}: {e}"))?;
        http.set_nonblocking(true).map_err(|e| format!("nonblocking: {e}"))?;
        telemetry_addr = http.local_addr().ok();
        let shared = Arc::clone(&shared);
        let subscribers = Arc::clone(&subscribers);
        let capacity = options.queue_capacity;
        accept.push(
            std::thread::Builder::new()
                .name("fleetd-telemetry".to_string())
                .spawn(move || http_loop(&http, &shared, &subscribers, capacity))
                .map_err(|e| format!("spawn telemetry thread: {e}"))?,
        );
    }

    Ok(Started {
        handle: ServerHandle {
            engine: Some(engine),
            accept,
            jobs: jobs_tx,
            shared,
            socket_path: Some(socket_path.to_path_buf()),
        },
        recovery,
        telemetry_addr,
    })
}

/// Either transport, unified for the connection handler.
enum Conn {
    Unix(UnixStream),
    Tcp(std::net::TcpStream),
}

impl Conn {
    fn set_blocking(&self) -> std::io::Result<()> {
        match self {
            Self::Unix(s) => s.set_nonblocking(false),
            Self::Tcp(s) => s.set_nonblocking(false),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Self::Unix(s) => s.read(buf),
            Self::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Self::Unix(s) => s.write(buf),
            Self::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Self::Unix(s) => s.flush(),
            Self::Tcp(s) => s.flush(),
        }
    }
}

fn accept_loop<F>(
    mut accept: F,
    shared: &Arc<Shared>,
    subscribers: &Subscribers,
    jobs: &SyncSender<EngineJob>,
    queue_capacity: usize,
) where
    F: FnMut() -> std::io::Result<Conn>,
{
    // Acquire pairs with the engine's Release store: once the loop sees
    // shutdown it also sees the engine's final state.
    while !shared.shutdown.load(Ordering::Acquire) {
        match accept() {
            Ok(conn) => {
                // Relaxed: the id only needs to be unique, which a
                // single atomic guarantees at any ordering.
                let client_id = u64::from(shared.connections.fetch_add(1, Ordering::Relaxed));
                let shared = Arc::clone(shared);
                let subscribers = Arc::clone(subscribers);
                let jobs = jobs.clone();
                // Connection threads are detached: they end when their
                // client disconnects (or the process exits).
                let _ = std::thread::Builder::new().name(format!("fleetd-conn-{client_id}")).spawn(
                    move || {
                        handle_conn(conn, client_id, &shared, &subscribers, &jobs, queue_capacity);
                    },
                );
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => break,
        }
    }
}

/// Emits a session trace event on the connection's own stream
/// (`meta + 1 + client_id`), so concurrent connections never collide on
/// `(stream, stop, seq)` keys.
fn session_event(shared: &Shared, client: u64, what: &'static str, detail: String) {
    if !obsv::tracer::observing() {
        return;
    }
    // Relaxed: the step only decorates the event; session streams are
    // keyed by client id, so a stale read cannot collide records.
    let step = shared.step.load(Ordering::Relaxed);
    obsv::tracer::set_stream(shared.config.meta_stream() + 1 + client);
    obsv::tracer::begin_stop(step);
    obsv::tracer::emit(TraceEvent::Session { what: what.into(), client, step, detail });
}

#[allow(clippy::too_many_lines)]
fn handle_conn(
    mut conn: Conn,
    client_id: u64,
    shared: &Arc<Shared>,
    subscribers: &Subscribers,
    jobs: &SyncSender<EngineJob>,
    queue_capacity: usize,
) {
    if conn.set_blocking().is_err() {
        return;
    }
    let mut client_name = String::new();
    while let Ok(Some(frame)) = proto::read_frame(&mut conn) {
        let decode_span = shared.telemetry.frame_decode.start();
        let decoded = proto::decode_request(&frame);
        decode_span.finish();
        let request = match decoded {
            Ok(r) => r,
            Err(e) => {
                // A typed decode error is an answer, not a disconnect:
                // the framing is intact (CRC verified), only the payload
                // or kind was wrong.
                let reply = Reply::Error { message: e.to_string() };
                if proto::write_frame(&mut conn, &proto::encode_reply(&reply)).is_err() {
                    break;
                }
                continue;
            }
        };
        let reply = match request {
            Request::Hello { name } => {
                client_name = name;
                session_event(shared, client_id, "hello", client_name.clone());
                Reply::HelloAck {
                    config: shared.config,
                    step: shared.step.load(Ordering::Relaxed),
                    client_id,
                }
            }
            Request::Submit { first_step, rows } => {
                let (tx, rx) = std::sync::mpsc::sync_channel(1);
                let depth = shared.queue_depth.load(Ordering::Relaxed);
                let job = EngineJob::Submit {
                    client: client_id,
                    first_step,
                    rows,
                    reply: tx,
                    enqueued: Instant::now(),
                };
                match jobs.try_send(job) {
                    Ok(()) => {
                        // Relaxed: depth is advisory (Stats + Busy echo);
                        // the queue itself is the synchronizing structure.
                        let depth = shared.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
                        shared.queue_depth_peak.fetch_max(depth, Ordering::Relaxed);
                        rx.recv().unwrap_or(Reply::Error { message: "daemon stopped".into() })
                    }
                    Err(TrySendError::Full(_)) => {
                        shared.busy_rejections.fetch_add(1, Ordering::Relaxed);
                        session_event(
                            shared,
                            client_id,
                            "busy_rejected",
                            format!("queue {depth}/{queue_capacity}"),
                        );
                        Reply::Busy { queued: depth as u32, capacity: queue_capacity as u32 }
                    }
                    Err(TrySendError::Disconnected(_)) => {
                        Reply::Error { message: "daemon stopped".into() }
                    }
                }
            }
            // Relaxed throughout: a stats reply is a racy point-in-time
            // sample; no pair of fields carries a joint invariant.
            Request::Stats => Reply::Stats(StatsInfo {
                step: shared.step.load(Ordering::Relaxed),
                lanes: shared.config.lanes as u32,
                queue_depth: shared.queue_depth.load(Ordering::Relaxed) as u32,
                queue_capacity: queue_capacity as u32,
                connections: shared.connections.load(Ordering::Relaxed),
                subscribers: shared.subscribers.load(Ordering::Relaxed),
                busy_rejections: shared.busy_rejections.load(Ordering::Relaxed),
                blocks_ingested: shared.blocks_ingested.load(Ordering::Relaxed),
                journal_frames: shared.journal_frames.load(Ordering::Relaxed),
                online_total: f64::from_bits(shared.online_bits.load(Ordering::Relaxed)),
                offline_total: f64::from_bits(shared.offline_bits.load(Ordering::Relaxed)),
            }),
            Request::Telemetry => {
                Reply::Telemetry { text: render_metrics(shared, subscribers, queue_capacity) }
            }
            Request::ExportState => send_job(jobs, |tx| EngineJob::ExportState { reply: tx }),
            Request::Snapshot => send_job(jobs, |tx| EngineJob::Snapshot { reply: tx }),
            Request::ReplayEvents => {
                session_event(shared, client_id, "replay", client_name.clone());
                // Replay streams multiple Events frames; forward them
                // all, then continue serving this connection.
                let (tx, rx) = std::sync::mpsc::sync_channel(4);
                if jobs.send(EngineJob::Replay { client: client_id, reply: tx }).is_err() {
                    Reply::Error { message: "daemon stopped".into() }
                } else {
                    let mut failed = false;
                    for reply in rx {
                        let done = !matches!(reply, Reply::Events { last: false, .. });
                        if proto::write_frame(&mut conn, &proto::encode_reply(&reply)).is_err() {
                            failed = true;
                            break;
                        }
                        if done {
                            break;
                        }
                    }
                    if failed {
                        break;
                    }
                    continue;
                }
            }
            Request::Subscribe => {
                session_event(shared, client_id, "subscribe", client_name.clone());
                let (tx, rx) = std::sync::mpsc::sync_channel(SUBSCRIBER_QUEUE);
                let in_flight = Arc::new(AtomicU64::new(0));
                subscribers.lock().unwrap_or_else(PoisonError::into_inner).push(Subscriber {
                    client: client_id,
                    tx,
                    in_flight: Arc::clone(&in_flight),
                });
                shared.subscribers.fetch_add(1, Ordering::Relaxed);
                run_subscriber(&mut conn, &rx, &in_flight);
                shared.subscribers.fetch_sub(1, Ordering::Relaxed);
                subscribers
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .retain(|s| s.client != client_id);
                break;
            }
            Request::Shutdown => {
                session_event(shared, client_id, "shutdown", client_name.clone());
                send_job(jobs, |tx| EngineJob::Shutdown { reply: tx })
            }
        };
        let frame = proto::encode_reply(&reply);
        let write_span = shared.telemetry.reply_write.start();
        let wrote = proto::write_frame(&mut conn, &frame);
        write_span.finish();
        if wrote.is_err() {
            break;
        }
    }
    session_event(shared, client_id, "disconnected", client_name);
}

/// Sends a single-reply job to the engine, waiting for its answer.
fn send_job<F>(jobs: &SyncSender<EngineJob>, make: F) -> Reply
where
    F: FnOnce(SyncSender<Reply>) -> EngineJob,
{
    let (tx, rx) = std::sync::mpsc::sync_channel(1);
    if jobs.send(make(tx)).is_err() {
        return Reply::Error { message: "daemon stopped".into() };
    }
    rx.recv().unwrap_or(Reply::Error { message: "daemon stopped".into() })
}

/// Forwards event batches to a subscribed connection until the client
/// disconnects or the daemon stops. `in_flight` mirrors the channel's
/// backlog for the lag gauge: broadcast increments on enqueue, this
/// decrements once the batch reaches the socket.
fn run_subscriber(conn: &mut Conn, rx: &Receiver<Arc<Vec<TraceRecord>>>, in_flight: &AtomicU64) {
    for batch in rx {
        let jsonl = obsv::event::to_jsonl(&batch);
        let reply = Reply::Events { last: false, jsonl };
        let sent = proto::write_frame(conn, &proto::encode_reply(&reply));
        in_flight.fetch_sub(1, Ordering::Relaxed);
        if sent.is_err() {
            return;
        }
    }
}

fn engine_loop(
    mut fleet: PersistentFleet,
    jobs: &Receiver<EngineJob>,
    shared: &Arc<Shared>,
    subscribers: &Subscribers,
    options: &ServeOptions,
) {
    let emit = options.emit_trace;
    while let Ok(job) = jobs.recv() {
        match job {
            EngineJob::Submit { client, first_step, rows, reply, enqueued } => {
                // Queue wait ends at dequeue, before any debug throttle.
                shared.telemetry.queue_wait.record_duration(enqueued.elapsed());
                if options.engine_delay_ms > 0 {
                    std::thread::sleep(std::time::Duration::from_millis(options.engine_delay_ms));
                }
                let step = fleet.runner().step();
                let answer = if first_step != u64::MAX && first_step != step {
                    Reply::Error {
                        message: format!(
                            "step mismatch: daemon is at step {step}, block starts at {first_step}"
                        ),
                    }
                } else {
                    match fleet.run_block_decided_timed(&rows, emit) {
                        Ok((decisions, timing)) => {
                            let t = &shared.telemetry;
                            t.journal_append.record_seconds(timing.journal_write_s);
                            t.journal_fsync.record_seconds(timing.journal_sync_s);
                            t.engine_decide.record_seconds(timing.decide_s);
                            publish_journal_gauges(t, &fleet);
                            shared.blocks_ingested.fetch_add(1, Ordering::Relaxed);
                            shared.step.store(fleet.runner().step(), Ordering::Relaxed);
                            shared
                                .journal_frames
                                .store(fleet.journal().frames_written(), Ordering::Relaxed);
                            let totals = fleet.runner().totals();
                            shared.online_bits.store(totals.0.to_bits(), Ordering::Relaxed);
                            shared.offline_bits.store(totals.1.to_bits(), Ordering::Relaxed);
                            Reply::Decisions {
                                first_step: step,
                                steps: decisions.steps() as u32,
                                lanes: decisions.lanes() as u32,
                                thresholds: decisions.thresholds().to_vec(),
                                vertices: decisions.vertices().to_vec(),
                            }
                        }
                        Err(e) => {
                            // A persist failure voids the write-ahead
                            // guarantee: flag the journal unhealthy so
                            // /healthz flips to unready.
                            shared.journal_ok.store(false, Ordering::Relaxed);
                            Reply::Error { message: format!("client {client}: {e}") }
                        }
                    }
                };
                shared.queue_depth.fetch_sub(1, Ordering::Relaxed);
                let _ = reply.send(answer);
                broadcast(subscribers, shared);
            }
            EngineJob::ExportState { reply } => {
                let bytes = fleetstate::encode_fleet_state(&fleet.runner().export_state());
                let _ = reply.send(Reply::State(bytes));
            }
            EngineJob::Snapshot { reply } => {
                let answer = match fleet.snapshot() {
                    Ok(()) => {
                        Reply::Ack { info: format!("snapshot at step {}", fleet.runner().step()) }
                    }
                    Err(e) => Reply::Error { message: e.to_string() },
                };
                let _ = reply.send(answer);
                broadcast(subscribers, shared);
            }
            EngineJob::Replay { client, reply } => {
                run_replay(options, client, &reply);
                broadcast(subscribers, shared);
            }
            EngineJob::Shutdown { reply } => {
                // Release: publishes every engine write above to threads
                // that Acquire-load the flag (accept loops, /healthz).
                shared.shutdown.store(true, Ordering::Release);
                let _ = reply.send(Reply::Ack {
                    info: format!("stopping at step {}", fleet.runner().step()),
                });
                break;
            }
        }
    }
    shared.shutdown.store(true, Ordering::Release);
    shared.engine_alive.store(false, Ordering::Release);
    // Dropping the subscriber senders ends each tail's receive loop, so
    // subscribed connections observe EOF instead of hanging.
    subscribers.lock().unwrap_or_else(PoisonError::into_inner).clear();
}

/// Replays the complete journal through a fresh engine (the journal
/// holds every step since creation — snapshots never truncate it) and
/// streams the regenerated canonical events back in chunks.
fn run_replay(options: &ServeOptions, client: u64, reply: &SyncSender<Reply>) {
    // The replay emits through the global tracer; the engine drains it
    // after every block, so whatever is pending now belongs to earlier
    // work — flush it to subscribers is already done, and the tracer is
    // empty here. Run, then drain everything the replay produced.
    let journal_path = options.dir.join(JOURNAL_FILE);
    let replayed = if options.emit_trace {
        // The full-journal replay re-runs every stop through a fresh
        // engine; park the risk hub so the live sketches are not
        // double-counted. (Runs on the engine thread, so no block is
        // processed concurrently.)
        let hub = obsv::risk::global();
        let was_risk = hub.is_enabled();
        if was_risk {
            hub.disable();
        }
        let result = fleetstate::replay_session(&journal_path, &options.config, options.threads);
        if was_risk {
            hub.enable();
        }
        result
    } else {
        let _ = client;
        let _ = reply.send(Reply::Error {
            message: "daemon runs with tracing disabled; no events to replay".into(),
        });
        return;
    };
    match replayed {
        Ok(_runner) => {
            let records = obsv::tracer::global().drain_sorted();
            if records.is_empty() {
                let _ = reply.send(Reply::Events { last: true, jsonl: String::new() });
                return;
            }
            let chunks: Vec<&[TraceRecord]> = records.chunks(EVENTS_CHUNK).collect();
            let n = chunks.len();
            for (i, chunk) in chunks.into_iter().enumerate() {
                let msg = Reply::Events { last: i + 1 == n, jsonl: obsv::event::to_jsonl(chunk) };
                if reply.send(msg).is_err() {
                    return;
                }
            }
        }
        Err(e) => {
            let _ = reply.send(Reply::Error { message: format!("replay: {e}") });
        }
    }
}

/// Drains the global tracer and fans the batch out to subscribers; a
/// subscriber whose queue is full (or gone) is dropped.
fn broadcast(subscribers: &Subscribers, shared: &Arc<Shared>) {
    if !obsv::tracer::active() {
        return;
    }
    let records = obsv::tracer::global().drain_sorted();
    if records.is_empty() {
        return;
    }
    let batch = Arc::new(records);
    let mut subs = subscribers.lock().unwrap_or_else(PoisonError::into_inner);
    let before = subs.len();
    subs.retain(|s| {
        let kept = s.tx.try_send(Arc::clone(&batch)).is_ok();
        if kept {
            s.in_flight.fetch_add(1, Ordering::Relaxed);
        }
        kept
    });
    let dropped = before - subs.len();
    if dropped > 0 {
        shared.subscribers.fetch_sub(dropped as u32, Ordering::Relaxed);
        shared.telemetry.subscriber_drops.add(dropped as u64);
    }
}

/// Publishes the engine-owned journal health gauges (journal length,
/// write-ahead backlog, snapshot age). Called from the engine thread
/// after each block and once at startup.
fn publish_journal_gauges(telemetry: &Telemetry, fleet: &PersistentFleet) {
    telemetry.journal_bytes.set(fleet.journal().bytes_written() as f64);
    telemetry.frames_since_snapshot.set(fleet.frames_since_snapshot() as f64);
    telemetry.snapshot_age_steps.set(fleet.snapshot_age_steps() as f64);
}

/// Refreshes the scrape-time series from the shared atomics and renders
/// the full Prometheus exposition page. Stage histograms and the
/// engine's journal gauges are already live in the registry; this adds
/// the point-in-time service gauges and syncs the mirrored counters.
fn render_metrics(shared: &Shared, subscribers: &Subscribers, queue_capacity: usize) -> String {
    let t = &shared.telemetry;
    t.sync_counter(
        "fleetd_connections_total",
        u64::from(shared.connections.load(Ordering::Relaxed)),
    );
    t.sync_counter("fleetd_busy_rejections_total", shared.busy_rejections.load(Ordering::Relaxed));
    t.sync_counter("fleetd_blocks_ingested_total", shared.blocks_ingested.load(Ordering::Relaxed));
    t.sync_counter("fleetd_journal_frames_total", shared.journal_frames.load(Ordering::Relaxed));
    t.set_gauge("fleetd_step", shared.step.load(Ordering::Relaxed) as f64);
    t.set_gauge("fleetd_queue_depth", shared.queue_depth.load(Ordering::Relaxed) as f64);
    t.set_gauge("fleetd_queue_depth_peak", shared.queue_depth_peak.load(Ordering::Relaxed) as f64);
    t.set_gauge("fleetd_queue_capacity", queue_capacity as f64);
    t.set_gauge("fleetd_subscribers", f64::from(shared.subscribers.load(Ordering::Relaxed)));
    let lag = subscribers
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .iter()
        .map(|s| s.in_flight.load(Ordering::Relaxed))
        .max()
        .unwrap_or(0);
    t.set_gauge("fleetd_subscriber_lag", lag as f64);
    t.set_gauge(
        "fleetd_engine_alive",
        f64::from(u8::from(shared.engine_alive.load(Ordering::Acquire))),
    );
    t.set_gauge(
        "fleetd_journal_writable",
        f64::from(u8::from(shared.journal_ok.load(Ordering::Relaxed))),
    );
    t.set_gauge(
        "fleetd_online_cost_total",
        f64::from_bits(shared.online_bits.load(Ordering::Relaxed)),
    );
    t.set_gauge(
        "fleetd_offline_cost_total",
        f64::from_bits(shared.offline_bits.load(Ordering::Relaxed)),
    );
    if obsv::risk::active() {
        publish_risk_series(t, shared.config.trace_stream_base);
    }
    t.render_text()
}

/// Cardinality of the `fleet_cr_top_*` rank gauges: the k riskiest
/// vehicles exported per scrape.
const TOP_RISK_K: usize = 3;

/// Publishes the fleet tail-risk series from the global risk hub: fleet
/// CVaR/quantile gauges, per-ladder-rung exceedance counters, and
/// fixed-cardinality top-k riskiest-vehicle rank gauges. Label values
/// are the default `{}` float rendering — the exact strings `fleetctl
/// risk` looks up.
fn publish_risk_series(t: &Telemetry, trace_stream_base: u64) {
    let report = obsv::risk::global().report();
    let fleet = &report.fleet;
    t.sync_counter("fleet_cr_samples_total", fleet.count);
    for tau in obsv::risk::TAU_LADDER {
        t.sync_counter(&format!("fleet_cr_exceed_total{{tau=\"{tau}\"}}"), fleet.exceed_count(tau));
    }
    for alpha in [0.95, 0.99] {
        if let Some(v) = fleet.cvar(alpha) {
            t.set_gauge(&format!("fleet_cr_cvar{{alpha=\"{alpha}\"}}"), v);
        }
    }
    for q in [0.5, 0.9, 0.99] {
        if let Some(v) = fleet.quantile(q) {
            t.set_gauge(&format!("fleet_cr_quantile{{q=\"{q}\"}}"), v);
        }
    }
    // Top-k by per-vehicle CVaR95; ties break toward the lower lane so
    // the ranking (and the rendered page) is deterministic.
    let mut ranked: Vec<(u64, f64)> = report
        .vehicles
        .iter()
        .filter_map(|(stream, digest)| {
            digest.cvar(0.95).map(|v| (stream.saturating_sub(trace_stream_base), v))
        })
        .collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    for (i, (lane, cvar)) in ranked.into_iter().take(TOP_RISK_K).enumerate() {
        let rank = i + 1;
        t.set_gauge(&format!("fleet_cr_top_lane{{rank=\"{rank}\"}}"), lane as f64);
        t.set_gauge(&format!("fleet_cr_top_cvar{{rank=\"{rank}\"}}"), cvar);
    }
}

/// Cap on an HTTP request head (request line + headers) the telemetry
/// responder will buffer.
const HTTP_HEAD_MAX: usize = 8 * 1024;

/// Accept loop for the `--telemetry-addr` listener: answers
/// `GET /metrics` and `GET /healthz` over HTTP/1.0, one short-lived
/// thread per connection.
fn http_loop(
    listener: &std::net::TcpListener,
    shared: &Arc<Shared>,
    subscribers: &Subscribers,
    queue_capacity: usize,
) {
    while !shared.shutdown.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = Arc::clone(shared);
                let subscribers = Arc::clone(subscribers);
                let _ =
                    std::thread::Builder::new().name("fleetd-http".to_string()).spawn(move || {
                        let _ = serve_http(stream, &shared, &subscribers, queue_capacity);
                    });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => break,
        }
    }
}

/// Answers one HTTP request and closes the connection (HTTP/1.0
/// semantics: no keep-alive, `Content-Length` always set).
fn serve_http(
    mut stream: std::net::TcpStream,
    shared: &Shared,
    subscribers: &Subscribers,
    queue_capacity: usize,
) -> std::io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(std::time::Duration::from_secs(2)))?;
    let head = read_http_head(&mut stream)?;
    let line = head.lines().next().unwrap_or("");
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let target = parts.next().unwrap_or("");
    let (status, content_type, body) = if method != "GET" {
        ("405 Method Not Allowed", "text/plain; charset=utf-8", "method not allowed\n".to_string())
    } else {
        match target {
            "/metrics" => (
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                render_metrics(shared, subscribers, queue_capacity),
            ),
            "/healthz" => {
                if shared.ready() {
                    ("200 OK", "text/plain; charset=utf-8", "ok\n".to_string())
                } else {
                    (
                        "503 Service Unavailable",
                        "text/plain; charset=utf-8",
                        "unready\n".to_string(),
                    )
                }
            }
            _ => ("404 Not Found", "text/plain; charset=utf-8", "not found\n".to_string()),
        }
    };
    let response = format!(
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

/// Reads until the blank line ending the request head (or the size cap).
fn read_http_head(stream: &mut std::net::TcpStream) -> std::io::Result<String> {
    let mut head = Vec::new();
    let mut buf = [0u8; 512];
    loop {
        let n = stream.read(&mut buf)?;
        if n == 0 {
            break;
        }
        head.extend_from_slice(&buf[..n]);
        if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() >= HTTP_HEAD_MAX {
            break;
        }
    }
    Ok(String::from_utf8_lossy(&head).into_owned())
}
