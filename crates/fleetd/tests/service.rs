//! In-process integration tests for the daemon: handshake, decision
//! round-trips against a reference engine, backpressure, event
//! recording vs. journal replay, and graceful-stop recovery.
//!
//! Tests share the process-global tracer, so every test takes `LOCK`
//! and trace-sensitive ones reset the tracer before use.

use fleetd::client::{Client, SessionRecorder};
use fleetd::proto::Reply;
use fleetd::server::{serve, ServeOptions};
use fleetstate::{FleetConfig, FleetRunner};
use std::path::PathBuf;
use std::sync::Mutex;

static LOCK: Mutex<()> = Mutex::new(());

const LANES: usize = 12;
const STEPS: usize = 8;

fn config() -> FleetConfig {
    FleetConfig {
        lanes: LANES,
        break_even: 28.0,
        window: Some(16),
        min_history: 2,
        seed: 7,
        trace_stream_base: 0,
    }
}

/// A fresh scratch directory + unix socket path for one test.
fn scratch(name: &str) -> (PathBuf, PathBuf) {
    let root = std::env::temp_dir().join(format!("fleetd-it-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).unwrap();
    (root.join("fleet"), root.join("fleetd.sock"))
}

/// Deterministic workload, time-major: `rows[t][lane]`, straddling the
/// 28 s break-even so decisions exercise multiple vertices.
fn rows(first_step: u64, steps: usize) -> Vec<Vec<f64>> {
    (0..steps)
        .map(|t| {
            (0..LANES)
                .map(|lane| {
                    let x = (first_step as usize + t) * 31 + lane * 17;
                    (x % 113) as f64
                })
                .collect()
        })
        .collect()
}

fn options(dir: &std::path::Path, emit_trace: bool) -> ServeOptions {
    ServeOptions {
        dir: dir.to_path_buf(),
        config: config(),
        threads: 2,
        snapshot_every: 0,
        queue_capacity: 8,
        emit_trace,
        engine_delay_ms: 0,
        recover: false,
        telemetry_addr: None,
    }
}

#[test]
fn handshake_submit_and_state_match_reference_engine() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (dir, socket) = scratch("basic");
    let started = serve(&options(&dir, false), &socket, None).unwrap();

    let mut client = Client::connect_unix(&socket).unwrap();
    let (cfg, step, _id) = client.hello("it-basic").unwrap();
    assert_eq!(cfg, config());
    assert_eq!(step, 0);

    // Reference: the same engine, run locally without a daemon.
    let mut reference = FleetRunner::new(&config(), 2).unwrap();
    let block = rows(0, STEPS);
    let expected = reference.run_block_decided(&block, false).unwrap();

    let reply = client.submit(0, &block).unwrap();
    let Reply::Decisions { first_step, steps, lanes, thresholds, vertices } = reply else {
        panic!("wanted Decisions, got {reply:?}");
    };
    assert_eq!((first_step, steps as usize, lanes as usize), (0, STEPS, LANES));
    assert_eq!(thresholds, expected.thresholds());
    assert_eq!(vertices, expected.vertices());

    // The exported state is byte-identical to the reference engine's.
    let daemon_state = client.export_state().unwrap();
    let reference_state = fleetstate::encode_fleet_state(&reference.export_state());
    assert_eq!(daemon_state, reference_state);

    let info = client.stats().unwrap();
    assert_eq!(info.step, STEPS as u64);
    assert_eq!(info.blocks_ingested, 1);
    assert_eq!(info.lanes as usize, LANES);

    // Step continuity is enforced: resubmitting step 0 is an error.
    let err = client.submit(0, &rows(0, 1)).unwrap_err();
    assert!(err.to_string().contains("step mismatch"), "{err}");
    // ... but u64::MAX skips the check.
    assert!(matches!(client.submit(u64::MAX, &rows(8, 1)), Ok(Reply::Decisions { .. })));

    started.handle.stop();
}

#[test]
fn full_queue_answers_busy_not_block() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (dir, socket) = scratch("busy");
    let mut opts = options(&dir, false);
    opts.queue_capacity = 1;
    opts.engine_delay_ms = 120;
    let started = serve(&opts, &socket, None).unwrap();

    const CLIENTS: usize = 4;
    let outcomes: Vec<&'static str> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| {
                let socket = socket.clone();
                scope.spawn(move || {
                    let mut client = Client::connect_unix(&socket).unwrap();
                    match client.submit(u64::MAX, &rows(0, 2)).unwrap() {
                        Reply::Decisions { .. } => "decisions",
                        Reply::Busy { capacity, .. } => {
                            assert_eq!(capacity, 1);
                            "busy"
                        }
                        other => panic!("unexpected {other:?}"),
                    }
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let busy = outcomes.iter().filter(|o| **o == "busy").count();
    let served = outcomes.iter().filter(|o| **o == "decisions").count();
    assert_eq!(busy + served, CLIENTS);
    assert!(served >= 1, "someone must get through");
    assert!(busy >= 1, "a 1-deep queue under 4 concurrent submits must reject");

    let mut client = Client::connect_unix(&socket).unwrap();
    let info = client.stats().unwrap();
    assert_eq!(info.busy_rejections, busy as u64);
    assert_eq!(info.queue_capacity, 1);
    started.handle.stop();
}

#[test]
fn live_capture_union_replay_equals_offline_golden() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let tracer = obsv::tracer::global();
    tracer.set_capacity(1 << 16);
    tracer.enable();
    tracer.clear();

    // Golden: the canonical lane-event history of this workload,
    // generated by a local engine before any daemon exists.
    let mut golden_engine = FleetRunner::new(&config(), 2).unwrap();
    let blocks: Vec<Vec<Vec<f64>>> = (0..3).map(|i| rows(i * STEPS as u64, STEPS)).collect();
    for block in &blocks {
        golden_engine.run_block(block, true).unwrap();
    }
    let meta = config().meta_stream();
    let golden: Vec<_> = tracer.drain_sorted().into_iter().filter(|r| r.stream < meta).collect();
    assert!(!golden.is_empty());

    let (dir, socket) = scratch("capture");
    let started = serve(&options(&dir, true), &socket, None).unwrap();

    // A tailing subscriber records batches as the daemon processes.
    let tail_socket = socket.clone();
    let tail = std::thread::spawn(move || {
        let tail_client = Client::connect_unix(&tail_socket).unwrap();
        let mut recorder = SessionRecorder::new();
        tail_client
            .subscribe(|batch| {
                recorder.absorb(batch);
                true // until the daemon closes the stream
            })
            .unwrap();
        recorder
    });

    let mut client = Client::connect_unix(&socket).unwrap();
    client.hello("it-capture").unwrap();
    // Wait for the tail's subscription to register, so the live capture
    // sees every batch (and stopping cannot reset a never-accepted
    // connection still sitting in the listen backlog).
    for _ in 0..400 {
        if client.stats().unwrap().subscribers >= 1 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    assert_eq!(client.stats().unwrap().subscribers, 1, "tail never registered");
    for (i, block) in blocks.iter().enumerate() {
        let reply = client.submit(i as u64 * STEPS as u64, block).unwrap();
        assert!(matches!(reply, Reply::Decisions { .. }), "block {i}: {reply:?}");
    }

    // Full offline replay over the wire: every event since step 0.
    let replayed = client.replay_events().unwrap();
    let mut recorder = SessionRecorder::new();
    recorder.absorb(replayed);
    assert_eq!(recorder.records_below_stream(meta), golden, "replay ≠ golden");

    started.handle.stop();
    let live = tail.join().unwrap();

    // The live capture united with the replay is exactly the golden
    // history on lane streams — byte-identical once serialized.
    let mut union = SessionRecorder::new();
    union.absorb(live.records());
    union.absorb(recorder.records());
    assert_eq!(union.records_below_stream(meta), golden, "live ∪ replay ≠ golden");
    let golden_jsonl = obsv::event::to_jsonl(&golden);
    let union_lane_jsonl = obsv::event::to_jsonl(&union.records_below_stream(meta));
    assert_eq!(union_lane_jsonl, golden_jsonl);

    // Session chatter exists but lives above the meta stream.
    assert!(union.records().iter().any(|r| r.stream > meta));
    obsv::tracer::global().disable();
}

/// Minimal HTTP/1.0 GET against the daemon's telemetry listener:
/// `(status, body)`.
fn http_get(addr: std::net::SocketAddr, target: &str) -> std::io::Result<(u16, String)> {
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(addr)?;
    write!(stream, "GET {target} HTTP/1.0\r\nHost: fleetd\r\n\r\n")?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let status = response.split_whitespace().nth(1).unwrap_or("0").parse().unwrap_or(0);
    let body = response.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    Ok((status, body))
}

#[test]
fn telemetry_exposition_over_proto_and_http() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (dir, socket) = scratch("telemetry");
    let mut opts = options(&dir, false);
    opts.telemetry_addr = Some("127.0.0.1:0".to_string());
    let started = serve(&opts, &socket, None).unwrap();
    let addr = started.telemetry_addr.expect("telemetry listener bound");

    let mut client = Client::connect_unix(&socket).unwrap();
    client.hello("it-telemetry").unwrap();
    client.submit(0, &rows(0, STEPS)).unwrap();

    // Over the protocol: a parseable exposition with live stage spans.
    let text = client.telemetry().unwrap();
    let scrape = obsv::telemetry::parse(&text).unwrap();
    for name in fleetd::STAGE_HISTOGRAMS {
        assert!(scrape.histograms.contains_key(*name), "missing stage series {name}");
    }
    assert!(scrape.histograms["fleetd_stage_queue_wait_seconds"].count >= 1.0);
    assert!(scrape.histograms["fleetd_stage_frame_decode_seconds"].count >= 1.0);
    assert!(scrape.histograms["fleetd_stage_engine_decide_seconds"].count >= 1.0);
    assert!(scrape.histograms["fleetd_stage_journal_append_seconds"].count >= 1.0);
    assert!(scrape.histograms["fleetd_stage_journal_fsync_seconds"].count >= 1.0);
    assert_eq!(scrape.gauge("fleetd_step"), Some(STEPS as f64));
    assert_eq!(scrape.gauge("fleetd_engine_alive"), Some(1.0));
    assert_eq!(scrape.gauge("fleetd_journal_writable"), Some(1.0));
    assert_eq!(scrape.counter("fleetd_blocks_ingested_total"), Some(1.0));
    assert!(scrape.gauge("fleetd_journal_bytes").unwrap() > 0.0);
    assert_eq!(scrape.gauge("fleetd_recovered"), Some(0.0));

    // Over HTTP: /metrics parses identically and counters are monotone
    // across scrapes; /healthz is ready; bad paths are typed.
    let (status, body) = http_get(addr, "/metrics").unwrap();
    assert_eq!(status, 200);
    let first = obsv::telemetry::parse(&body).unwrap();
    client.submit(STEPS as u64, &rows(STEPS as u64, STEPS)).unwrap();
    let (status, body) = http_get(addr, "/metrics").unwrap();
    assert_eq!(status, 200);
    let second = obsv::telemetry::parse(&body).unwrap();
    for (name, value) in &first.counters {
        assert!(second.counters[name] >= *value, "{name} went backwards");
    }
    assert_eq!(second.counter("fleetd_blocks_ingested_total"), Some(2.0));

    let (status, body) = http_get(addr, "/healthz").unwrap();
    assert_eq!((status, body.as_str()), (200, "ok\n"));
    let (status, _) = http_get(addr, "/nope").unwrap();
    assert_eq!(status, 404);

    // Reply-write spans cover every request kind handled above.
    let text = client.telemetry().unwrap();
    let scrape = obsv::telemetry::parse(&text).unwrap();
    assert!(scrape.histograms["fleetd_stage_reply_write_seconds"].count >= 4.0);

    started.handle.stop();
    // After shutdown the listener is gone: readiness flips to a refused
    // connection (or an explicit 503 if a raced request slips through).
    match http_get(addr, "/healthz") {
        Err(_) => {}
        Ok((status, _)) => assert_eq!(status, 503),
    }
}

#[test]
fn recovered_daemon_resumes_bit_identically() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (dir, socket) = scratch("recover");

    // Uninterrupted reference across both halves of the workload.
    let mut reference = FleetRunner::new(&config(), 2).unwrap();
    reference.run_block(&rows(0, STEPS), false).unwrap();
    reference.run_block(&rows(STEPS as u64, STEPS), false).unwrap();
    let want = fleetstate::encode_fleet_state(&reference.export_state());

    // First daemon: ingest half, stop (the journal survives).
    let started = serve(&options(&dir, false), &socket, None).unwrap();
    let mut client = Client::connect_unix(&socket).unwrap();
    client.submit(0, &rows(0, STEPS)).unwrap();
    let ack = client.shutdown().unwrap();
    assert!(ack.contains("stopping"), "{ack}");
    started.handle.wait();

    // A fresh start on the same directory must refuse.
    let Err(err) = serve(&options(&dir, false), &socket, None) else {
        panic!("fresh start on a journaled directory must refuse");
    };
    assert!(err.contains("already holds a journal"), "{err}");

    // Second daemon: recover, check the step, ingest the second half.
    let mut opts = options(&dir, false);
    opts.recover = true;
    let restarted = serve(&opts, &socket, None).unwrap();
    let outcome = restarted.recovery.expect("recovery outcome");
    assert_eq!(outcome.resumed_step, STEPS as u64);

    let mut client = Client::connect_unix(&socket).unwrap();
    let (_, step, _) = client.hello("it-recover").unwrap();
    assert_eq!(step, STEPS as u64);
    client.submit(STEPS as u64, &rows(STEPS as u64, STEPS)).unwrap();
    let got = client.export_state().unwrap();
    assert_eq!(got, want, "recovered + resumed state diverged from uninterrupted run");
    restarted.handle.stop();
}
