//! Property tests for the daemon wire protocol: arbitrary bytes never
//! panic the decoder (every failure is a typed, offset-carrying
//! [`fleetd::proto::WireError`]), encode→decode round-trips are
//! lossless, and a frame torn at any byte boundary is rejected with the
//! right error.

use fleetd::proto::{
    self, decode_frame, decode_reply, decode_request, encode_reply, encode_request, Reply, Request,
    StatsInfo, WireError, HEADER_LEN, MAGIC, TRAILER_LEN,
};
use fleetstate::FleetConfig;
use proptest::prelude::*;
use skirental::batch::VertexKind;

fn bytes(max: usize) -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(0u16..256, 0..max).prop_map(|v| v.into_iter().map(|b| b as u8).collect())
}

/// Builds an arbitrary request from primitive inputs. `kind` selects
/// the variant (the vendored proptest has no `prop_oneof`).
fn request_of(
    kind: usize,
    name: String,
    first_step: u64,
    steps: usize,
    lanes: usize,
    cells: Vec<f64>,
) -> Request {
    match kind % 9 {
        0 => Request::Hello { name },
        1 => {
            let rows = (0..steps)
                .map(|t| (0..lanes).map(|l| cells[(t * lanes + l) % cells.len().max(1)]).collect())
                .collect();
            Request::Submit { first_step, rows }
        }
        2 => Request::Stats,
        3 => Request::ExportState,
        4 => Request::Subscribe,
        5 => Request::ReplayEvents,
        6 => Request::Snapshot,
        7 => Request::Telemetry,
        _ => Request::Shutdown,
    }
}

/// Builds an arbitrary reply from primitive inputs.
fn reply_of(kind: usize, text: String, a: u64, b: u64, cells: Vec<f64>, raw: Vec<u8>) -> Reply {
    match kind % 9 {
        0 => Reply::HelloAck {
            config: FleetConfig {
                lanes: (a % 10_000) as usize + 1,
                break_even: 28.0 + cells.first().copied().unwrap_or(0.0),
                window: if b % 2 == 0 { None } else { Some((b % 512) as usize) },
                min_history: (a % 64) as usize,
                seed: b,
                trace_stream_base: a % 1000,
            },
            step: b,
            client_id: a,
        },
        1 => {
            let lanes = (a % 5 + 1) as usize;
            let steps = (b % 4 + 1) as usize;
            let cells_n = lanes * steps;
            Reply::Decisions {
                first_step: a,
                steps: steps as u32,
                lanes: lanes as u32,
                thresholds: (0..cells_n).map(|i| cells[i % cells.len().max(1)]).collect(),
                vertices: (0..cells_n)
                    .map(|i| VertexKind::from_u8((i % 5) as u8).unwrap_or(VertexKind::ColdStart))
                    .collect(),
            }
        }
        2 => Reply::Busy { queued: (a % 1000) as u32, capacity: (b % 1000) as u32 },
        3 => Reply::Stats(StatsInfo {
            step: a,
            lanes: (b % 100_000) as u32,
            queue_depth: (a % 64) as u32,
            queue_capacity: (b % 64) as u32,
            connections: (a % 1024) as u32,
            subscribers: (b % 16) as u32,
            busy_rejections: a.rotate_left(7),
            blocks_ingested: b.rotate_left(3),
            journal_frames: a ^ b,
            online_total: cells.first().copied().unwrap_or(0.0),
            offline_total: cells.last().copied().unwrap_or(0.0),
        }),
        4 => Reply::State(raw),
        5 => Reply::Events { last: a % 2 == 0, jsonl: text },
        6 => Reply::Ack { info: text },
        7 => Reply::Telemetry { text },
        _ => Reply::Error { message: text },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary bytes never panic any decoder entry point — every
    /// failure is a typed `WireError`. A second pass grafts a valid
    /// magic + version prefix so deeper header/payload paths are hit,
    /// not just the magic check.
    #[test]
    fn arbitrary_bytes_never_panic(raw in bytes(160)) {
        let _ = decode_frame(&raw);
        let _ = decode_request(&raw);
        let _ = decode_reply(&raw);
        let _ = proto::decode_header(&raw);

        let mut grafted = MAGIC.to_vec();
        grafted.extend_from_slice(&1u16.to_le_bytes());
        grafted.extend_from_slice(&raw);
        let _ = decode_frame(&grafted);
        let _ = decode_request(&grafted);
        let _ = decode_reply(&grafted);
    }

    /// Requests survive encode→decode losslessly.
    #[test]
    fn request_roundtrip(
        (kind, first_step) in (0usize..9, 0u64..u64::MAX),
        name in "\\PC*",
        (steps, lanes) in (0usize..5, 0usize..6),
        cells in prop::collection::vec(-1.0e6f64..1.0e6, 1..30),
    ) {
        let request = request_of(kind, name, first_step, steps, lanes, cells);
        let decoded = decode_request(&encode_request(&request));
        prop_assert_eq!(decoded.as_ref(), Ok(&request));
    }

    /// Replies survive encode→decode losslessly — including the float
    /// payloads, which travel as raw bits, not text.
    #[test]
    fn reply_roundtrip(
        (kind, a, b) in (0usize..9, 0u64..u64::MAX, 0u64..u64::MAX),
        text in "\\PC*",
        cells in prop::collection::vec(-1.0e9f64..1.0e9, 1..20),
        raw in bytes(100),
    ) {
        let reply = reply_of(kind, text, a, b, cells, raw);
        let decoded = decode_reply(&encode_reply(&reply));
        prop_assert_eq!(decoded.as_ref(), Ok(&reply));
    }

    /// A frame truncated at ANY byte boundary is rejected with
    /// `Truncated` — never a panic, never a bogus success — and the
    /// error's `needed`/`available` fields are consistent.
    #[test]
    fn torn_frames_are_typed_truncations(
        (kind, first_step) in (0usize..9, 0u64..1_000_000),
        name in "\\PC*",
        (steps, lanes) in (0usize..4, 0usize..5),
        cells in prop::collection::vec(-100.0f64..100.0, 1..10),
    ) {
        let frame = encode_request(&request_of(kind, name, first_step, steps, lanes, cells));
        for cut in 0..frame.len() {
            match decode_request(&frame[..cut]) {
                Err(WireError::Truncated { needed, available, .. }) => {
                    prop_assert_eq!(available as usize, cut);
                    prop_assert!(needed as usize > cut);
                    prop_assert!(needed as usize <= frame.len());
                }
                other => return Err(TestCaseError::fail(format!(
                    "cut at {cut}/{} gave {other:?}, want Truncated", frame.len()
                ))),
            }
        }
        prop_assert!(decode_request(&frame).is_ok());
    }

    /// Flipping any single byte of a valid frame is caught: the CRC
    /// covers header and payload, so no corruption decodes silently.
    #[test]
    fn single_byte_corruption_is_always_caught(
        (kind, a, b) in (0usize..9, 0u64..1_000_000, 0u64..1_000_000),
        text in "\\PC*",
        cells in prop::collection::vec(-100.0f64..100.0, 1..10),
        raw in bytes(40),
        (pos_pick, flip) in (0u64..u64::MAX, 1u16..256),
    ) {
        let frame = encode_reply(&reply_of(kind, text, a, b, cells, raw));
        let pos = (pos_pick % frame.len() as u64) as usize;
        let mut bad = frame.clone();
        bad[pos] ^= flip as u8;
        prop_assert!(decode_reply(&bad).is_err(), "flip at {pos} decoded silently");
    }

    /// Appending trailing garbage after a valid frame does not break
    /// decoding of the frame itself when read through a stream: the
    /// reader consumes exactly one frame and leaves the rest.
    #[test]
    fn stream_reader_consumes_exactly_one_frame(
        (kind, first_step) in (0usize..9, 0u64..1_000_000),
        name in "\\PC*",
        trailing in bytes(50),
    ) {
        let request = request_of(kind, name, first_step, 1, 2, vec![1.0, 2.0]);
        let frame = encode_request(&request);
        let mut wire = frame.clone();
        wire.extend_from_slice(&trailing);
        let mut cursor = std::io::Cursor::new(wire);
        let got = proto::read_frame(&mut cursor)
            .map_err(|e| TestCaseError::fail(e.to_string()))?
            .ok_or_else(|| TestCaseError::fail("clean EOF on a full frame"))?;
        prop_assert_eq!(&got, &frame);
        prop_assert_eq!(cursor.position() as usize, frame.len());
        let reparsed = decode_request(&got);
        prop_assert_eq!(reparsed.as_ref(), Ok(&request));
    }
}

/// The header check rejects an oversized length before any allocation:
/// feeding a 12-byte header claiming a huge payload fails fast.
#[test]
fn oversized_header_is_rejected_without_reading_body() {
    let mut header = Vec::new();
    header.extend_from_slice(&MAGIC);
    header.extend_from_slice(&1u16.to_le_bytes());
    header.push(1);
    header.push(0);
    header.extend_from_slice(&u32::MAX.to_le_bytes());
    assert!(matches!(
        proto::decode_header(&header),
        Err(WireError::OversizedPayload { len: u32::MAX, .. })
    ));
    // And through the stream reader: InvalidData, not an allocation.
    let mut cursor = std::io::Cursor::new(header);
    let err = proto::read_frame(&mut cursor).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
}

/// Sanity: the sizes the tests rely on.
#[test]
fn frame_geometry() {
    let frame = encode_request(&Request::Stats);
    assert_eq!(frame.len(), HEADER_LEN + TRAILER_LEN);
}
