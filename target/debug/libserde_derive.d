/root/repo/target/debug/libserde_derive.so: /root/repo/compat/serde_derive/src/lib.rs
