/root/repo/target/debug/libserde.rlib: /root/repo/compat/serde/src/lib.rs
