/root/repo/target/debug/deps/fig4_vehicle_test-0c704ef64fb9f950.d: crates/bench/src/bin/fig4_vehicle_test.rs

/root/repo/target/debug/deps/fig4_vehicle_test-0c704ef64fb9f950: crates/bench/src/bin/fig4_vehicle_test.rs

crates/bench/src/bin/fig4_vehicle_test.rs:
