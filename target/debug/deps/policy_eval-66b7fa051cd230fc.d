/root/repo/target/debug/deps/policy_eval-66b7fa051cd230fc.d: crates/bench/benches/policy_eval.rs Cargo.toml

/root/repo/target/debug/deps/libpolicy_eval-66b7fa051cd230fc.rmeta: crates/bench/benches/policy_eval.rs Cargo.toml

crates/bench/benches/policy_eval.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
