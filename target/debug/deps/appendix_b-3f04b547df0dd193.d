/root/repo/target/debug/deps/appendix_b-3f04b547df0dd193.d: crates/bench/src/bin/appendix_b.rs

/root/repo/target/debug/deps/appendix_b-3f04b547df0dd193: crates/bench/src/bin/appendix_b.rs

crates/bench/src/bin/appendix_b.rs:
