/root/repo/target/debug/deps/fig3_distributions-9a6daa1f040581e8.d: crates/bench/src/bin/fig3_distributions.rs Cargo.toml

/root/repo/target/debug/deps/libfig3_distributions-9a6daa1f040581e8.rmeta: crates/bench/src/bin/fig3_distributions.rs Cargo.toml

crates/bench/src/bin/fig3_distributions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
