/root/repo/target/debug/deps/appc_breakeven-270e3a00106961e4.d: crates/bench/src/bin/appc_breakeven.rs Cargo.toml

/root/repo/target/debug/deps/libappc_breakeven-270e3a00106961e4.rmeta: crates/bench/src/bin/appc_breakeven.rs Cargo.toml

crates/bench/src/bin/appc_breakeven.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
