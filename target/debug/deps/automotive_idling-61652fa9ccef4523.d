/root/repo/target/debug/deps/automotive_idling-61652fa9ccef4523.d: src/lib.rs

/root/repo/target/debug/deps/libautomotive_idling-61652fa9ccef4523.rlib: src/lib.rs

/root/repo/target/debug/deps/libautomotive_idling-61652fa9ccef4523.rmeta: src/lib.rs

src/lib.rs:
