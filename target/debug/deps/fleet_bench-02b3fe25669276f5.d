/root/repo/target/debug/deps/fleet_bench-02b3fe25669276f5.d: crates/bench/benches/fleet_bench.rs Cargo.toml

/root/repo/target/debug/deps/libfleet_bench-02b3fe25669276f5.rmeta: crates/bench/benches/fleet_bench.rs Cargo.toml

crates/bench/benches/fleet_bench.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
