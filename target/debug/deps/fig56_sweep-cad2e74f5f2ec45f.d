/root/repo/target/debug/deps/fig56_sweep-cad2e74f5f2ec45f.d: crates/bench/src/bin/fig56_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libfig56_sweep-cad2e74f5f2ec45f.rmeta: crates/bench/src/bin/fig56_sweep.rs Cargo.toml

crates/bench/src/bin/fig56_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
