/root/repo/target/debug/deps/robustness-f87bac75bb3d2685.d: tests/robustness.rs Cargo.toml

/root/repo/target/debug/deps/librobustness-f87bac75bb3d2685.rmeta: tests/robustness.rs Cargo.toml

tests/robustness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
