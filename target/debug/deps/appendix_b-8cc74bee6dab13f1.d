/root/repo/target/debug/deps/appendix_b-8cc74bee6dab13f1.d: crates/bench/src/bin/appendix_b.rs Cargo.toml

/root/repo/target/debug/deps/libappendix_b-8cc74bee6dab13f1.rmeta: crates/bench/src/bin/appendix_b.rs Cargo.toml

crates/bench/src/bin/appendix_b.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
