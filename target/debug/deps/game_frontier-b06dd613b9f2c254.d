/root/repo/target/debug/deps/game_frontier-b06dd613b9f2c254.d: crates/bench/src/bin/game_frontier.rs

/root/repo/target/debug/deps/game_frontier-b06dd613b9f2c254: crates/bench/src/bin/game_frontier.rs

crates/bench/src/bin/game_frontier.rs:
