/root/repo/target/debug/deps/ablation_lp-6b630a97e434501e.d: crates/bench/benches/ablation_lp.rs Cargo.toml

/root/repo/target/debug/deps/libablation_lp-6b630a97e434501e.rmeta: crates/bench/benches/ablation_lp.rs Cargo.toml

crates/bench/benches/ablation_lp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
