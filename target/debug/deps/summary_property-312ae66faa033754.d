/root/repo/target/debug/deps/summary_property-312ae66faa033754.d: tests/summary_property.rs Cargo.toml

/root/repo/target/debug/deps/libsummary_property-312ae66faa033754.rmeta: tests/summary_property.rs Cargo.toml

tests/summary_property.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
