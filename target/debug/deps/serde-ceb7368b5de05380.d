/root/repo/target/debug/deps/serde-ceb7368b5de05380.d: compat/serde/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde-ceb7368b5de05380.rmeta: compat/serde/src/lib.rs Cargo.toml

compat/serde/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
