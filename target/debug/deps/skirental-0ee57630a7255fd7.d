/root/repo/target/debug/deps/skirental-0ee57630a7255fd7.d: crates/skirental/src/lib.rs crates/skirental/src/adversary.rs crates/skirental/src/analysis.rs crates/skirental/src/bayes.rs crates/skirental/src/constrained.rs crates/skirental/src/cost.rs crates/skirental/src/degraded.rs crates/skirental/src/estimator.rs crates/skirental/src/fleet_eval.rs crates/skirental/src/multislope.rs crates/skirental/src/parallel.rs crates/skirental/src/policy.rs crates/skirental/src/risk.rs crates/skirental/src/summary.rs crates/skirental/src/theory.rs Cargo.toml

/root/repo/target/debug/deps/libskirental-0ee57630a7255fd7.rmeta: crates/skirental/src/lib.rs crates/skirental/src/adversary.rs crates/skirental/src/analysis.rs crates/skirental/src/bayes.rs crates/skirental/src/constrained.rs crates/skirental/src/cost.rs crates/skirental/src/degraded.rs crates/skirental/src/estimator.rs crates/skirental/src/fleet_eval.rs crates/skirental/src/multislope.rs crates/skirental/src/parallel.rs crates/skirental/src/policy.rs crates/skirental/src/risk.rs crates/skirental/src/summary.rs crates/skirental/src/theory.rs Cargo.toml

crates/skirental/src/lib.rs:
crates/skirental/src/adversary.rs:
crates/skirental/src/analysis.rs:
crates/skirental/src/bayes.rs:
crates/skirental/src/constrained.rs:
crates/skirental/src/cost.rs:
crates/skirental/src/degraded.rs:
crates/skirental/src/estimator.rs:
crates/skirental/src/fleet_eval.rs:
crates/skirental/src/multislope.rs:
crates/skirental/src/parallel.rs:
crates/skirental/src/policy.rs:
crates/skirental/src/risk.rs:
crates/skirental/src/summary.rs:
crates/skirental/src/theory.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
