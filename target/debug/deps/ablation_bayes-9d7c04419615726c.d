/root/repo/target/debug/deps/ablation_bayes-9d7c04419615726c.d: crates/bench/src/bin/ablation_bayes.rs Cargo.toml

/root/repo/target/debug/deps/libablation_bayes-9d7c04419615726c.rmeta: crates/bench/src/bin/ablation_bayes.rs Cargo.toml

crates/bench/src/bin/ablation_bayes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
