/root/repo/target/debug/deps/fig1_regions-7ad7b9f69c2bc5a6.d: crates/bench/src/bin/fig1_regions.rs Cargo.toml

/root/repo/target/debug/deps/libfig1_regions-7ad7b9f69c2bc5a6.rmeta: crates/bench/src/bin/fig1_regions.rs Cargo.toml

crates/bench/src/bin/fig1_regions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
