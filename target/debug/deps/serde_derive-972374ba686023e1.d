/root/repo/target/debug/deps/serde_derive-972374ba686023e1.d: compat/serde_derive/src/lib.rs

/root/repo/target/debug/deps/libserde_derive-972374ba686023e1.so: compat/serde_derive/src/lib.rs

compat/serde_derive/src/lib.rs:
