/root/repo/target/debug/deps/paper_claims-dbe41dffc5a24fe6.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-dbe41dffc5a24fe6: tests/paper_claims.rs

tests/paper_claims.rs:
