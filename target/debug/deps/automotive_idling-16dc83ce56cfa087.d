/root/repo/target/debug/deps/automotive_idling-16dc83ce56cfa087.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libautomotive_idling-16dc83ce56cfa087.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
