/root/repo/target/debug/deps/serde-c1cbbaa9dc367d9d.d: compat/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-c1cbbaa9dc367d9d.rlib: compat/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-c1cbbaa9dc367d9d.rmeta: compat/serde/src/lib.rs

compat/serde/src/lib.rs:
