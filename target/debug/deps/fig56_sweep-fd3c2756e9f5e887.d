/root/repo/target/debug/deps/fig56_sweep-fd3c2756e9f5e887.d: crates/bench/src/bin/fig56_sweep.rs

/root/repo/target/debug/deps/fig56_sweep-fd3c2756e9f5e887: crates/bench/src/bin/fig56_sweep.rs

crates/bench/src/bin/fig56_sweep.rs:
