/root/repo/target/debug/deps/appc_breakeven-db246d8f5e550355.d: crates/bench/src/bin/appc_breakeven.rs

/root/repo/target/debug/deps/appc_breakeven-db246d8f5e550355: crates/bench/src/bin/appc_breakeven.rs

crates/bench/src/bin/appc_breakeven.rs:
