/root/repo/target/debug/deps/end_to_end-f02c4b520d3e3473.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-f02c4b520d3e3473: tests/end_to_end.rs

tests/end_to_end.rs:
