/root/repo/target/debug/deps/game_frontier-faf500e4cf572e04.d: crates/bench/src/bin/game_frontier.rs Cargo.toml

/root/repo/target/debug/deps/libgame_frontier-faf500e4cf572e04.rmeta: crates/bench/src/bin/game_frontier.rs Cargo.toml

crates/bench/src/bin/game_frontier.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
