/root/repo/target/debug/deps/ablation_estimator-85c53a86bb9e6f0c.d: crates/bench/src/bin/ablation_estimator.rs

/root/repo/target/debug/deps/ablation_estimator-85c53a86bb9e6f0c: crates/bench/src/bin/ablation_estimator.rs

crates/bench/src/bin/ablation_estimator.rs:
