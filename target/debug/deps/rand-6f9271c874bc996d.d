/root/repo/target/debug/deps/rand-6f9271c874bc996d.d: compat/rand/src/lib.rs

/root/repo/target/debug/deps/librand-6f9271c874bc996d.rlib: compat/rand/src/lib.rs

/root/repo/target/debug/deps/librand-6f9271c874bc996d.rmeta: compat/rand/src/lib.rs

compat/rand/src/lib.rs:
