/root/repo/target/debug/deps/workload_report-5deb703eb66b7e78.d: crates/bench/src/bin/workload_report.rs

/root/repo/target/debug/deps/workload_report-5deb703eb66b7e78: crates/bench/src/bin/workload_report.rs

crates/bench/src/bin/workload_report.rs:
