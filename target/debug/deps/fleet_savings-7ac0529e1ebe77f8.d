/root/repo/target/debug/deps/fleet_savings-7ac0529e1ebe77f8.d: crates/bench/src/bin/fleet_savings.rs Cargo.toml

/root/repo/target/debug/deps/libfleet_savings-7ac0529e1ebe77f8.rmeta: crates/bench/src/bin/fleet_savings.rs Cargo.toml

crates/bench/src/bin/fleet_savings.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
