/root/repo/target/debug/deps/fleet_savings-ad69ad76eaff4ba5.d: crates/bench/src/bin/fleet_savings.rs

/root/repo/target/debug/deps/fleet_savings-ad69ad76eaff4ba5: crates/bench/src/bin/fleet_savings.rs

crates/bench/src/bin/fleet_savings.rs:
