/root/repo/target/debug/deps/fleet_savings-527892b82e26ee34.d: crates/bench/src/bin/fleet_savings.rs

/root/repo/target/debug/deps/fleet_savings-527892b82e26ee34: crates/bench/src/bin/fleet_savings.rs

crates/bench/src/bin/fleet_savings.rs:
