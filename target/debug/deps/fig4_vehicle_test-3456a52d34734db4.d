/root/repo/target/debug/deps/fig4_vehicle_test-3456a52d34734db4.d: crates/bench/src/bin/fig4_vehicle_test.rs Cargo.toml

/root/repo/target/debug/deps/libfig4_vehicle_test-3456a52d34734db4.rmeta: crates/bench/src/bin/fig4_vehicle_test.rs Cargo.toml

crates/bench/src/bin/fig4_vehicle_test.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
