/root/repo/target/debug/deps/powertrain-070d626b43c3b7d0.d: crates/powertrain/src/lib.rs crates/powertrain/src/battery.rs crates/powertrain/src/breakeven.rs crates/powertrain/src/controller.rs crates/powertrain/src/emissions.rs crates/powertrain/src/engine.rs crates/powertrain/src/fuel.rs crates/powertrain/src/restart.rs crates/powertrain/src/savings.rs

/root/repo/target/debug/deps/powertrain-070d626b43c3b7d0: crates/powertrain/src/lib.rs crates/powertrain/src/battery.rs crates/powertrain/src/breakeven.rs crates/powertrain/src/controller.rs crates/powertrain/src/emissions.rs crates/powertrain/src/engine.rs crates/powertrain/src/fuel.rs crates/powertrain/src/restart.rs crates/powertrain/src/savings.rs

crates/powertrain/src/lib.rs:
crates/powertrain/src/battery.rs:
crates/powertrain/src/breakeven.rs:
crates/powertrain/src/controller.rs:
crates/powertrain/src/emissions.rs:
crates/powertrain/src/engine.rs:
crates/powertrain/src/fuel.rs:
crates/powertrain/src/restart.rs:
crates/powertrain/src/savings.rs:
