/root/repo/target/debug/deps/fig1_regions-09f431b6df272c39.d: crates/bench/src/bin/fig1_regions.rs

/root/repo/target/debug/deps/fig1_regions-09f431b6df272c39: crates/bench/src/bin/fig1_regions.rs

crates/bench/src/bin/fig1_regions.rs:
