/root/repo/target/debug/deps/ablation_bayes-039c9562a411c8b0.d: crates/bench/src/bin/ablation_bayes.rs

/root/repo/target/debug/deps/ablation_bayes-039c9562a411c8b0: crates/bench/src/bin/ablation_bayes.rs

crates/bench/src/bin/ablation_bayes.rs:
