/root/repo/target/debug/deps/cli-bb0ad7d69f33b374.d: tests/cli.rs

/root/repo/target/debug/deps/cli-bb0ad7d69f33b374: tests/cli.rs

tests/cli.rs:

# env-dep:CARGO_BIN_EXE_idlectl=/root/repo/target/debug/idlectl
