/root/repo/target/debug/deps/ablation_estimator-64abbd85ec053af8.d: crates/bench/src/bin/ablation_estimator.rs Cargo.toml

/root/repo/target/debug/deps/libablation_estimator-64abbd85ec053af8.rmeta: crates/bench/src/bin/ablation_estimator.rs Cargo.toml

crates/bench/src/bin/ablation_estimator.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
