/root/repo/target/debug/deps/idling_bench-0a6b6a1cd396c557.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libidling_bench-0a6b6a1cd396c557.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
