/root/repo/target/debug/deps/extensions-7ec05243d0c6fcb1.d: tests/extensions.rs

/root/repo/target/debug/deps/extensions-7ec05243d0c6fcb1: tests/extensions.rs

tests/extensions.rs:
