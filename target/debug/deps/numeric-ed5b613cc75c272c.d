/root/repo/target/debug/deps/numeric-ed5b613cc75c272c.d: crates/numeric/src/lib.rs crates/numeric/src/histogram.rs crates/numeric/src/quadrature.rs crates/numeric/src/rootfind.rs crates/numeric/src/simplex.rs crates/numeric/src/special.rs crates/numeric/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libnumeric-ed5b613cc75c272c.rmeta: crates/numeric/src/lib.rs crates/numeric/src/histogram.rs crates/numeric/src/quadrature.rs crates/numeric/src/rootfind.rs crates/numeric/src/simplex.rs crates/numeric/src/special.rs crates/numeric/src/stats.rs Cargo.toml

crates/numeric/src/lib.rs:
crates/numeric/src/histogram.rs:
crates/numeric/src/quadrature.rs:
crates/numeric/src/rootfind.rs:
crates/numeric/src/simplex.rs:
crates/numeric/src/special.rs:
crates/numeric/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
