/root/repo/target/debug/deps/serde_derive-8207fa16471cc19c.d: compat/serde_derive/src/lib.rs

/root/repo/target/debug/deps/serde_derive-8207fa16471cc19c: compat/serde_derive/src/lib.rs

compat/serde_derive/src/lib.rs:
