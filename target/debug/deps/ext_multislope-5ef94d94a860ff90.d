/root/repo/target/debug/deps/ext_multislope-5ef94d94a860ff90.d: crates/bench/src/bin/ext_multislope.rs

/root/repo/target/debug/deps/ext_multislope-5ef94d94a860ff90: crates/bench/src/bin/ext_multislope.rs

crates/bench/src/bin/ext_multislope.rs:
