/root/repo/target/debug/deps/fig2_projections-f29a5dede8d206df.d: crates/bench/src/bin/fig2_projections.rs

/root/repo/target/debug/deps/fig2_projections-f29a5dede8d206df: crates/bench/src/bin/fig2_projections.rs

crates/bench/src/bin/fig2_projections.rs:
