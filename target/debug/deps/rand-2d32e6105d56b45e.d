/root/repo/target/debug/deps/rand-2d32e6105d56b45e.d: compat/rand/src/lib.rs

/root/repo/target/debug/deps/rand-2d32e6105d56b45e: compat/rand/src/lib.rs

compat/rand/src/lib.rs:
