/root/repo/target/debug/deps/skirental-c898c9a304b9bd0a.d: crates/skirental/src/lib.rs crates/skirental/src/adversary.rs crates/skirental/src/analysis.rs crates/skirental/src/bayes.rs crates/skirental/src/constrained.rs crates/skirental/src/cost.rs crates/skirental/src/degraded.rs crates/skirental/src/estimator.rs crates/skirental/src/fleet_eval.rs crates/skirental/src/multislope.rs crates/skirental/src/parallel.rs crates/skirental/src/policy.rs crates/skirental/src/risk.rs crates/skirental/src/summary.rs crates/skirental/src/theory.rs Cargo.toml

/root/repo/target/debug/deps/libskirental-c898c9a304b9bd0a.rmeta: crates/skirental/src/lib.rs crates/skirental/src/adversary.rs crates/skirental/src/analysis.rs crates/skirental/src/bayes.rs crates/skirental/src/constrained.rs crates/skirental/src/cost.rs crates/skirental/src/degraded.rs crates/skirental/src/estimator.rs crates/skirental/src/fleet_eval.rs crates/skirental/src/multislope.rs crates/skirental/src/parallel.rs crates/skirental/src/policy.rs crates/skirental/src/risk.rs crates/skirental/src/summary.rs crates/skirental/src/theory.rs Cargo.toml

crates/skirental/src/lib.rs:
crates/skirental/src/adversary.rs:
crates/skirental/src/analysis.rs:
crates/skirental/src/bayes.rs:
crates/skirental/src/constrained.rs:
crates/skirental/src/cost.rs:
crates/skirental/src/degraded.rs:
crates/skirental/src/estimator.rs:
crates/skirental/src/fleet_eval.rs:
crates/skirental/src/multislope.rs:
crates/skirental/src/parallel.rs:
crates/skirental/src/policy.rs:
crates/skirental/src/risk.rs:
crates/skirental/src/summary.rs:
crates/skirental/src/theory.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
