/root/repo/target/debug/deps/proptest-03dd039d1900ff17.d: compat/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-03dd039d1900ff17.rlib: compat/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-03dd039d1900ff17.rmeta: compat/proptest/src/lib.rs

compat/proptest/src/lib.rs:
