/root/repo/target/debug/deps/drivesim-e54f5bdd45ad66b1.d: crates/drivesim/src/lib.rs crates/drivesim/src/area.rs crates/drivesim/src/diurnal.rs crates/drivesim/src/faults.rs crates/drivesim/src/fleet.rs crates/drivesim/src/persist.rs crates/drivesim/src/random.rs crates/drivesim/src/sanitize.rs crates/drivesim/src/scenario.rs crates/drivesim/src/trace.rs crates/drivesim/src/trip.rs Cargo.toml

/root/repo/target/debug/deps/libdrivesim-e54f5bdd45ad66b1.rmeta: crates/drivesim/src/lib.rs crates/drivesim/src/area.rs crates/drivesim/src/diurnal.rs crates/drivesim/src/faults.rs crates/drivesim/src/fleet.rs crates/drivesim/src/persist.rs crates/drivesim/src/random.rs crates/drivesim/src/sanitize.rs crates/drivesim/src/scenario.rs crates/drivesim/src/trace.rs crates/drivesim/src/trip.rs Cargo.toml

crates/drivesim/src/lib.rs:
crates/drivesim/src/area.rs:
crates/drivesim/src/diurnal.rs:
crates/drivesim/src/faults.rs:
crates/drivesim/src/fleet.rs:
crates/drivesim/src/persist.rs:
crates/drivesim/src/random.rs:
crates/drivesim/src/sanitize.rs:
crates/drivesim/src/scenario.rs:
crates/drivesim/src/trace.rs:
crates/drivesim/src/trip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
