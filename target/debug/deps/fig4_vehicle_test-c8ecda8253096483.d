/root/repo/target/debug/deps/fig4_vehicle_test-c8ecda8253096483.d: crates/bench/src/bin/fig4_vehicle_test.rs Cargo.toml

/root/repo/target/debug/deps/libfig4_vehicle_test-c8ecda8253096483.rmeta: crates/bench/src/bin/fig4_vehicle_test.rs Cargo.toml

crates/bench/src/bin/fig4_vehicle_test.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
