/root/repo/target/debug/deps/ablation_estimator-bf4e4adfa44cd7ba.d: crates/bench/src/bin/ablation_estimator.rs

/root/repo/target/debug/deps/ablation_estimator-bf4e4adfa44cd7ba: crates/bench/src/bin/ablation_estimator.rs

crates/bench/src/bin/ablation_estimator.rs:
