/root/repo/target/debug/deps/automotive_idling-27f2a0950563b990.d: src/lib.rs

/root/repo/target/debug/deps/automotive_idling-27f2a0950563b990: src/lib.rs

src/lib.rs:
