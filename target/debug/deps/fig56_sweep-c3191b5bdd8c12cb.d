/root/repo/target/debug/deps/fig56_sweep-c3191b5bdd8c12cb.d: crates/bench/src/bin/fig56_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libfig56_sweep-c3191b5bdd8c12cb.rmeta: crates/bench/src/bin/fig56_sweep.rs Cargo.toml

crates/bench/src/bin/fig56_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
