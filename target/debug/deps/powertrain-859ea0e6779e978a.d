/root/repo/target/debug/deps/powertrain-859ea0e6779e978a.d: crates/powertrain/src/lib.rs crates/powertrain/src/battery.rs crates/powertrain/src/breakeven.rs crates/powertrain/src/controller.rs crates/powertrain/src/emissions.rs crates/powertrain/src/engine.rs crates/powertrain/src/fuel.rs crates/powertrain/src/restart.rs crates/powertrain/src/savings.rs Cargo.toml

/root/repo/target/debug/deps/libpowertrain-859ea0e6779e978a.rmeta: crates/powertrain/src/lib.rs crates/powertrain/src/battery.rs crates/powertrain/src/breakeven.rs crates/powertrain/src/controller.rs crates/powertrain/src/emissions.rs crates/powertrain/src/engine.rs crates/powertrain/src/fuel.rs crates/powertrain/src/restart.rs crates/powertrain/src/savings.rs Cargo.toml

crates/powertrain/src/lib.rs:
crates/powertrain/src/battery.rs:
crates/powertrain/src/breakeven.rs:
crates/powertrain/src/controller.rs:
crates/powertrain/src/emissions.rs:
crates/powertrain/src/engine.rs:
crates/powertrain/src/fuel.rs:
crates/powertrain/src/restart.rs:
crates/powertrain/src/savings.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
