/root/repo/target/debug/deps/fig3_distributions-9b42c9897860d523.d: crates/bench/src/bin/fig3_distributions.rs

/root/repo/target/debug/deps/fig3_distributions-9b42c9897860d523: crates/bench/src/bin/fig3_distributions.rs

crates/bench/src/bin/fig3_distributions.rs:
