/root/repo/target/debug/deps/serde_derive-ac0cc4eca851db9f.d: compat/serde_derive/src/lib.rs

/root/repo/target/debug/deps/libserde_derive-ac0cc4eca851db9f.so: compat/serde_derive/src/lib.rs

compat/serde_derive/src/lib.rs:
