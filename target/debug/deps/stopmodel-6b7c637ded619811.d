/root/repo/target/debug/deps/stopmodel-6b7c637ded619811.d: crates/stopmodel/src/lib.rs crates/stopmodel/src/dist/mod.rs crates/stopmodel/src/dist/gamma.rs crates/stopmodel/src/dist/transform.rs crates/stopmodel/src/fit.rs crates/stopmodel/src/kstest.rs crates/stopmodel/src/moments.rs crates/stopmodel/src/sampling.rs Cargo.toml

/root/repo/target/debug/deps/libstopmodel-6b7c637ded619811.rmeta: crates/stopmodel/src/lib.rs crates/stopmodel/src/dist/mod.rs crates/stopmodel/src/dist/gamma.rs crates/stopmodel/src/dist/transform.rs crates/stopmodel/src/fit.rs crates/stopmodel/src/kstest.rs crates/stopmodel/src/moments.rs crates/stopmodel/src/sampling.rs Cargo.toml

crates/stopmodel/src/lib.rs:
crates/stopmodel/src/dist/mod.rs:
crates/stopmodel/src/dist/gamma.rs:
crates/stopmodel/src/dist/transform.rs:
crates/stopmodel/src/fit.rs:
crates/stopmodel/src/kstest.rs:
crates/stopmodel/src/moments.rs:
crates/stopmodel/src/sampling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
