/root/repo/target/debug/deps/drivesim-22aa319faf4abbb4.d: crates/drivesim/src/lib.rs crates/drivesim/src/area.rs crates/drivesim/src/diurnal.rs crates/drivesim/src/faults.rs crates/drivesim/src/fleet.rs crates/drivesim/src/persist.rs crates/drivesim/src/random.rs crates/drivesim/src/sanitize.rs crates/drivesim/src/scenario.rs crates/drivesim/src/trace.rs crates/drivesim/src/trip.rs

/root/repo/target/debug/deps/drivesim-22aa319faf4abbb4: crates/drivesim/src/lib.rs crates/drivesim/src/area.rs crates/drivesim/src/diurnal.rs crates/drivesim/src/faults.rs crates/drivesim/src/fleet.rs crates/drivesim/src/persist.rs crates/drivesim/src/random.rs crates/drivesim/src/sanitize.rs crates/drivesim/src/scenario.rs crates/drivesim/src/trace.rs crates/drivesim/src/trip.rs

crates/drivesim/src/lib.rs:
crates/drivesim/src/area.rs:
crates/drivesim/src/diurnal.rs:
crates/drivesim/src/faults.rs:
crates/drivesim/src/fleet.rs:
crates/drivesim/src/persist.rs:
crates/drivesim/src/random.rs:
crates/drivesim/src/sanitize.rs:
crates/drivesim/src/scenario.rs:
crates/drivesim/src/trace.rs:
crates/drivesim/src/trip.rs:
