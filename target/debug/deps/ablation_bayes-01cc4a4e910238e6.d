/root/repo/target/debug/deps/ablation_bayes-01cc4a4e910238e6.d: crates/bench/src/bin/ablation_bayes.rs

/root/repo/target/debug/deps/ablation_bayes-01cc4a4e910238e6: crates/bench/src/bin/ablation_bayes.rs

crates/bench/src/bin/ablation_bayes.rs:
