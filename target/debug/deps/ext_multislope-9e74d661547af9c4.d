/root/repo/target/debug/deps/ext_multislope-9e74d661547af9c4.d: crates/bench/src/bin/ext_multislope.rs

/root/repo/target/debug/deps/ext_multislope-9e74d661547af9c4: crates/bench/src/bin/ext_multislope.rs

crates/bench/src/bin/ext_multislope.rs:
