/root/repo/target/debug/deps/stopmodel-83f7f319bee71bba.d: crates/stopmodel/src/lib.rs crates/stopmodel/src/dist/mod.rs crates/stopmodel/src/dist/gamma.rs crates/stopmodel/src/dist/transform.rs crates/stopmodel/src/fit.rs crates/stopmodel/src/kstest.rs crates/stopmodel/src/moments.rs crates/stopmodel/src/sampling.rs

/root/repo/target/debug/deps/stopmodel-83f7f319bee71bba: crates/stopmodel/src/lib.rs crates/stopmodel/src/dist/mod.rs crates/stopmodel/src/dist/gamma.rs crates/stopmodel/src/dist/transform.rs crates/stopmodel/src/fit.rs crates/stopmodel/src/kstest.rs crates/stopmodel/src/moments.rs crates/stopmodel/src/sampling.rs

crates/stopmodel/src/lib.rs:
crates/stopmodel/src/dist/mod.rs:
crates/stopmodel/src/dist/gamma.rs:
crates/stopmodel/src/dist/transform.rs:
crates/stopmodel/src/fit.rs:
crates/stopmodel/src/kstest.rs:
crates/stopmodel/src/moments.rs:
crates/stopmodel/src/sampling.rs:
