/root/repo/target/debug/deps/fig3_distributions-912a81cdcce327aa.d: crates/bench/src/bin/fig3_distributions.rs

/root/repo/target/debug/deps/fig3_distributions-912a81cdcce327aa: crates/bench/src/bin/fig3_distributions.rs

crates/bench/src/bin/fig3_distributions.rs:
