/root/repo/target/debug/deps/stopmodel-e3df53c5624b7f62.d: crates/stopmodel/src/lib.rs crates/stopmodel/src/dist/mod.rs crates/stopmodel/src/dist/gamma.rs crates/stopmodel/src/dist/transform.rs crates/stopmodel/src/fit.rs crates/stopmodel/src/kstest.rs crates/stopmodel/src/moments.rs crates/stopmodel/src/sampling.rs

/root/repo/target/debug/deps/libstopmodel-e3df53c5624b7f62.rlib: crates/stopmodel/src/lib.rs crates/stopmodel/src/dist/mod.rs crates/stopmodel/src/dist/gamma.rs crates/stopmodel/src/dist/transform.rs crates/stopmodel/src/fit.rs crates/stopmodel/src/kstest.rs crates/stopmodel/src/moments.rs crates/stopmodel/src/sampling.rs

/root/repo/target/debug/deps/libstopmodel-e3df53c5624b7f62.rmeta: crates/stopmodel/src/lib.rs crates/stopmodel/src/dist/mod.rs crates/stopmodel/src/dist/gamma.rs crates/stopmodel/src/dist/transform.rs crates/stopmodel/src/fit.rs crates/stopmodel/src/kstest.rs crates/stopmodel/src/moments.rs crates/stopmodel/src/sampling.rs

crates/stopmodel/src/lib.rs:
crates/stopmodel/src/dist/mod.rs:
crates/stopmodel/src/dist/gamma.rs:
crates/stopmodel/src/dist/transform.rs:
crates/stopmodel/src/fit.rs:
crates/stopmodel/src/kstest.rs:
crates/stopmodel/src/moments.rs:
crates/stopmodel/src/sampling.rs:
