/root/repo/target/debug/deps/ext_multislope-8a3c0428dfa90163.d: crates/bench/src/bin/ext_multislope.rs Cargo.toml

/root/repo/target/debug/deps/libext_multislope-8a3c0428dfa90163.rmeta: crates/bench/src/bin/ext_multislope.rs Cargo.toml

crates/bench/src/bin/ext_multislope.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
