/root/repo/target/debug/deps/criterion-b70ec7c2a3a2a6b0.d: compat/criterion/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-b70ec7c2a3a2a6b0.rmeta: compat/criterion/src/lib.rs Cargo.toml

compat/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
