/root/repo/target/debug/deps/fig3_distributions-482f7df2fe86405a.d: crates/bench/src/bin/fig3_distributions.rs Cargo.toml

/root/repo/target/debug/deps/libfig3_distributions-482f7df2fe86405a.rmeta: crates/bench/src/bin/fig3_distributions.rs Cargo.toml

crates/bench/src/bin/fig3_distributions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
