/root/repo/target/debug/deps/table1_stops-399dcf73730e0d42.d: crates/bench/src/bin/table1_stops.rs

/root/repo/target/debug/deps/table1_stops-399dcf73730e0d42: crates/bench/src/bin/table1_stops.rs

crates/bench/src/bin/table1_stops.rs:
