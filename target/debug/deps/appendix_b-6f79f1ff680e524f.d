/root/repo/target/debug/deps/appendix_b-6f79f1ff680e524f.d: crates/bench/src/bin/appendix_b.rs

/root/repo/target/debug/deps/appendix_b-6f79f1ff680e524f: crates/bench/src/bin/appendix_b.rs

crates/bench/src/bin/appendix_b.rs:
