/root/repo/target/debug/deps/table1_stops-59cc69dd2bf64196.d: crates/bench/src/bin/table1_stops.rs

/root/repo/target/debug/deps/table1_stops-59cc69dd2bf64196: crates/bench/src/bin/table1_stops.rs

crates/bench/src/bin/table1_stops.rs:
