/root/repo/target/debug/deps/idlectl-c031f6cac15c71bb.d: src/bin/idlectl/main.rs src/bin/idlectl/args.rs src/bin/idlectl/commands.rs Cargo.toml

/root/repo/target/debug/deps/libidlectl-c031f6cac15c71bb.rmeta: src/bin/idlectl/main.rs src/bin/idlectl/args.rs src/bin/idlectl/commands.rs Cargo.toml

src/bin/idlectl/main.rs:
src/bin/idlectl/args.rs:
src/bin/idlectl/commands.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
