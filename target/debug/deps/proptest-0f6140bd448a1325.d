/root/repo/target/debug/deps/proptest-0f6140bd448a1325.d: compat/proptest/src/lib.rs

/root/repo/target/debug/deps/proptest-0f6140bd448a1325: compat/proptest/src/lib.rs

compat/proptest/src/lib.rs:
