/root/repo/target/debug/deps/property-cb5de45d75f2c7f3.d: tests/property.rs

/root/repo/target/debug/deps/property-cb5de45d75f2c7f3: tests/property.rs

tests/property.rs:
