/root/repo/target/debug/deps/workload_report-55fb7b2b991d3929.d: crates/bench/src/bin/workload_report.rs

/root/repo/target/debug/deps/workload_report-55fb7b2b991d3929: crates/bench/src/bin/workload_report.rs

crates/bench/src/bin/workload_report.rs:
