/root/repo/target/debug/deps/fault_sweep-895db3b690d76536.d: crates/bench/src/bin/fault_sweep.rs

/root/repo/target/debug/deps/fault_sweep-895db3b690d76536: crates/bench/src/bin/fault_sweep.rs

crates/bench/src/bin/fault_sweep.rs:
