/root/repo/target/debug/deps/game_frontier-adbe3f89893833e5.d: crates/bench/src/bin/game_frontier.rs

/root/repo/target/debug/deps/game_frontier-adbe3f89893833e5: crates/bench/src/bin/game_frontier.rs

crates/bench/src/bin/game_frontier.rs:
