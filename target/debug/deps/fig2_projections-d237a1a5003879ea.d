/root/repo/target/debug/deps/fig2_projections-d237a1a5003879ea.d: crates/bench/src/bin/fig2_projections.rs Cargo.toml

/root/repo/target/debug/deps/libfig2_projections-d237a1a5003879ea.rmeta: crates/bench/src/bin/fig2_projections.rs Cargo.toml

crates/bench/src/bin/fig2_projections.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
