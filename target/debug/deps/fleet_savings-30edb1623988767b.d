/root/repo/target/debug/deps/fleet_savings-30edb1623988767b.d: crates/bench/src/bin/fleet_savings.rs Cargo.toml

/root/repo/target/debug/deps/libfleet_savings-30edb1623988767b.rmeta: crates/bench/src/bin/fleet_savings.rs Cargo.toml

crates/bench/src/bin/fleet_savings.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
