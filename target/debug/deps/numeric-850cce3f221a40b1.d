/root/repo/target/debug/deps/numeric-850cce3f221a40b1.d: crates/numeric/src/lib.rs crates/numeric/src/histogram.rs crates/numeric/src/quadrature.rs crates/numeric/src/rootfind.rs crates/numeric/src/simplex.rs crates/numeric/src/special.rs crates/numeric/src/stats.rs

/root/repo/target/debug/deps/numeric-850cce3f221a40b1: crates/numeric/src/lib.rs crates/numeric/src/histogram.rs crates/numeric/src/quadrature.rs crates/numeric/src/rootfind.rs crates/numeric/src/simplex.rs crates/numeric/src/special.rs crates/numeric/src/stats.rs

crates/numeric/src/lib.rs:
crates/numeric/src/histogram.rs:
crates/numeric/src/quadrature.rs:
crates/numeric/src/rootfind.rs:
crates/numeric/src/simplex.rs:
crates/numeric/src/special.rs:
crates/numeric/src/stats.rs:
