/root/repo/target/debug/deps/idling_bench-a34572f81dfa66c3.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/idling_bench-a34572f81dfa66c3: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
