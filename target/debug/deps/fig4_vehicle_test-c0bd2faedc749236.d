/root/repo/target/debug/deps/fig4_vehicle_test-c0bd2faedc749236.d: crates/bench/src/bin/fig4_vehicle_test.rs

/root/repo/target/debug/deps/fig4_vehicle_test-c0bd2faedc749236: crates/bench/src/bin/fig4_vehicle_test.rs

crates/bench/src/bin/fig4_vehicle_test.rs:
