/root/repo/target/debug/deps/table1_stops-d9ac8078b9d98a85.d: crates/bench/src/bin/table1_stops.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_stops-d9ac8078b9d98a85.rmeta: crates/bench/src/bin/table1_stops.rs Cargo.toml

crates/bench/src/bin/table1_stops.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
