/root/repo/target/debug/deps/ablation_montecarlo-05e347ee249e124d.d: crates/bench/benches/ablation_montecarlo.rs Cargo.toml

/root/repo/target/debug/deps/libablation_montecarlo-05e347ee249e124d.rmeta: crates/bench/benches/ablation_montecarlo.rs Cargo.toml

crates/bench/benches/ablation_montecarlo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
