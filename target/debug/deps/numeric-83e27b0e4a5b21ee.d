/root/repo/target/debug/deps/numeric-83e27b0e4a5b21ee.d: crates/numeric/src/lib.rs crates/numeric/src/histogram.rs crates/numeric/src/quadrature.rs crates/numeric/src/rootfind.rs crates/numeric/src/simplex.rs crates/numeric/src/special.rs crates/numeric/src/stats.rs

/root/repo/target/debug/deps/libnumeric-83e27b0e4a5b21ee.rlib: crates/numeric/src/lib.rs crates/numeric/src/histogram.rs crates/numeric/src/quadrature.rs crates/numeric/src/rootfind.rs crates/numeric/src/simplex.rs crates/numeric/src/special.rs crates/numeric/src/stats.rs

/root/repo/target/debug/deps/libnumeric-83e27b0e4a5b21ee.rmeta: crates/numeric/src/lib.rs crates/numeric/src/histogram.rs crates/numeric/src/quadrature.rs crates/numeric/src/rootfind.rs crates/numeric/src/simplex.rs crates/numeric/src/special.rs crates/numeric/src/stats.rs

crates/numeric/src/lib.rs:
crates/numeric/src/histogram.rs:
crates/numeric/src/quadrature.rs:
crates/numeric/src/rootfind.rs:
crates/numeric/src/simplex.rs:
crates/numeric/src/special.rs:
crates/numeric/src/stats.rs:
