/root/repo/target/debug/deps/property-6b9efd4c4ea3aab7.d: tests/property.rs Cargo.toml

/root/repo/target/debug/deps/libproperty-6b9efd4c4ea3aab7.rmeta: tests/property.rs Cargo.toml

tests/property.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
