/root/repo/target/debug/deps/workload_report-d33694bdd5bdccf5.d: crates/bench/src/bin/workload_report.rs Cargo.toml

/root/repo/target/debug/deps/libworkload_report-d33694bdd5bdccf5.rmeta: crates/bench/src/bin/workload_report.rs Cargo.toml

crates/bench/src/bin/workload_report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
