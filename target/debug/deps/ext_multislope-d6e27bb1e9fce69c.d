/root/repo/target/debug/deps/ext_multislope-d6e27bb1e9fce69c.d: crates/bench/src/bin/ext_multislope.rs Cargo.toml

/root/repo/target/debug/deps/libext_multislope-d6e27bb1e9fce69c.rmeta: crates/bench/src/bin/ext_multislope.rs Cargo.toml

crates/bench/src/bin/ext_multislope.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
