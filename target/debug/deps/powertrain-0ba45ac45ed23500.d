/root/repo/target/debug/deps/powertrain-0ba45ac45ed23500.d: crates/powertrain/src/lib.rs crates/powertrain/src/battery.rs crates/powertrain/src/breakeven.rs crates/powertrain/src/controller.rs crates/powertrain/src/emissions.rs crates/powertrain/src/engine.rs crates/powertrain/src/fuel.rs crates/powertrain/src/restart.rs crates/powertrain/src/savings.rs Cargo.toml

/root/repo/target/debug/deps/libpowertrain-0ba45ac45ed23500.rmeta: crates/powertrain/src/lib.rs crates/powertrain/src/battery.rs crates/powertrain/src/breakeven.rs crates/powertrain/src/controller.rs crates/powertrain/src/emissions.rs crates/powertrain/src/engine.rs crates/powertrain/src/fuel.rs crates/powertrain/src/restart.rs crates/powertrain/src/savings.rs Cargo.toml

crates/powertrain/src/lib.rs:
crates/powertrain/src/battery.rs:
crates/powertrain/src/breakeven.rs:
crates/powertrain/src/controller.rs:
crates/powertrain/src/emissions.rs:
crates/powertrain/src/engine.rs:
crates/powertrain/src/fuel.rs:
crates/powertrain/src/restart.rs:
crates/powertrain/src/savings.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
