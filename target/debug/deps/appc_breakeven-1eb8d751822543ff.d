/root/repo/target/debug/deps/appc_breakeven-1eb8d751822543ff.d: crates/bench/src/bin/appc_breakeven.rs Cargo.toml

/root/repo/target/debug/deps/libappc_breakeven-1eb8d751822543ff.rmeta: crates/bench/src/bin/appc_breakeven.rs Cargo.toml

crates/bench/src/bin/appc_breakeven.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
