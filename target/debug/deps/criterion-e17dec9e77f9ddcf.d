/root/repo/target/debug/deps/criterion-e17dec9e77f9ddcf.d: compat/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-e17dec9e77f9ddcf.rlib: compat/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-e17dec9e77f9ddcf.rmeta: compat/criterion/src/lib.rs

compat/criterion/src/lib.rs:
