/root/repo/target/debug/deps/serde-7454d7c916d550c5.d: compat/serde/src/lib.rs

/root/repo/target/debug/deps/serde-7454d7c916d550c5: compat/serde/src/lib.rs

compat/serde/src/lib.rs:
