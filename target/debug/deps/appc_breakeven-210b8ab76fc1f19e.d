/root/repo/target/debug/deps/appc_breakeven-210b8ab76fc1f19e.d: crates/bench/src/bin/appc_breakeven.rs

/root/repo/target/debug/deps/appc_breakeven-210b8ab76fc1f19e: crates/bench/src/bin/appc_breakeven.rs

crates/bench/src/bin/appc_breakeven.rs:
