/root/repo/target/debug/deps/extensions-1d0c4cb355cd520b.d: tests/extensions.rs Cargo.toml

/root/repo/target/debug/deps/libextensions-1d0c4cb355cd520b.rmeta: tests/extensions.rs Cargo.toml

tests/extensions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
