/root/repo/target/debug/deps/cli-95d4f8c3c8c05267.d: tests/cli.rs Cargo.toml

/root/repo/target/debug/deps/libcli-95d4f8c3c8c05267.rmeta: tests/cli.rs Cargo.toml

tests/cli.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_idlectl=placeholder:idlectl
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
