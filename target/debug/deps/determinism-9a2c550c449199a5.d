/root/repo/target/debug/deps/determinism-9a2c550c449199a5.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-9a2c550c449199a5: tests/determinism.rs

tests/determinism.rs:
