/root/repo/target/debug/deps/idlectl-40dc99e948181aab.d: src/bin/idlectl/main.rs src/bin/idlectl/args.rs src/bin/idlectl/commands.rs

/root/repo/target/debug/deps/idlectl-40dc99e948181aab: src/bin/idlectl/main.rs src/bin/idlectl/args.rs src/bin/idlectl/commands.rs

src/bin/idlectl/main.rs:
src/bin/idlectl/args.rs:
src/bin/idlectl/commands.rs:
