/root/repo/target/debug/deps/criterion-3598e802f29c46b9.d: compat/criterion/src/lib.rs

/root/repo/target/debug/deps/criterion-3598e802f29c46b9: compat/criterion/src/lib.rs

compat/criterion/src/lib.rs:
