/root/repo/target/debug/deps/fig2_projections-31afb40d50555ccf.d: crates/bench/src/bin/fig2_projections.rs

/root/repo/target/debug/deps/fig2_projections-31afb40d50555ccf: crates/bench/src/bin/fig2_projections.rs

crates/bench/src/bin/fig2_projections.rs:
