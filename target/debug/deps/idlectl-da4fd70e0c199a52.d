/root/repo/target/debug/deps/idlectl-da4fd70e0c199a52.d: src/bin/idlectl/main.rs src/bin/idlectl/args.rs src/bin/idlectl/commands.rs

/root/repo/target/debug/deps/idlectl-da4fd70e0c199a52: src/bin/idlectl/main.rs src/bin/idlectl/args.rs src/bin/idlectl/commands.rs

src/bin/idlectl/main.rs:
src/bin/idlectl/args.rs:
src/bin/idlectl/commands.rs:
