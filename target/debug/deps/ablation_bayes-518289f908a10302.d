/root/repo/target/debug/deps/ablation_bayes-518289f908a10302.d: crates/bench/src/bin/ablation_bayes.rs Cargo.toml

/root/repo/target/debug/deps/libablation_bayes-518289f908a10302.rmeta: crates/bench/src/bin/ablation_bayes.rs Cargo.toml

crates/bench/src/bin/ablation_bayes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
