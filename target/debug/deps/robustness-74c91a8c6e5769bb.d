/root/repo/target/debug/deps/robustness-74c91a8c6e5769bb.d: tests/robustness.rs

/root/repo/target/debug/deps/robustness-74c91a8c6e5769bb: tests/robustness.rs

tests/robustness.rs:
