/root/repo/target/debug/deps/fig56_sweep-b92644bcd5dccf56.d: crates/bench/src/bin/fig56_sweep.rs

/root/repo/target/debug/deps/fig56_sweep-b92644bcd5dccf56: crates/bench/src/bin/fig56_sweep.rs

crates/bench/src/bin/fig56_sweep.rs:
