/root/repo/target/debug/deps/idling_bench-5536b2c6b3ab64e0.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libidling_bench-5536b2c6b3ab64e0.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libidling_bench-5536b2c6b3ab64e0.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
