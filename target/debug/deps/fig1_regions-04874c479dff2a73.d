/root/repo/target/debug/deps/fig1_regions-04874c479dff2a73.d: crates/bench/src/bin/fig1_regions.rs Cargo.toml

/root/repo/target/debug/deps/libfig1_regions-04874c479dff2a73.rmeta: crates/bench/src/bin/fig1_regions.rs Cargo.toml

crates/bench/src/bin/fig1_regions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
