/root/repo/target/debug/deps/summary_property-2a9ad32a646ce8b9.d: tests/summary_property.rs

/root/repo/target/debug/deps/summary_property-2a9ad32a646ce8b9: tests/summary_property.rs

tests/summary_property.rs:
