/root/repo/target/debug/deps/fig1_regions-61093b0d208b3ba8.d: crates/bench/src/bin/fig1_regions.rs

/root/repo/target/debug/deps/fig1_regions-61093b0d208b3ba8: crates/bench/src/bin/fig1_regions.rs

crates/bench/src/bin/fig1_regions.rs:
