/root/repo/target/debug/deps/game_frontier-ea22226f6d538a3c.d: crates/bench/src/bin/game_frontier.rs Cargo.toml

/root/repo/target/debug/deps/libgame_frontier-ea22226f6d538a3c.rmeta: crates/bench/src/bin/game_frontier.rs Cargo.toml

crates/bench/src/bin/game_frontier.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
