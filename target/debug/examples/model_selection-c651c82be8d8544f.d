/root/repo/target/debug/examples/model_selection-c651c82be8d8544f.d: examples/model_selection.rs Cargo.toml

/root/repo/target/debug/examples/libmodel_selection-c651c82be8d8544f.rmeta: examples/model_selection.rs Cargo.toml

examples/model_selection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
