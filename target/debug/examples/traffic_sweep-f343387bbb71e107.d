/root/repo/target/debug/examples/traffic_sweep-f343387bbb71e107.d: examples/traffic_sweep.rs Cargo.toml

/root/repo/target/debug/examples/libtraffic_sweep-f343387bbb71e107.rmeta: examples/traffic_sweep.rs Cargo.toml

examples/traffic_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
