/root/repo/target/debug/examples/fleet_study-67dc7189d1d4b4bd.d: examples/fleet_study.rs Cargo.toml

/root/repo/target/debug/examples/libfleet_study-67dc7189d1d4b4bd.rmeta: examples/fleet_study.rs Cargo.toml

examples/fleet_study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
