/root/repo/target/debug/examples/driving_tips-5a36af71a3539326.d: examples/driving_tips.rs

/root/repo/target/debug/examples/driving_tips-5a36af71a3539326: examples/driving_tips.rs

examples/driving_tips.rs:
