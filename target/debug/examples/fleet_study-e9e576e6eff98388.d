/root/repo/target/debug/examples/fleet_study-e9e576e6eff98388.d: examples/fleet_study.rs

/root/repo/target/debug/examples/fleet_study-e9e576e6eff98388: examples/fleet_study.rs

examples/fleet_study.rs:
