/root/repo/target/debug/examples/quickstart-e77ed948e410532c.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-e77ed948e410532c: examples/quickstart.rs

examples/quickstart.rs:
