/root/repo/target/debug/examples/traffic_sweep-d0406eb3bbd6fe78.d: examples/traffic_sweep.rs

/root/repo/target/debug/examples/traffic_sweep-d0406eb3bbd6fe78: examples/traffic_sweep.rs

examples/traffic_sweep.rs:
