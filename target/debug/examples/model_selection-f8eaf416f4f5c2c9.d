/root/repo/target/debug/examples/model_selection-f8eaf416f4f5c2c9.d: examples/model_selection.rs

/root/repo/target/debug/examples/model_selection-f8eaf416f4f5c2c9: examples/model_selection.rs

examples/model_selection.rs:
