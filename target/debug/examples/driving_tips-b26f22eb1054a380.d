/root/repo/target/debug/examples/driving_tips-b26f22eb1054a380.d: examples/driving_tips.rs Cargo.toml

/root/repo/target/debug/examples/libdriving_tips-b26f22eb1054a380.rmeta: examples/driving_tips.rs Cargo.toml

examples/driving_tips.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
