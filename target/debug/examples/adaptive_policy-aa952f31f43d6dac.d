/root/repo/target/debug/examples/adaptive_policy-aa952f31f43d6dac.d: examples/adaptive_policy.rs

/root/repo/target/debug/examples/adaptive_policy-aa952f31f43d6dac: examples/adaptive_policy.rs

examples/adaptive_policy.rs:
