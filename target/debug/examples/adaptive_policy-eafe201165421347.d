/root/repo/target/debug/examples/adaptive_policy-eafe201165421347.d: examples/adaptive_policy.rs Cargo.toml

/root/repo/target/debug/examples/libadaptive_policy-eafe201165421347.rmeta: examples/adaptive_policy.rs Cargo.toml

examples/adaptive_policy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
