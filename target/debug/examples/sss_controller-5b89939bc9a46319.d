/root/repo/target/debug/examples/sss_controller-5b89939bc9a46319.d: examples/sss_controller.rs

/root/repo/target/debug/examples/sss_controller-5b89939bc9a46319: examples/sss_controller.rs

examples/sss_controller.rs:
