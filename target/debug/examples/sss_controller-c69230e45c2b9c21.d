/root/repo/target/debug/examples/sss_controller-c69230e45c2b9c21.d: examples/sss_controller.rs Cargo.toml

/root/repo/target/debug/examples/libsss_controller-c69230e45c2b9c21.rmeta: examples/sss_controller.rs Cargo.toml

examples/sss_controller.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
