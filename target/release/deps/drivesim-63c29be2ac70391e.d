/root/repo/target/release/deps/drivesim-63c29be2ac70391e.d: crates/drivesim/src/lib.rs crates/drivesim/src/area.rs crates/drivesim/src/diurnal.rs crates/drivesim/src/faults.rs crates/drivesim/src/fleet.rs crates/drivesim/src/persist.rs crates/drivesim/src/random.rs crates/drivesim/src/sanitize.rs crates/drivesim/src/scenario.rs crates/drivesim/src/trace.rs crates/drivesim/src/trip.rs

/root/repo/target/release/deps/libdrivesim-63c29be2ac70391e.rlib: crates/drivesim/src/lib.rs crates/drivesim/src/area.rs crates/drivesim/src/diurnal.rs crates/drivesim/src/faults.rs crates/drivesim/src/fleet.rs crates/drivesim/src/persist.rs crates/drivesim/src/random.rs crates/drivesim/src/sanitize.rs crates/drivesim/src/scenario.rs crates/drivesim/src/trace.rs crates/drivesim/src/trip.rs

/root/repo/target/release/deps/libdrivesim-63c29be2ac70391e.rmeta: crates/drivesim/src/lib.rs crates/drivesim/src/area.rs crates/drivesim/src/diurnal.rs crates/drivesim/src/faults.rs crates/drivesim/src/fleet.rs crates/drivesim/src/persist.rs crates/drivesim/src/random.rs crates/drivesim/src/sanitize.rs crates/drivesim/src/scenario.rs crates/drivesim/src/trace.rs crates/drivesim/src/trip.rs

crates/drivesim/src/lib.rs:
crates/drivesim/src/area.rs:
crates/drivesim/src/diurnal.rs:
crates/drivesim/src/faults.rs:
crates/drivesim/src/fleet.rs:
crates/drivesim/src/persist.rs:
crates/drivesim/src/random.rs:
crates/drivesim/src/sanitize.rs:
crates/drivesim/src/scenario.rs:
crates/drivesim/src/trace.rs:
crates/drivesim/src/trip.rs:
