/root/repo/target/release/deps/fig4_vehicle_test-6e493de010572679.d: crates/bench/src/bin/fig4_vehicle_test.rs

/root/repo/target/release/deps/fig4_vehicle_test-6e493de010572679: crates/bench/src/bin/fig4_vehicle_test.rs

crates/bench/src/bin/fig4_vehicle_test.rs:
