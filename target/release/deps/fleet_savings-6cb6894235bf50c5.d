/root/repo/target/release/deps/fleet_savings-6cb6894235bf50c5.d: crates/bench/src/bin/fleet_savings.rs

/root/repo/target/release/deps/fleet_savings-6cb6894235bf50c5: crates/bench/src/bin/fleet_savings.rs

crates/bench/src/bin/fleet_savings.rs:
