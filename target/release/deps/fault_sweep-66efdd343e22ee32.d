/root/repo/target/release/deps/fault_sweep-66efdd343e22ee32.d: crates/bench/src/bin/fault_sweep.rs

/root/repo/target/release/deps/fault_sweep-66efdd343e22ee32: crates/bench/src/bin/fault_sweep.rs

crates/bench/src/bin/fault_sweep.rs:
