/root/repo/target/release/deps/fig1_regions-456f673e39048567.d: crates/bench/src/bin/fig1_regions.rs

/root/repo/target/release/deps/fig1_regions-456f673e39048567: crates/bench/src/bin/fig1_regions.rs

crates/bench/src/bin/fig1_regions.rs:
