/root/repo/target/release/deps/idlectl-97e1a58c71b116b7.d: src/bin/idlectl/main.rs src/bin/idlectl/args.rs src/bin/idlectl/commands.rs

/root/repo/target/release/deps/idlectl-97e1a58c71b116b7: src/bin/idlectl/main.rs src/bin/idlectl/args.rs src/bin/idlectl/commands.rs

src/bin/idlectl/main.rs:
src/bin/idlectl/args.rs:
src/bin/idlectl/commands.rs:
