/root/repo/target/release/deps/criterion-ebb658df6aa969c8.d: compat/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-ebb658df6aa969c8.rlib: compat/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-ebb658df6aa969c8.rmeta: compat/criterion/src/lib.rs

compat/criterion/src/lib.rs:
