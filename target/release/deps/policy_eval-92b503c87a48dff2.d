/root/repo/target/release/deps/policy_eval-92b503c87a48dff2.d: crates/bench/benches/policy_eval.rs

/root/repo/target/release/deps/policy_eval-92b503c87a48dff2: crates/bench/benches/policy_eval.rs

crates/bench/benches/policy_eval.rs:
