/root/repo/target/release/deps/ablation_bayes-a11d46457c579230.d: crates/bench/src/bin/ablation_bayes.rs

/root/repo/target/release/deps/ablation_bayes-a11d46457c579230: crates/bench/src/bin/ablation_bayes.rs

crates/bench/src/bin/ablation_bayes.rs:
