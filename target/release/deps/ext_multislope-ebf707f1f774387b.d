/root/repo/target/release/deps/ext_multislope-ebf707f1f774387b.d: crates/bench/src/bin/ext_multislope.rs

/root/repo/target/release/deps/ext_multislope-ebf707f1f774387b: crates/bench/src/bin/ext_multislope.rs

crates/bench/src/bin/ext_multislope.rs:
