/root/repo/target/release/deps/stopmodel-e458c301859d220a.d: crates/stopmodel/src/lib.rs crates/stopmodel/src/dist/mod.rs crates/stopmodel/src/dist/gamma.rs crates/stopmodel/src/dist/transform.rs crates/stopmodel/src/fit.rs crates/stopmodel/src/kstest.rs crates/stopmodel/src/moments.rs crates/stopmodel/src/sampling.rs

/root/repo/target/release/deps/libstopmodel-e458c301859d220a.rlib: crates/stopmodel/src/lib.rs crates/stopmodel/src/dist/mod.rs crates/stopmodel/src/dist/gamma.rs crates/stopmodel/src/dist/transform.rs crates/stopmodel/src/fit.rs crates/stopmodel/src/kstest.rs crates/stopmodel/src/moments.rs crates/stopmodel/src/sampling.rs

/root/repo/target/release/deps/libstopmodel-e458c301859d220a.rmeta: crates/stopmodel/src/lib.rs crates/stopmodel/src/dist/mod.rs crates/stopmodel/src/dist/gamma.rs crates/stopmodel/src/dist/transform.rs crates/stopmodel/src/fit.rs crates/stopmodel/src/kstest.rs crates/stopmodel/src/moments.rs crates/stopmodel/src/sampling.rs

crates/stopmodel/src/lib.rs:
crates/stopmodel/src/dist/mod.rs:
crates/stopmodel/src/dist/gamma.rs:
crates/stopmodel/src/dist/transform.rs:
crates/stopmodel/src/fit.rs:
crates/stopmodel/src/kstest.rs:
crates/stopmodel/src/moments.rs:
crates/stopmodel/src/sampling.rs:
