/root/repo/target/release/deps/idling_bench-03a8cbae5acd52e3.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libidling_bench-03a8cbae5acd52e3.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libidling_bench-03a8cbae5acd52e3.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
