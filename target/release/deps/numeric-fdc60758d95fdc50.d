/root/repo/target/release/deps/numeric-fdc60758d95fdc50.d: crates/numeric/src/lib.rs crates/numeric/src/histogram.rs crates/numeric/src/quadrature.rs crates/numeric/src/rootfind.rs crates/numeric/src/simplex.rs crates/numeric/src/special.rs crates/numeric/src/stats.rs

/root/repo/target/release/deps/libnumeric-fdc60758d95fdc50.rlib: crates/numeric/src/lib.rs crates/numeric/src/histogram.rs crates/numeric/src/quadrature.rs crates/numeric/src/rootfind.rs crates/numeric/src/simplex.rs crates/numeric/src/special.rs crates/numeric/src/stats.rs

/root/repo/target/release/deps/libnumeric-fdc60758d95fdc50.rmeta: crates/numeric/src/lib.rs crates/numeric/src/histogram.rs crates/numeric/src/quadrature.rs crates/numeric/src/rootfind.rs crates/numeric/src/simplex.rs crates/numeric/src/special.rs crates/numeric/src/stats.rs

crates/numeric/src/lib.rs:
crates/numeric/src/histogram.rs:
crates/numeric/src/quadrature.rs:
crates/numeric/src/rootfind.rs:
crates/numeric/src/simplex.rs:
crates/numeric/src/special.rs:
crates/numeric/src/stats.rs:
