/root/repo/target/release/deps/fig2_projections-9ae5318b3fc78052.d: crates/bench/src/bin/fig2_projections.rs

/root/repo/target/release/deps/fig2_projections-9ae5318b3fc78052: crates/bench/src/bin/fig2_projections.rs

crates/bench/src/bin/fig2_projections.rs:
