/root/repo/target/release/deps/automotive_idling-8bed48196e6117eb.d: src/lib.rs

/root/repo/target/release/deps/libautomotive_idling-8bed48196e6117eb.rlib: src/lib.rs

/root/repo/target/release/deps/libautomotive_idling-8bed48196e6117eb.rmeta: src/lib.rs

src/lib.rs:
