/root/repo/target/release/deps/fig3_distributions-ce030bd132728532.d: crates/bench/src/bin/fig3_distributions.rs

/root/repo/target/release/deps/fig3_distributions-ce030bd132728532: crates/bench/src/bin/fig3_distributions.rs

crates/bench/src/bin/fig3_distributions.rs:
