/root/repo/target/release/deps/workload_report-2f9b0b0cfaad7b48.d: crates/bench/src/bin/workload_report.rs

/root/repo/target/release/deps/workload_report-2f9b0b0cfaad7b48: crates/bench/src/bin/workload_report.rs

crates/bench/src/bin/workload_report.rs:
