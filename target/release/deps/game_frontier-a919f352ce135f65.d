/root/repo/target/release/deps/game_frontier-a919f352ce135f65.d: crates/bench/src/bin/game_frontier.rs

/root/repo/target/release/deps/game_frontier-a919f352ce135f65: crates/bench/src/bin/game_frontier.rs

crates/bench/src/bin/game_frontier.rs:
