/root/repo/target/release/deps/skirental-47a83ed241ecaaf7.d: crates/skirental/src/lib.rs crates/skirental/src/adversary.rs crates/skirental/src/analysis.rs crates/skirental/src/bayes.rs crates/skirental/src/constrained.rs crates/skirental/src/cost.rs crates/skirental/src/degraded.rs crates/skirental/src/estimator.rs crates/skirental/src/fleet_eval.rs crates/skirental/src/multislope.rs crates/skirental/src/parallel.rs crates/skirental/src/policy.rs crates/skirental/src/risk.rs crates/skirental/src/summary.rs crates/skirental/src/theory.rs

/root/repo/target/release/deps/libskirental-47a83ed241ecaaf7.rlib: crates/skirental/src/lib.rs crates/skirental/src/adversary.rs crates/skirental/src/analysis.rs crates/skirental/src/bayes.rs crates/skirental/src/constrained.rs crates/skirental/src/cost.rs crates/skirental/src/degraded.rs crates/skirental/src/estimator.rs crates/skirental/src/fleet_eval.rs crates/skirental/src/multislope.rs crates/skirental/src/parallel.rs crates/skirental/src/policy.rs crates/skirental/src/risk.rs crates/skirental/src/summary.rs crates/skirental/src/theory.rs

/root/repo/target/release/deps/libskirental-47a83ed241ecaaf7.rmeta: crates/skirental/src/lib.rs crates/skirental/src/adversary.rs crates/skirental/src/analysis.rs crates/skirental/src/bayes.rs crates/skirental/src/constrained.rs crates/skirental/src/cost.rs crates/skirental/src/degraded.rs crates/skirental/src/estimator.rs crates/skirental/src/fleet_eval.rs crates/skirental/src/multislope.rs crates/skirental/src/parallel.rs crates/skirental/src/policy.rs crates/skirental/src/risk.rs crates/skirental/src/summary.rs crates/skirental/src/theory.rs

crates/skirental/src/lib.rs:
crates/skirental/src/adversary.rs:
crates/skirental/src/analysis.rs:
crates/skirental/src/bayes.rs:
crates/skirental/src/constrained.rs:
crates/skirental/src/cost.rs:
crates/skirental/src/degraded.rs:
crates/skirental/src/estimator.rs:
crates/skirental/src/fleet_eval.rs:
crates/skirental/src/multislope.rs:
crates/skirental/src/parallel.rs:
crates/skirental/src/policy.rs:
crates/skirental/src/risk.rs:
crates/skirental/src/summary.rs:
crates/skirental/src/theory.rs:
