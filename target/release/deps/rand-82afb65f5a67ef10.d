/root/repo/target/release/deps/rand-82afb65f5a67ef10.d: compat/rand/src/lib.rs

/root/repo/target/release/deps/librand-82afb65f5a67ef10.rlib: compat/rand/src/lib.rs

/root/repo/target/release/deps/librand-82afb65f5a67ef10.rmeta: compat/rand/src/lib.rs

compat/rand/src/lib.rs:
