/root/repo/target/release/deps/proptest-d337dd7884a875d8.d: compat/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-d337dd7884a875d8.rlib: compat/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-d337dd7884a875d8.rmeta: compat/proptest/src/lib.rs

compat/proptest/src/lib.rs:
