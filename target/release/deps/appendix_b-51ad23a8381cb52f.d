/root/repo/target/release/deps/appendix_b-51ad23a8381cb52f.d: crates/bench/src/bin/appendix_b.rs

/root/repo/target/release/deps/appendix_b-51ad23a8381cb52f: crates/bench/src/bin/appendix_b.rs

crates/bench/src/bin/appendix_b.rs:
