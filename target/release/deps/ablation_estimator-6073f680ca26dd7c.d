/root/repo/target/release/deps/ablation_estimator-6073f680ca26dd7c.d: crates/bench/src/bin/ablation_estimator.rs

/root/repo/target/release/deps/ablation_estimator-6073f680ca26dd7c: crates/bench/src/bin/ablation_estimator.rs

crates/bench/src/bin/ablation_estimator.rs:
