/root/repo/target/release/deps/appc_breakeven-c47ecc3f7fe186fd.d: crates/bench/src/bin/appc_breakeven.rs

/root/repo/target/release/deps/appc_breakeven-c47ecc3f7fe186fd: crates/bench/src/bin/appc_breakeven.rs

crates/bench/src/bin/appc_breakeven.rs:
