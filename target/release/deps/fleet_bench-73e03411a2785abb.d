/root/repo/target/release/deps/fleet_bench-73e03411a2785abb.d: crates/bench/benches/fleet_bench.rs

/root/repo/target/release/deps/fleet_bench-73e03411a2785abb: crates/bench/benches/fleet_bench.rs

crates/bench/benches/fleet_bench.rs:
