/root/repo/target/release/deps/powertrain-45c1aa92a594cfa5.d: crates/powertrain/src/lib.rs crates/powertrain/src/battery.rs crates/powertrain/src/breakeven.rs crates/powertrain/src/controller.rs crates/powertrain/src/emissions.rs crates/powertrain/src/engine.rs crates/powertrain/src/fuel.rs crates/powertrain/src/restart.rs crates/powertrain/src/savings.rs

/root/repo/target/release/deps/libpowertrain-45c1aa92a594cfa5.rlib: crates/powertrain/src/lib.rs crates/powertrain/src/battery.rs crates/powertrain/src/breakeven.rs crates/powertrain/src/controller.rs crates/powertrain/src/emissions.rs crates/powertrain/src/engine.rs crates/powertrain/src/fuel.rs crates/powertrain/src/restart.rs crates/powertrain/src/savings.rs

/root/repo/target/release/deps/libpowertrain-45c1aa92a594cfa5.rmeta: crates/powertrain/src/lib.rs crates/powertrain/src/battery.rs crates/powertrain/src/breakeven.rs crates/powertrain/src/controller.rs crates/powertrain/src/emissions.rs crates/powertrain/src/engine.rs crates/powertrain/src/fuel.rs crates/powertrain/src/restart.rs crates/powertrain/src/savings.rs

crates/powertrain/src/lib.rs:
crates/powertrain/src/battery.rs:
crates/powertrain/src/breakeven.rs:
crates/powertrain/src/controller.rs:
crates/powertrain/src/emissions.rs:
crates/powertrain/src/engine.rs:
crates/powertrain/src/fuel.rs:
crates/powertrain/src/restart.rs:
crates/powertrain/src/savings.rs:
