/root/repo/target/release/deps/table1_stops-086b215d7595ce05.d: crates/bench/src/bin/table1_stops.rs

/root/repo/target/release/deps/table1_stops-086b215d7595ce05: crates/bench/src/bin/table1_stops.rs

crates/bench/src/bin/table1_stops.rs:
