/root/repo/target/release/deps/fig56_sweep-273b96494ada8aa5.d: crates/bench/src/bin/fig56_sweep.rs

/root/repo/target/release/deps/fig56_sweep-273b96494ada8aa5: crates/bench/src/bin/fig56_sweep.rs

crates/bench/src/bin/fig56_sweep.rs:
