/root/repo/target/release/examples/scratch_probe-1f5650f2bdffe268.d: examples/scratch_probe.rs

/root/repo/target/release/examples/scratch_probe-1f5650f2bdffe268: examples/scratch_probe.rs

examples/scratch_probe.rs:
